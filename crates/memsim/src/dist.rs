//! Samplers for skewed reference streams.
//!
//! OLTP reference streams are highly skewed: B-tree roots, warehouse and
//! district rows, and hot catalog items are touched orders of magnitude
//! more often than the data tail. The [`Zipf`] sampler provides that skew;
//! it is table-driven (exact inverse-CDF) for small domains and switches
//! to an approximate rejection-free inversion for large ones so that a
//! billion-page domain needs no billion-entry table.

use odb_core::Error;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A Zipf(`n`, `s`) sampler over `0..n` where rank 0 is the hottest.
///
/// ```
/// use odb_memsim::dist::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let z = Zipf::new(1000, 0.9)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 1000);
/// # Ok::<(), odb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Exact inverse CDF for domains small enough to tabulate. The table
    /// is `Arc`-shared through a process-wide cache: sweep points and
    /// fixed-point rounds construct identical samplers over and over, and
    /// the O(n) table build used to dominate `Zipf::new`.
    Table(Arc<CdfTable>),
    /// Continuous bounded-Pareto approximation for huge domains.
    Approx {
        s: f64,
        /// `n^(1-s)` precomputed (for s != 1).
        n_pow: f64,
    },
    /// Harmonic (s == 1) continuous approximation: inverse CDF is
    /// `n^u - 1` scaled.
    Harmonic { ln_n: f64 },
}

/// A tabulated CDF plus its search accelerator.
#[derive(Debug, Clone)]
struct CdfTable {
    cdf: Vec<f64>,
    /// Bucket accelerator over the unit interval: `accel` has `K + 1`
    /// entries and `accel[j]` is the first index whose CDF value reaches
    /// `j / K`. A draw `u` lands in bucket `⌊u·K⌋` and binary-searches
    /// only the handful of entries inside it — *bit-identical* to the
    /// full-table binary search because the CDF is strictly increasing
    /// (unique values), so both searches resolve the same unique index.
    /// Empty when the CDF has duplicate adjacent values (degenerate
    /// float underflow); those tables fall back to the full search.
    accel: Vec<u32>,
}

impl CdfTable {
    fn build(cdf: Vec<f64>) -> Self {
        let n = cdf.len();
        let strictly_increasing = cdf.windows(2).all(|w| w[0] < w[1]);
        let accel = if strictly_increasing && n >= 2 {
            // K = n buckets: one expected entry per bucket, 4 bytes each.
            let k = n;
            let mut accel = Vec::with_capacity(k + 1);
            let mut i = 0usize;
            for j in 0..=k {
                let boundary = j as f64 / k as f64;
                while i < n && cdf[i] < boundary {
                    i += 1;
                }
                accel.push(i as u32);
            }
            accel
        } else {
            Vec::new()
        };
        Self { cdf, accel }
    }
}

/// Domains up to this size get an exact table (8 bytes per entry).
const TABLE_LIMIT: u64 = 1 << 20;

/// Process-wide cache of built CDF tables keyed by `(n, s)`. Bounded:
/// once full, new shapes are built uncached (the sweep only ever uses a
/// handful of shapes, so eviction machinery would be dead weight).
type CdfCacheMap = BTreeMap<(u64, u64), Arc<CdfTable>>;
static CDF_CACHE: OnceLock<Mutex<CdfCacheMap>> = OnceLock::new();
const CDF_CACHE_CAP: usize = 64;

fn cached_cdf_table(n: u64, s: f64) -> Arc<CdfTable> {
    let cache = CDF_CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (n, s.to_bits());
    let map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(table) = map.get(&key) {
        return Arc::clone(table);
    }
    drop(map);
    // Build outside the lock: tables can be megabytes and parallel sweep
    // workers should not serialize on the build.
    let mut cdf = Vec::with_capacity(n as usize);
    let mut total = 0.0;
    for k in 0..n {
        total += 1.0 / ((k + 1) as f64).powf(s);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    let table = Arc::new(CdfTable::build(cdf));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(winner) = map.get(&key) {
        return Arc::clone(winner);
    }
    if map.len() < CDF_CACHE_CAP {
        map.insert(key, Arc::clone(&table));
    }
    table
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s ≥ 0`.
    ///
    /// `s = 0` degenerates to uniform; larger `s` concentrates mass on
    /// small ranks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `n` is zero or `s` is negative
    /// or non-finite. A successfully constructed sampler has a finite,
    /// monotone CDF, so [`Zipf::sample`] is infallible by invariant.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error::InvalidConfig {
                field: "zipf_domain",
                reason: "Zipf domain must be nonempty".to_owned(),
            });
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(Error::InvalidConfig {
                field: "zipf_exponent",
                reason: format!("Zipf exponent must be finite and >= 0, got {s}"),
            });
        }
        let repr = if n <= TABLE_LIMIT {
            Repr::Table(cached_cdf_table(n, s))
        } else if (s - 1.0).abs() < 1e-9 {
            Repr::Harmonic {
                ln_n: (n as f64).ln(),
            }
        } else {
            Repr::Approx {
                s,
                n_pow: (n as f64).powf(1.0 - s),
            }
        };
        Ok(Self { n, repr })
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Checks the tabulated CDF for corruption: every entry must be finite
    /// and the sequence non-decreasing. Approximate representations carry
    /// no table and always pass.
    ///
    /// Construction guarantees this holds, so the check only fails if the
    /// sampler's state was corrupted after the fact (see
    /// [`Zipf::inject_poison_cdf`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptState`] describing the first bad entry.
    pub fn check_cdf(&self) -> Result<(), Error> {
        if let Repr::Table(table) = &self.repr {
            let mut prev = 0.0f64;
            for (i, &v) in table.cdf.iter().enumerate() {
                if !v.is_finite() {
                    return Err(Error::corrupt(
                        "memsim::dist",
                        format!("cdf entry {i} is not finite ({v})"),
                    ));
                }
                if v < prev {
                    return Err(Error::corrupt(
                        "memsim::dist",
                        format!("cdf entry {i} decreases ({v} < {prev})"),
                    ));
                }
                prev = v;
            }
        }
        Ok(())
    }

    /// Fault injection: overwrites the first tabulated CDF entry with NaN.
    ///
    /// Returns `true` if the sampler is table-backed and was poisoned,
    /// `false` for the approximate representations (nothing to poison).
    /// After poisoning, [`Zipf::check_cdf`] reports
    /// [`Error::CorruptState`]; [`Zipf::sample`] stays abort-free (its
    /// total-order search tolerates NaN) but its draws are meaningless.
    #[cfg(feature = "invariants")]
    pub fn inject_poison_cdf(&mut self) -> bool {
        if let Repr::Table(table) = &mut self.repr {
            // Clone-on-write: the table is shared through the process-wide
            // CDF cache and poison must stay local to this sampler.
            let owned = Arc::make_mut(table);
            if let Some(first) = owned.cdf.first_mut() {
                *first = f64::NAN;
                return true;
            }
        }
        false
    }

    /// Draws one rank in `0..n`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.repr {
            Repr::Table(table) => {
                let u: f64 = rng.gen();
                (Self::search_table(table, u)).min(self.n - 1)
            }
            Repr::Approx { s, n_pow } => {
                // Continuous bounded Pareto on [1, n+1): invert
                // F(x) = (x^(1-s) - 1) / ((n+1)^(1-s) - 1).
                let u: f64 = rng.gen();
                let one_minus_s = 1.0 - s;
                let x = (1.0 + u * (n_pow - 1.0)).powf(1.0 / one_minus_s);
                ((x.floor() as u64).saturating_sub(1)).min(self.n - 1)
            }
            Repr::Harmonic { ln_n } => {
                let u: f64 = rng.gen();
                let x = (u * ln_n).exp();
                ((x.floor() as u64).saturating_sub(1)).min(self.n - 1)
            }
        }
    }

    /// Inverse-CDF lookup for `u`, accelerated by the bucket table when
    /// present. Returns exactly what
    /// `cdf.binary_search_by(|v| v.total_cmp(&u))` (Ok and Err collapsed
    /// to the index) returns on the full table: the bucket only narrows
    /// the range, and a strictly increasing CDF has a unique answer, so
    /// the windowed search cannot resolve differently. Pinned by the
    /// `accelerated_search_matches_full_binary_search` test.
    #[inline]
    fn search_table(table: &CdfTable, u: f64) -> u64 {
        let cdf = &table.cdf;
        if table.accel.is_empty() {
            return match cdf.binary_search_by(|v| v.total_cmp(&u)) {
                Ok(i) | Err(i) => i as u64,
            };
        }
        let k = table.accel.len() - 1;
        let mut j = ((u * k as f64) as usize).min(k - 1);
        // `u * k` rounding can land one bucket off; nudge so that
        // `j/K <= u < (j+1)/K` holds before trusting the window.
        if u < j as f64 / k as f64 {
            j -= 1;
        } else if j + 1 < k && u >= (j + 1) as f64 / k as f64 {
            j += 1;
        }
        let lo = table.accel[j] as usize;
        let hi = (table.accel[j + 1] as usize + 1).min(cdf.len());
        match cdf[lo..hi].binary_search_by(|v| v.total_cmp(&u)) {
            Ok(i) | Err(i) => (lo + i) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = vec![0u64; z.domain() as usize];
        for _ in 0..draws {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0).unwrap();
        let h = histogram(&z, 100_000, 7);
        for &count in &h {
            let p = count as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(100, 1.0).unwrap();
        let h = histogram(&z, 200_000, 11);
        assert!(h[0] > h[10], "rank 0 hotter than rank 10");
        assert!(h[0] > h[50] * 5, "strong skew");
        // Rank-0 mass for Zipf(100, 1) is 1/H_100 ≈ 0.1928.
        let p0 = h[0] as f64 / 200_000.0;
        assert!((p0 - 0.1928).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn samples_stay_in_domain() {
        for &(n, s) in &[(1u64, 0.9), (7, 0.5), (1000, 1.2), (1 << 22, 0.9), (1 << 22, 1.0)] {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..2_000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn large_domain_is_still_skewed() {
        // Approximate path: top 1% of ranks should get far more than 1%
        // of mass at s = 0.9.
        let n = (TABLE_LIMIT + 1) * 4;
        let z = Zipf::new(n, 0.9).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let cutoff = n / 100;
        let mut hot = 0;
        let draws = 50_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < cutoff {
                hot += 1;
            }
        }
        let frac = hot as f64 / draws as f64;
        assert!(frac > 0.3, "top-1% mass was {frac}");
    }

    #[test]
    fn determinism_per_seed() {
        let z = Zipf::new(5000, 0.8).unwrap();
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zero_domain_is_rejected() {
        assert!(matches!(
            Zipf::new(0, 1.0),
            Err(Error::InvalidConfig { field: "zipf_domain", .. })
        ));
    }

    #[test]
    fn bad_exponents_are_rejected() {
        for s in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Zipf::new(10, s),
                Err(Error::InvalidConfig { field: "zipf_exponent", .. })
            ));
        }
    }

    #[test]
    fn fresh_cdf_passes_check() {
        for &(n, s) in &[(1u64, 0.5), (1000, 1.09), (1 << 22, 0.9)] {
            assert_eq!(Zipf::new(n, s).unwrap().check_cdf(), Ok(()));
        }
    }

    #[test]
    fn accelerated_search_matches_full_binary_search() {
        use rand::Rng;
        // Shapes spanning tiny/odd/large domains and uniform/skewed
        // exponents; each draws thousands of uniforms and requires the
        // bucket-accelerated lookup to equal the full-table search bit
        // for bit, including bucket-boundary values of u.
        for &(n, s) in &[
            (1u64, 0.9),
            (2, 0.0),
            (7, 0.5),
            (100, 1.0),
            (1000, 0.0),
            (5000, 0.8),
            (65_536, 1.2),
        ] {
            let z = Zipf::new(n, s).unwrap();
            let Repr::Table(table) = &z.repr else {
                panic!("n={n} should be table-backed");
            };
            let full = |u: f64| -> u64 {
                match table.cdf.binary_search_by(|v| v.total_cmp(&u)) {
                    Ok(i) | Err(i) => i as u64,
                }
            };
            let mut rng = SmallRng::seed_from_u64(0xACCE1);
            for _ in 0..5_000 {
                let u: f64 = rng.gen();
                assert_eq!(Zipf::search_table(table, u), full(u), "n={n} s={s} u={u}");
            }
            // Exact bucket boundaries are the rounding-sensitive inputs.
            for j in 0..n.min(64) {
                let u = j as f64 / n as f64;
                assert_eq!(Zipf::search_table(table, u), full(u), "n={n} s={s} boundary {j}");
            }
        }
    }

    #[test]
    fn cdf_cache_shares_tables_across_constructions() {
        let a = Zipf::new(4096, 0.77).unwrap();
        let b = Zipf::new(4096, 0.77).unwrap();
        let (Repr::Table(ta), Repr::Table(tb)) = (&a.repr, &b.repr) else {
            panic!("expected table-backed samplers");
        };
        assert!(
            std::sync::Arc::ptr_eq(ta, tb),
            "identical (n, s) must share one cached table"
        );
        // A different shape gets its own table.
        let c = Zipf::new(4096, 0.78).unwrap();
        let Repr::Table(tc) = &c.repr else {
            panic!("expected table-backed sampler");
        };
        assert!(!std::sync::Arc::ptr_eq(ta, tc));
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn poisoned_cdf_is_detected_and_sampling_does_not_abort() {
        let mut z = Zipf::new(64, 1.0).unwrap();
        assert!(z.inject_poison_cdf());
        assert!(matches!(
            z.check_cdf(),
            Err(Error::CorruptState { component: "memsim::dist", .. })
        ));
        // Sampling a poisoned table must not abort the process; the draws
        // are garbage but stay inside the domain.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 64);
        }
        // Poison is clone-on-write local: a fresh sampler of the same
        // shape comes from the shared cache unpoisoned.
        let fresh = Zipf::new(64, 1.0).unwrap();
        assert_eq!(fresh.check_cdf(), Ok(()));
    }
}
