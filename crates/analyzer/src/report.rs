//! Violation types, lint identifiers, and rendering (text and JSON).

use std::fmt;

/// Which lint produced a violation.
///
/// The [`Lint::name`] string is the stable id: it is what
/// `// odb-analyzer: allow(<lint>)` escapes name, what `--list-lints`
/// prints, and what the README lint catalog is drift-checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Panic-site count exceeded (or missing) the checked-in baseline.
    PanicBaseline,
    /// `.acquire(` without canonical-order sorting.
    LockOrder,
    /// Floating-point simulated-time construction outside `des/src/time.rs`.
    RawTime,
    /// Observer-hook emission hidden inside a `#[cfg(feature = …)]` block.
    ObserverSeam,
    /// Stray file or orphan module.
    StrayFile,
    /// Heap allocation in an audited per-reference hot-path function.
    HotPathAlloc,
    /// Hash-ordered collection (`HashMap`/`HashSet`) in simulation code.
    UnorderedIteration,
    /// Wall-clock, environment, or pointer-identity input in simulation code.
    AmbientNondeterminism,
    /// RNG construction outside the seeded `SimOptions::for_point` path.
    RngDiscipline,
    /// Float reduction over an unordered or thread-collected source.
    FloatAccumulation,
}

impl Lint {
    /// The short name used in output and in `odb-analyzer: allow(...)`
    /// markers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::PanicBaseline => "panic",
            Lint::LockOrder => "lock_order",
            Lint::RawTime => "raw_time",
            Lint::ObserverSeam => "observer_seam",
            Lint::StrayFile => "stray_file",
            Lint::HotPathAlloc => "hot_path_alloc",
            Lint::UnorderedIteration => "unordered_iteration",
            Lint::AmbientNondeterminism => "ambient_nondeterminism",
            Lint::RngDiscipline => "rng_discipline",
            Lint::FloatAccumulation => "float_accumulation",
        }
    }
}

/// One gate-failing finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The lint that fired.
    pub lint: Lint,
    /// Repo-relative path (empty for workspace-level findings).
    pub path: String,
    /// 1-based line number; 0 when the finding is about a whole file.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Violation {
    /// A finding anchored at `path:line`.
    pub fn new(lint: Lint, path: &str, line: usize, message: String) -> Self {
        Violation {
            lint,
            path: path.to_owned(),
            line,
            message,
        }
    }

    /// A workspace-level panic-baseline finding (no single anchor line).
    pub fn baseline(message: String) -> Self {
        Violation {
            lint: Lint::PanicBaseline,
            path: String::new(),
            line: 0,
            message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.lint.name())?;
        if !self.path.is_empty() {
            write!(f, "{}", self.path)?;
            if self.line > 0 {
                write!(f, ":{}", self.line)?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{}", self.message)
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable `--json` report for an analysis. The
/// format is hand-rolled (the gate stays dependency-free); consumers can
/// rely on `schema` for versioning.
pub fn render_json(analysis: &crate::Analysis, lints: &[(Lint, &str)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"odb-analyzer-report-v1\",\n");
    s.push_str(&format!("  \"clean\": {},\n", analysis.is_clean()));
    s.push_str("  \"lints\": [");
    for (i, (lint, _)) in lints.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\"", lint.name()));
    }
    s.push_str("],\n");
    s.push_str("  \"violations\": [\n");
    for (i, v) in analysis.violations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            v.lint.name(),
            json_escape(&v.path),
            v.line,
            json_escape(&v.message),
            if i + 1 < analysis.violations.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"notices\": [\n");
    for (i, n) in analysis.notices.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(n),
            if i + 1 < analysis.notices.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"counts\": {");
    let mut sections: Vec<&str> = analysis
        .counted
        .keys()
        .map(|(section, _)| section.as_str())
        .collect();
    sections.dedup();
    for (si, section) in sections.iter().enumerate() {
        if si > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{section}\": {{"));
        let mut first = true;
        for ((sec, krate), sites) in &analysis.counted {
            if sec != section {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{krate}\": {}", sites.len()));
        }
        s.push('}');
    }
    s.push_str("}\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_and_without_anchor() {
        let v = Violation::new(Lint::RawTime, "crates/x/src/a.rs", 7, "msg".into());
        assert_eq!(v.to_string(), "[raw_time] crates/x/src/a.rs:7: msg");
        let w = Violation::new(Lint::StrayFile, "junk.tmp", 0, "msg".into());
        assert_eq!(w.to_string(), "[stray_file] junk.tmp: msg");
        let b = Violation::baseline("over".into());
        assert_eq!(b.to_string(), "[panic] over");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
