//! Integration tests for the EMON noise model against §5.1 of the paper:
//! multiplexed (round-robin, repeated-window) sampling error stays within
//! the model's stated bound, small counts suffer proportionally more —
//! the paper's explanation for the noisy OS-space CPI at 10 warehouses —
//! and the whole instrument is deterministic per seed.

use odb_core::metrics::SpaceCounts;
use odb_emon::{Emon, MeasurementPlan, NoiseModel};

/// Counts shaped like a measurement-grade run: user space large, OS space
/// one to two orders of magnitude smaller (the §5.1 regime).
fn user_truth() -> SpaceCounts {
    SpaceCounts {
        instructions: 12_000_000_000,
        cycles: 30_000_000_000,
        l3_misses: 90_000_000,
        l2_misses: 400_000_000,
        tc_misses: 60_000_000,
        tlb_misses: 25_000_000,
        branch_mispredictions: 50_000_000,
    }
}

fn os_truth() -> SpaceCounts {
    SpaceCounts {
        instructions: 400_000_000,
        cycles: 1_500_000_000,
        l3_misses: 6_000_000,
        l2_misses: 20_000_000,
        tc_misses: 3_000_000,
        tlb_misses: 1_500_000,
        branch_mispredictions: 2_500_000,
    }
}

/// The model's per-count standard deviation (documented on
/// [`Emon::sample`]): Poisson + amortized phase + absolute attribution,
/// summed in quadrature.
fn sigma(count: u64, plan: &MeasurementPlan, noise: &NoiseModel) -> f64 {
    let c = count as f64;
    (c + (c * noise.phase_sigma / f64::from(plan.repeats).sqrt()).powi(2)
        + noise.attribution_sigma.powi(2))
    .sqrt()
}

fn fields(c: &SpaceCounts) -> [u64; 7] {
    [
        c.instructions,
        c.cycles,
        c.l3_misses,
        c.l2_misses,
        c.tc_misses,
        c.tlb_misses,
        c.branch_mispredictions,
    ]
}

/// Every sampled field, across many seeds and both count regimes, lands
/// within 6σ of its truth under the documented noise model. 32 seeds ×
/// 2 spaces × 7 events = 448 independent draws; a single 6σ outlier has
/// probability ~1e-9 × 448, so any failure means the model drifted.
#[test]
fn multiplexed_sampling_error_within_model_bound() {
    let plan = MeasurementPlan::paper();
    let noise = NoiseModel::default();
    for seed in 0..32u64 {
        let mut emon = Emon::new(plan, noise, seed);
        for truth in [user_truth(), os_truth()] {
            let observed = emon.sample_counts(&truth);
            for (obs, tru) in fields(&observed).into_iter().zip(fields(&truth)) {
                let bound = 6.0 * sigma(tru, &plan, &noise);
                let err = (obs as f64 - tru as f64).abs();
                assert!(
                    err <= bound,
                    "seed {seed}: observed {obs} vs truth {tru}; error {err:.0} \
                     exceeds the 6-sigma bound {bound:.0}"
                );
            }
        }
    }
}

/// The §5.1 mechanism: the fixed attribution quantum makes the *relative*
/// error of the small OS-space counts much larger than that of the
/// user-space counts measured in the same schedule.
#[test]
fn small_os_counts_are_relatively_noisier() {
    let plan = MeasurementPlan::paper();
    let noise = NoiseModel::default();
    let rel = |truth: &SpaceCounts, base_seed: u64| -> f64 {
        let mut total = 0.0;
        let runs = 64u64;
        for seed in 0..runs {
            let mut emon = Emon::new(plan, noise, base_seed + seed);
            let observed = emon.sample_counts(truth);
            for (obs, tru) in fields(&observed).into_iter().zip(fields(truth)) {
                total += (obs as f64 - tru as f64).abs() / tru as f64;
            }
        }
        total / (runs as f64 * 7.0)
    };
    let user = rel(&user_truth(), 100);
    let os = rel(&os_truth(), 100);
    assert!(
        os > 3.0 * user,
        "mean relative error: OS {os:.5} should dwarf user {user:.5}"
    );
}

/// Same seed, same plan, same truths → bit-identical observations, run
/// after run; a different seed must diverge. This is what lets the
/// engine's sampled measurements participate in the artifact drift gate.
#[test]
fn per_seed_determinism() {
    let plan = MeasurementPlan::scaled(100);
    let noise = NoiseModel::default();
    for seed in [0u64, 1, 42, 0xE0_40_5E_ED] {
        let mut a = Emon::new(plan, noise, seed);
        let mut b = Emon::new(plan, noise, seed);
        for truth in [user_truth(), os_truth(), user_truth()] {
            assert_eq!(
                a.sample_counts(&truth),
                b.sample_counts(&truth),
                "seed {seed} must replay identically"
            );
        }
    }
    let mut a = Emon::new(plan, noise, 1);
    let mut b = Emon::new(plan, noise, 2);
    let diverged = (0..8).any(|_| a.sample_counts(&user_truth()) != b.sample_counts(&user_truth()));
    assert!(diverged, "different seeds must produce different streams");
}
