//! The determinism-audit pass family: four textual passes that certify
//! the bit-exactness contract the sharded-DES refactor will lean on.
//!
//! The contract: given one `(SweepPoint, seed)`, the simulation stack
//! must produce bit-identical results regardless of host, thread count,
//! or run-to-run allocator state. These passes flag the classic ways
//! that contract silently breaks:
//!
//! * **unordered_iteration** — `HashMap`/`HashSet` state in sim code.
//!   Iteration order is randomized per process (SipHash keys), so any
//!   iteration that feeds simulated state or output is a per-run coin
//!   flip. Point-access-only maps are safe but must say so with an
//!   escape; order-sensitive ones must become `BTreeMap`/`BTreeSet`.
//! * **ambient_nondeterminism** — wall-clock time, thread identity,
//!   environment variables, or pointer-identity hashing leaking into
//!   sim code.
//! * **rng_discipline** — RNG construction outside the seeded
//!   `SimOptions::for_point` splitmix path: entropy-seeded RNGs are a
//!   fresh universe per run, and ad-hoc literal seeds silently correlate
//!   streams across components.
//! * **float_accumulation** — float reductions over unordered or
//!   thread-collected sources; `(a + b) + c != a + (b + c)` in IEEE 754,
//!   so the sum depends on visit order.
//!
//! All four count sites under the `[determinism]` baseline section,
//! per crate, ratcheted to zero.

use super::{CountedSite, Pass, PassContext};
use crate::report::Lint;
use crate::source::WorkspaceModel;

/// Crates audited for determinism: the whole simulation stack.
pub const DET_AUDITED: &[&str] = &["core", "des", "engine", "memsim", "ossim", "iosim"];

/// The shared baseline section of the family.
pub const DET_SECTION: &str = "determinism";

/// Import lines introduce a type, not a use of its iteration order;
/// the declaration/iteration sites are where the risk lives.
fn is_use_line(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("use ") || t.starts_with("pub use ") || t.starts_with("pub(crate) use ")
}

/// Runs `per_line` over every non-test, non-escaped line of the audited
/// crates, registering every audited crate under [`DET_SECTION`] first
/// so clean crates still ratchet to zero.
fn scan_audited(
    model: &WorkspaceModel,
    ctx: &mut PassContext,
    escape: &str,
    mut per_line: impl FnMut(&str) -> Option<String>,
) {
    let lint = match escape {
        "unordered_iteration" => Lint::UnorderedIteration,
        "ambient_nondeterminism" => Lint::AmbientNondeterminism,
        "rng_discipline" => Lint::RngDiscipline,
        _ => Lint::FloatAccumulation,
    };
    for name in DET_AUDITED {
        ctx.crate_sites(DET_SECTION, name);
        let Some(krate) = model.get(name) else { continue };
        for file in &krate.src_files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test || line.allows(escape) {
                    continue;
                }
                if let Some(message) = per_line(&line.code) {
                    ctx.count_site(
                        DET_SECTION,
                        name,
                        CountedSite {
                            lint,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message,
                        },
                    );
                }
            }
        }
    }
}

/// Flags `HashMap`/`HashSet` in non-test sim code. Hash iteration order
/// is per-process random, so hash-keyed sim state is deterministic only
/// if it is *never* iterated — a property the type system won't hold for
/// you. Convert to `BTreeMap`/`BTreeSet`, or escape a point-access-only
/// map with `// odb-analyzer: allow(unordered_iteration)` and say why
/// order can never leak.
pub struct UnorderedIterationPass;

impl Pass for UnorderedIterationPass {
    fn lint(&self) -> Lint {
        Lint::UnorderedIteration
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet in non-test simulation code (iteration order is per-run random)"
    }

    fn baseline_section(&self) -> Option<&'static str> {
        Some(DET_SECTION)
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        scan_audited(model, ctx, "unordered_iteration", |code| {
            if is_use_line(code) {
                return None;
            }
            let token = ["HashMap", "HashSet"].iter().find(|t| code.contains(**t))?;
            Some(format!(
                "`{token}` in simulation code: iteration order is randomized per \
                 process, so any iteration feeding sim state or output breaks \
                 bit-exactness; use BTreeMap/BTreeSet, or annotate a \
                 point-access-only map with \
                 `// odb-analyzer: allow(unordered_iteration)` and justify"
            ))
        });
    }
}

/// Ambient inputs that differ across hosts, runs, or threads.
const AMBIENT_TOKENS: &[&str] = &[
    "Instant::now(",
    "SystemTime",
    "thread::current(",
    "std::env::",
    "env::var(",
    "env::vars(",
    "ptr::hash(",
    "RandomState",
];

/// Flags ambient inputs — wall-clock time, thread identity, environment
/// variables, pointer-identity hashing — in sim code. Each is a value
/// the simulation cannot replay. Diagnostic-only uses (phase timers on
/// stderr) escape with `// odb-analyzer: allow(ambient_nondeterminism)`.
pub struct AmbientNondeterminismPass;

impl Pass for AmbientNondeterminismPass {
    fn lint(&self) -> Lint {
        Lint::AmbientNondeterminism
    }

    fn description(&self) -> &'static str {
        "wall-clock/thread-id/env-var/pointer-hash inputs in simulation code"
    }

    fn baseline_section(&self) -> Option<&'static str> {
        Some(DET_SECTION)
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        scan_audited(model, ctx, "ambient_nondeterminism", |code| {
            if is_use_line(code) {
                return None;
            }
            let token = AMBIENT_TOKENS.iter().find(|t| code.contains(**t))?;
            Some(format!(
                "ambient input `{token}` in simulation code: the value differs \
                 across hosts/runs/threads and cannot be replayed; thread sim \
                 time or config through instead, or annotate a diagnostic-only \
                 use with `// odb-analyzer: allow(ambient_nondeterminism)`"
            ))
        });
    }
}

/// RNG constructors that bypass the seeded splitmix path outright.
const RNG_ENTROPY_TOKENS: &[&str] = &["from_entropy(", "thread_rng(", "OsRng", "from_os_rng("];

/// Flags RNG construction outside the `SimOptions::for_point` splitmix
/// derivation: entropy-seeded RNGs (`from_entropy`, `thread_rng`,
/// `OsRng`) are unreplayable, and `seed_from_u64(<literal>)` hardcodes a
/// stream that silently correlates with any other component using the
/// same constant. Derive per-component seeds from the point seed; escape
/// a justified fixed stream with `// odb-analyzer: allow(rng_discipline)`.
pub struct RngDisciplinePass;

impl Pass for RngDisciplinePass {
    fn lint(&self) -> Lint {
        Lint::RngDiscipline
    }

    fn description(&self) -> &'static str {
        "RNG construction outside the seeded SimOptions::for_point splitmix path"
    }

    fn baseline_section(&self) -> Option<&'static str> {
        Some(DET_SECTION)
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        scan_audited(model, ctx, "rng_discipline", |code| {
            if is_use_line(code) {
                return None;
            }
            if let Some(token) = RNG_ENTROPY_TOKENS.iter().find(|t| code.contains(**t)) {
                return Some(format!(
                    "entropy-seeded RNG `{token}`: the stream differs every run and \
                     cannot be replayed; derive the seed from \
                     SimOptions::for_point's splitmix path"
                ));
            }
            if has_literal_seed(code) {
                return Some(
                    "`seed_from_u64(<literal>)`: a hardcoded seed correlates this \
                     stream with every other component using the same constant and \
                     ignores the per-point seed; derive it from \
                     SimOptions::for_point's splitmix path, or annotate with \
                     `// odb-analyzer: allow(rng_discipline)` and justify"
                        .to_owned(),
                );
            }
            None
        });
    }
}

/// True when a `seed_from_u64(` call's first argument starts with a
/// numeric literal (decimal or `0x…`).
fn has_literal_seed(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("seed_from_u64(") {
        let after = from + pos + "seed_from_u64(".len();
        let arg = code[after..].trim_start();
        if arg.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
        from = after;
    }
    false
}

/// Float-reduction call shapes.
const FLOAT_REDUCE_TOKENS: &[&str] = &[
    ".sum::<f64>",
    ".sum::<f32>",
    ".fold(0.0",
    ".fold(0f64",
    ".fold(0f32",
];

/// Sources whose visit order is unordered or thread-dependent.
const UNORDERED_SOURCE_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "par_iter",
    "into_par_iter",
    "par_bridge",
];

/// Flags float reductions whose source is unordered or thread-collected
/// on the same line: IEEE-754 addition is not associative, so
/// `(a + b) + c != a + (b + c)` and the sum depends on visit order.
/// Reduce over an ordered source (sorted keys, a `Vec` in deterministic
/// order), or escape with `// odb-analyzer: allow(float_accumulation)`.
pub struct FloatAccumulationPass;

impl Pass for FloatAccumulationPass {
    fn lint(&self) -> Lint {
        Lint::FloatAccumulation
    }

    fn description(&self) -> &'static str {
        "float reductions over unordered/thread-collected sources (order-dependent sums)"
    }

    fn baseline_section(&self) -> Option<&'static str> {
        Some(DET_SECTION)
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        scan_audited(model, ctx, "float_accumulation", |code| {
            let reduce = FLOAT_REDUCE_TOKENS.iter().find(|t| code.contains(**t))?;
            let source = UNORDERED_SOURCE_TOKENS
                .iter()
                .find(|t| code.contains(**t))?;
            Some(format!(
                "float reduction `{reduce}` over unordered source `{source}`: \
                 IEEE-754 addition is order-dependent, so the sum differs with \
                 visit order; reduce over a deterministically ordered source, or \
                 annotate with `// odb-analyzer: allow(float_accumulation)` and \
                 justify"
            ))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateModel, SourceFile, WorkspaceModel};

    fn model_with(rel: &str, krate: &str, text: &str) -> WorkspaceModel {
        WorkspaceModel {
            root: std::path::PathBuf::new(),
            crates: vec![CrateModel {
                name: krate.to_owned(),
                src_files: vec![SourceFile::parse(rel.to_owned(), text)],
                src_rs_paths: Vec::new(),
            }],
            all_files: Vec::new(),
        }
    }

    fn det_sites(ctx: &PassContext, krate: &str) -> usize {
        ctx.counted
            .get(&(DET_SECTION.to_owned(), krate.to_owned()))
            .map_or(0, Vec::len)
    }

    #[test]
    fn use_lines_and_tests_are_skipped() {
        let model = model_with(
            "crates/des/src/x.rs",
            "des",
            "use std::collections::HashMap;\n\
             struct S { m: HashMap<u32, u32> }\n\
             #[cfg(test)]\n\
             mod tests { struct T { m: HashMap<u32, u32> } }\n",
        );
        let mut ctx = PassContext::default();
        UnorderedIterationPass.run(&model, &mut ctx);
        assert_eq!(det_sites(&ctx, "des"), 1, "{:?}", ctx.counted);
    }

    #[test]
    fn escape_silences_unordered_iteration() {
        let model = model_with(
            "crates/des/src/x.rs",
            "des",
            "// odb-analyzer: allow(unordered_iteration) — point access only\n\
             struct S { m: HashMap<u32, u32> }\n",
        );
        let mut ctx = PassContext::default();
        UnorderedIterationPass.run(&model, &mut ctx);
        assert_eq!(det_sites(&ctx, "des"), 0);
    }

    #[test]
    fn clean_crates_still_register_for_the_ratchet() {
        let model = model_with("crates/des/src/x.rs", "des", "fn a() {}\n");
        let mut ctx = PassContext::default();
        UnorderedIterationPass.run(&model, &mut ctx);
        for name in DET_AUDITED {
            assert!(
                ctx.counted
                    .contains_key(&(DET_SECTION.to_owned(), (*name).to_owned())),
                "{name} missing from the determinism section"
            );
        }
    }

    #[test]
    fn literal_seed_detection() {
        assert!(has_literal_seed("SmallRng::seed_from_u64(0xDB_CAFE)"));
        assert!(has_literal_seed("seed_from_u64( 7 )"));
        assert!(!has_literal_seed("seed_from_u64(mix)"));
        assert!(!has_literal_seed("seed_from_u64(self.seed)"));
    }

    #[test]
    fn rng_tokens_fire_and_variable_seed_does_not() {
        let model = model_with(
            "crates/engine/src/x.rs",
            "engine",
            "fn a() { let r = SmallRng::from_entropy(); }\n\
             fn b(seed: u64) { let r = SmallRng::seed_from_u64(seed); }\n\
             fn c() { let r = SmallRng::seed_from_u64(42); }\n",
        );
        let mut ctx = PassContext::default();
        RngDisciplinePass.run(&model, &mut ctx);
        assert_eq!(det_sites(&ctx, "engine"), 2, "{:?}", ctx.counted);
    }

    #[test]
    fn float_accumulation_needs_both_halves() {
        let model = model_with(
            "crates/engine/src/x.rs",
            "engine",
            "fn a(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n\
             fn b(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n\
             fn c(m: &HashMap<u32, f64>) -> usize { m.len() }\n",
        );
        let mut ctx = PassContext::default();
        FloatAccumulationPass.run(&model, &mut ctx);
        assert_eq!(det_sites(&ctx, "engine"), 1, "{:?}", ctx.counted);
    }

    #[test]
    fn ambient_tokens_fire() {
        let model = model_with(
            "crates/engine/src/x.rs",
            "engine",
            "fn a() { let t = std::time::Instant::now(); }\n\
             // odb-analyzer: allow(ambient_nondeterminism) — stderr diagnostics\n\
             fn b() { let t = std::time::Instant::now(); }\n",
        );
        let mut ctx = PassContext::default();
        AmbientNondeterminismPass.run(&model, &mut ctx);
        assert_eq!(det_sites(&ctx, "engine"), 1, "{:?}", ctx.counted);
    }
}
