//! The raw-time pass: floating-point simulated-time construction is
//! confined to `crates/des/src/time.rs`.

use super::{Pass, PassContext};
use crate::report::{Lint, Violation};
use crate::source::WorkspaceModel;

/// The one file allowed to do floating-point simulated-time arithmetic.
pub const TIME_HOME: &str = "crates/des/src/time.rs";

/// Confines floating-point simulated-time construction to
/// `crates/des/src/time.rs`.
///
/// Two patterns are flagged outside that file (non-test code only):
///
/// * `from_secs_f64(` — raw float-seconds construction; use the clamping
///   helpers (`from_nanos_f64`, `from_millis_f64`, `SimTime::mul_f64`)
///   whose rounding contracts live in `time.rs`;
/// * a `from_nanos(`/`from_micros(`/`from_millis(`/`from_secs(` call with
///   an `as u64` cast on the same line — an ad-hoc float→time cast that
///   silently truncates and has no NaN story.
pub struct RawTimePass;

impl Pass for RawTimePass {
    fn lint(&self) -> Lint {
        Lint::RawTime
    }

    fn description(&self) -> &'static str {
        "floating-point SimTime construction outside crates/des/src/time.rs"
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        const CONSTRUCTORS: &[&str] = &[
            "from_nanos(",
            "from_micros(",
            "from_millis(",
            "from_secs(",
        ];
        for krate in &model.crates {
            for file in &krate.src_files {
                if file.rel_path == TIME_HOME {
                    continue;
                }
                for (i, line) in file.lines.iter().enumerate() {
                    if line.in_test || line.allows("raw_time") {
                        continue;
                    }
                    if line.code.contains("from_secs_f64(") {
                        ctx.push(Violation::new(
                            Lint::RawTime,
                            &file.rel_path,
                            i + 1,
                            "floating-point SimTime construction outside des/src/time.rs; \
                             use from_nanos_f64/from_millis_f64/mul_f64 (or annotate with \
                             `// odb-analyzer: allow(raw_time)`)"
                                .to_owned(),
                        ));
                    }
                    if line.code.contains("as u64")
                        && CONSTRUCTORS.iter().any(|c| line.code.contains(c))
                    {
                        ctx.push(Violation::new(
                            Lint::RawTime,
                            &file.rel_path,
                            i + 1,
                            "float→SimTime cast (`… as u64` inside a time constructor); \
                             use SimTime::from_nanos_f64, which owns the truncation \
                             contract"
                                .to_owned(),
                        ));
                    }
                }
            }
        }
    }
}
