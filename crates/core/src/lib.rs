//! Core models from *Scaling and Characterizing Database Workloads:
//! Bridging the Gap between Research and Practice* (Hankins, Diep,
//! Annavaram, Hirano, Eri, Nueckel, Shen — MICRO 2003).
//!
//! This crate implements the paper's analytical contribution, independent of
//! any particular measurement source:
//!
//! * the **iron law of database performance** ([`ironlaw`]):
//!   `TPS = (P × F) / (IPX × CPI)`;
//! * the **CPI breakdown** methodology of the paper's Tables 2–4
//!   ([`breakdown`]): fixed stall costs per microarchitectural event, summed
//!   into a computed CPI, with the residual reported as *Other*;
//! * **linear and two-segment piecewise-linear regression** ([`regression`],
//!   [`pivot`]) used by the paper to split CPI/MPI trends into a *cached* and
//!   a *scaled* region whose intersection is the **pivot point**;
//! * **extrapolation** from a minimal representative configuration
//!   ([`extrapolate`]): predicting large-configuration behaviour from
//!   measurements at or just beyond the pivot.
//!
//! It also defines the configuration and metric vocabulary shared by the
//! simulation substrates ([`config`], [`metrics`], [`series`]): warehouses,
//! clients, processors and disks on one axis; TPS, IPX, CPI and MPI on the
//! other.
//!
//! # Quickstart
//!
//! ```
//! use odb_core::ironlaw;
//! use odb_core::pivot::TwoSegmentFit;
//!
//! // The iron law: a 4-processor, 1.6 GHz system executing 1.2M
//! // instructions per transaction at CPI 4.0 sustains ~1333 TPS.
//! let tps = ironlaw::tps(4, 1.6e9, 1.2e6, 4.0);
//! assert!((tps - 1333.3).abs() < 1.0);
//!
//! // Pivot-point analysis: a steep cached region followed by a flat
//! // scaled region intersect near x = 100.
//! let xs = [10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];
//! let ys = [1.0, 1.6, 2.6, 4.6, 4.8, 5.2, 6.0];
//! let fit = TwoSegmentFit::fit(&xs, &ys)?;
//! let pivot = fit.pivot().expect("regions intersect");
//! assert!(pivot.x > 50.0 && pivot.x < 250.0);
//! # Ok::<(), odb_core::Error>(())
//! ```

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod breakdown;
pub mod config;
pub mod error;
pub mod extrapolate;
pub mod ironlaw;
pub mod metrics;
pub mod paper;
pub mod pivot;
pub mod regression;
pub mod series;

pub use error::Error;
