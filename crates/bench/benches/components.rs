//! Substrate microbenchmarks: the data structures the simulation's
//! throughput stands on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use odb_core::config::{CacheGeometry, SystemConfig};
use odb_des::{EventQueue, SimTime};
use odb_engine::buffer::BufferCache;
use odb_engine::schema::PageMap;
use odb_engine::txn::TxnSampler;
use odb_memsim::cache::SetAssocCache;
use odb_memsim::dist::Zipf;
use odb_memsim::hierarchy::{CpuHierarchy, Space};
use odb_memsim::tlb::Tlb;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let geometry = CacheGeometry::new(1 << 20, 64, 8).unwrap();
    let mut cache = SetAssocCache::new(geometry);
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("l3_access_zipf", |b| {
        let zipf = Zipf::new(1 << 16, 0.9);
        b.iter(|| {
            let line = zipf.sample(&mut rng) * 64;
            black_box(cache.access(line, false))
        })
    });
    let mut hierarchy = CpuHierarchy::new(&SystemConfig::xeon_quad());
    group.bench_function("full_hierarchy_data_ref", |b| {
        let zipf = Zipf::new(1 << 16, 0.9);
        b.iter(|| {
            let addr = zipf.sample(&mut rng) * 64;
            black_box(hierarchy.access_data(addr, false, Space::User))
        })
    });
    let mut tlb = Tlb::new(64);
    group.bench_function("tlb_access", |b| {
        let zipf = Zipf::new(1 << 12, 0.9);
        b.iter(|| black_box(tlb.access(zipf.sample(&mut rng) << 12)))
    });
    group.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = BufferCache::new(100_000);
    let zipf = Zipf::new(400_000, 0.9);
    let mut rng = SmallRng::seed_from_u64(2);
    group.bench_function("lru_access_mixed", |b| {
        b.iter(|| {
            let page = zipf.sample(&mut rng);
            black_box(cache.access(page, page.is_multiple_of(5)))
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop_1k_horizon", |b| {
        let mut q = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_nanos(i * 97), i);
        }
        let mut t = 100_000u64;
        b.iter(|| {
            let (when, _) = q.pop().expect("queue stays full");
            t = t.max(when.as_nanos()) + rng.gen_range(1..200);
            q.schedule(SimTime::from_nanos(t), 0);
        })
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(1));
    let mut sampler = TxnSampler::new(PageMap::new(800)).unwrap();
    let mut rng = SmallRng::seed_from_u64(4);
    group.bench_function("txn_sample_800w", |b| {
        b.iter(|| black_box(sampler.sample(&mut rng).touches.len()))
    });
    let zipf = Zipf::new(100_000, 1.0).unwrap();
    group.bench_function("zipf_sample_100k", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_buffer,
    bench_event_queue,
    bench_workload
);
criterion_main!(benches);
