//! One benchmark per paper artifact: each times the regeneration of a
//! table or figure from a real (reduced) measurement sweep, and prints
//! the artifact once so `cargo bench` doubles as a results run.
//!
//! The sweep itself is computed once at startup; see the `pipeline`
//! bench for the cost of producing one measured point.

use odb_bench::harness::{bench, black_box};
use odb_bench::bench_sweep;
use odb_experiments::figures;
use odb_experiments::runner::Sweep;

/// Prints the artifact once, then times its regeneration.
fn artifact(sweep: &Sweep, name: &str, generate: impl Fn(&Sweep) -> String) {
    let rendered = generate(sweep);
    println!("\n== {name} ==\n{rendered}");
    bench(&format!("artifacts/{name}"), || {
        black_box(generate(black_box(sweep)))
    });
}

fn main() {
    eprintln!("building the benchmark sweep (18 configurations)...");
    let sweep = bench_sweep();
    let s = &sweep;

    artifact(s, "table1_clients", |s| figures::table1(s).render());
    artifact(s, "fig2_tps", |s| figures::fig2(s).render());
    artifact(s, "fig3_util_split", |s| figures::fig3(s).render());
    artifact(s, "fig4_ipx", |s| figures::fig4(s).render());
    artifact(s, "fig5_ipx_user", |s| figures::fig5(s).render());
    artifact(s, "fig6_ipx_os", |s| figures::fig6(s).render());
    artifact(s, "fig7_disk_io", |s| figures::fig7(s, 4).render());
    artifact(s, "fig8_context_switches", |s| figures::fig8(s).render());
    artifact(s, "fig9_cpi", |s| figures::fig9(s).render());
    artifact(s, "fig10_cpi_user", |s| figures::fig10(s).render());
    artifact(s, "fig11_cpi_os", |s| figures::fig11(s).render());
    artifact(s, "table2_events", |_| figures::table2().render());
    artifact(s, "table3_costs", |_| figures::table3().render());
    artifact(s, "table4_formulas", |_| figures::table4().render());
    artifact(s, "fig12_cpi_breakdown", |s| figures::fig12(s, 4).render());
    artifact(s, "fig13_mpi", |s| figures::fig13(s).render());
    artifact(s, "fig14_mpi_user", |s| figures::fig14(s).render());
    artifact(s, "fig15_mpi_os", |s| figures::fig15(s).render());
    artifact(s, "fig16_bus_ioq", |s| figures::fig16(s).render());
    artifact(s, "fig17_cpi_fit", |s| {
        figures::fig17(s, 4).expect("fit").table.render()
    });
    artifact(s, "fig18_mpi_fit", |s| {
        figures::fig18(s, 4).expect("fit").table.render()
    });
    artifact(s, "table5_pivots", |s| figures::table5(s).expect("fits").render());
    artifact(s, "sec6_2_extrapolation", |s| {
        figures::extrapolation_check(s, 4, 200)
            .expect("extrapolation")
            .render()
    });

    // Fig 19 needs its own (Itanium2) sweep; bench the fit stage against
    // a pre-run sweep like the others.
    itanium_fit();
}

fn itanium_fit() {
    use odb_core::config::SystemConfig;
    use odb_experiments::ladder::ConfigPoint;
    use odb_experiments::runner::SweepOptions;
    eprintln!("building the Itanium2 benchmark sweep (6 configurations)...");
    let points: Vec<ConfigPoint> = odb_bench::BENCH_WAREHOUSES
        .iter()
        .map(|&w| ConfigPoint {
            warehouses: w,
            processors: 4,
        })
        .collect();
    let sweep = Sweep::run_points(
        &SystemConfig::itanium2_quad(),
        &SweepOptions::quick(),
        &points,
    );
    sweep.ensure_complete().expect("itanium sweep");
    let report = figures::fig17(&sweep, 4).expect("fit");
    println!("\n== fig19_itanium_cpi ==\n{}", report.table.render());
    if let Some((x, y)) = report.pivot {
        println!("Itanium2 CPI pivot: {x:.0} warehouses (CPI {y:.2})");
    }
    bench("artifacts/fig19_itanium_cpi_fit", || {
        black_box(
            figures::fig17(black_box(&sweep), 4)
                .expect("fit")
                .table
                .render(),
        )
    });
}
