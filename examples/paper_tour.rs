//! A guided tour of the paper, one concept at a time, against a live
//! simulation: the iron law (§3.4), the IPX split (§4.2), the CPI
//! breakdown (§5.1.1, Tables 3–4), the bus effect (§5.2) and the
//! two-region model with its pivot (§6).
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use odb_core::breakdown::{Component, CpiBreakdown, StallCosts};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::pivot::TwoSegmentFit;
use odb_core::{ironlaw, metrics::Measurement};
use odb_engine::{OdbSimulator, SimOptions};

fn measure(w: u32, c: u32, p: u32) -> Result<Measurement, odb_core::Error> {
    let config = OltpConfig::new(
        WorkloadConfig::new(w, c)?,
        SystemConfig::xeon_quad().with_processors(p),
    )?;
    let mut options = SimOptions::quick();
    options.iterations = 2;
    OdbSimulator::new(config, options)?.run()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §3.4: the iron law of database performance ==");
    let m = measure(100, 48, 4)?;
    let f = 1.6e9;
    println!(
        "  measured at 100W/48C/4P: TPS {:.0}, IPX {:.2}M, CPI {:.2}, util {:.0}%",
        m.tps(),
        m.ipx() / 1e6,
        m.cpi(),
        m.cpu_utilization * 100.0
    );
    let law = m.cpu_utilization * ironlaw::tps(4, f, m.ipx(), m.cpi());
    println!(
        "  iron law: util x P x F / (IPX x CPI) = {law:.0} TPS  ({:+.1}% vs measured)",
        100.0 * (law - m.tps()) / m.tps()
    );

    println!("\n== §4.2: where the path length goes ==");
    let cached = measure(10, 12, 4)?;
    println!(
        "  10W:  user IPX {:.2}M + OS IPX {:.2}M   ({:.1} disk reads/txn)",
        cached.ipx_user() / 1e6,
        cached.ipx_os() / 1e6,
        cached.disk_reads_per_txn
    );
    let scaled = measure(800, 64, 4)?;
    println!(
        "  800W: user IPX {:.2}M + OS IPX {:.2}M   ({:.1} disk reads/txn)",
        scaled.ipx_user() / 1e6,
        scaled.ipx_os() / 1e6,
        scaled.disk_reads_per_txn
    );
    println!("  -> the user path barely moves; the OS pays for the I/O.");

    println!("\n== §5.1.1: the CPI breakdown (Tables 3-4) ==");
    let b = CpiBreakdown::compute(
        &scaled.total(),
        &StallCosts::xeon(),
        scaled.bus_transaction_cycles,
    )?;
    for c in Component::ALL {
        println!(
            "  {:>6}: {:>5.2} cycles/instr  ({:>4.1}%)",
            c.to_string(),
            b.component(c),
            100.0 * b.fraction(c)
        );
    }
    println!(
        "  -> L3 misses are the bottleneck, {:.0}% of CPI, exactly the paper's story.",
        100.0 * b.fraction(Component::L3)
    );

    println!("\n== §5.2: why CPI grows with P when MPI does not ==");
    let one = measure(800, 13, 1)?;
    println!(
        "  1P: MPI {:.2}e-3, IOQ {:.0} cycles   4P: MPI {:.2}e-3, IOQ {:.0} cycles",
        one.mpi() * 1e3,
        one.bus_transaction_cycles,
        scaled.mpi() * 1e3,
        scaled.bus_transaction_cycles
    );
    println!("  -> same miss rate; each miss waits longer in the shared-bus IOQ.");

    println!("\n== §6: the two-region model and the pivot point ==");
    let ladder = [10u32, 50, 100, 200, 400, 800];
    let clients = [12u32, 32, 48, 48, 56, 64];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (&w, &c) in ladder.iter().zip(&clients) {
        let m = measure(w, c, 4)?;
        println!("  {w:>4}W: CPI {:.3}", m.cpi());
        xs.push(w as f64);
        ys.push(m.cpi());
    }
    let fit = TwoSegmentFit::fit(&xs, &ys)?;
    println!(
        "  cached region:  CPI = {:.5} W + {:.3}",
        fit.cached.slope, fit.cached.intercept
    );
    println!(
        "  scaled region:  CPI = {:.5} W + {:.3}",
        fit.scaled.slope, fit.scaled.intercept
    );
    match fit.pivot() {
        Some(p) => println!(
            "  pivot at {:.0} warehouses — the paper's Table 5 reports 130 for 4P.\n\
             \n\"there is no mysterious chasm between small cached setups and large\n\
             scaled setups\" — simulate past the pivot and extrapolate the rest.",
            p.x
        ),
        None => println!("  segments parallel at this fidelity; rerun with standard options"),
    }
    Ok(())
}
