//! One benchmark per paper artifact: each times the regeneration of a
//! table or figure from a real (reduced) measurement sweep, and prints
//! the artifact once so `cargo bench` doubles as a results run.
//!
//! The sweep itself is computed once at startup; see the `pipeline`
//! bench group for the cost of producing one measured point.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use odb_bench::bench_sweep;
use odb_experiments::figures;
use odb_experiments::runner::Sweep;
use std::sync::OnceLock;

fn sweep() -> &'static Sweep {
    static SWEEP: OnceLock<Sweep> = OnceLock::new();
    SWEEP.get_or_init(|| {
        eprintln!("building the benchmark sweep (18 configurations)...");
        bench_sweep()
    })
}

macro_rules! artifact_bench {
    ($fn_name:ident, $bench_name:literal, $generate:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let sweep = sweep();
            // Print the artifact once so bench output doubles as results.
            #[allow(clippy::redundant_closure_call)]
            let rendered = ($generate)(sweep);
            println!("\n== {} ==\n{rendered}", $bench_name);
            let mut group = c.benchmark_group("artifacts");
            group.sample_size(20);
            group.bench_function($bench_name, |b| {
                b.iter(|| black_box(($generate)(black_box(sweep))))
            });
            group.finish();
        }
    };
}

artifact_bench!(table1, "table1_clients", |s: &Sweep| figures::table1(s)
    .render());
artifact_bench!(fig2, "fig2_tps", |s: &Sweep| figures::fig2(s).render());
artifact_bench!(fig3, "fig3_util_split", |s: &Sweep| figures::fig3(s)
    .render());
artifact_bench!(fig4, "fig4_ipx", |s: &Sweep| figures::fig4(s).render());
artifact_bench!(fig5, "fig5_ipx_user", |s: &Sweep| figures::fig5(s)
    .render());
artifact_bench!(fig6, "fig6_ipx_os", |s: &Sweep| figures::fig6(s).render());
artifact_bench!(fig7, "fig7_disk_io", |s: &Sweep| figures::fig7(s, 4)
    .render());
artifact_bench!(fig8, "fig8_context_switches", |s: &Sweep| figures::fig8(s)
    .render());
artifact_bench!(fig9, "fig9_cpi", |s: &Sweep| figures::fig9(s).render());
artifact_bench!(fig10, "fig10_cpi_user", |s: &Sweep| figures::fig10(s)
    .render());
artifact_bench!(fig11, "fig11_cpi_os", |s: &Sweep| figures::fig11(s)
    .render());
artifact_bench!(table2, "table2_events", |_s: &Sweep| figures::table2()
    .render());
artifact_bench!(table3, "table3_costs", |_s: &Sweep| figures::table3()
    .render());
artifact_bench!(table4, "table4_formulas", |_s: &Sweep| figures::table4()
    .render());
artifact_bench!(fig12, "fig12_cpi_breakdown", |s: &Sweep| figures::fig12(
    s, 4
)
.render());
artifact_bench!(fig13, "fig13_mpi", |s: &Sweep| figures::fig13(s).render());
artifact_bench!(fig14, "fig14_mpi_user", |s: &Sweep| figures::fig14(s)
    .render());
artifact_bench!(fig15, "fig15_mpi_os", |s: &Sweep| figures::fig15(s)
    .render());
artifact_bench!(fig16, "fig16_bus_ioq", |s: &Sweep| figures::fig16(s)
    .render());
artifact_bench!(fig17, "fig17_cpi_fit", |s: &Sweep| {
    figures::fig17(s, 4).expect("fit").table.render()
});
artifact_bench!(fig18, "fig18_mpi_fit", |s: &Sweep| {
    figures::fig18(s, 4).expect("fit").table.render()
});
artifact_bench!(table5, "table5_pivots", |s: &Sweep| {
    figures::table5(s).expect("fits").render()
});
artifact_bench!(extrapolate, "sec6_2_extrapolation", |s: &Sweep| {
    figures::extrapolation_check(s, 4, 200)
        .expect("extrapolation")
        .render()
});

/// Fig 19 needs its own (Itanium2) sweep; bench the fit stage against a
/// pre-run sweep like the others.
fn fig19(c: &mut Criterion) {
    use odb_core::config::SystemConfig;
    use odb_experiments::ladder::ConfigPoint;
    use odb_experiments::runner::SweepOptions;
    static ITANIUM: OnceLock<Sweep> = OnceLock::new();
    let sweep = ITANIUM.get_or_init(|| {
        eprintln!("building the Itanium2 benchmark sweep (6 configurations)...");
        let points: Vec<ConfigPoint> = odb_bench::BENCH_WAREHOUSES
            .iter()
            .map(|&w| ConfigPoint {
                warehouses: w,
                processors: 4,
            })
            .collect();
        let sweep = Sweep::run_points(
            &SystemConfig::itanium2_quad(),
            &SweepOptions::quick(),
            &points,
        );
        sweep.ensure_complete().expect("itanium sweep");
        sweep
    });
    let report = figures::fig17(sweep, 4).expect("fit");
    println!("\n== fig19_itanium_cpi ==\n{}", report.table.render());
    if let Some((x, y)) = report.pivot {
        println!("Itanium2 CPI pivot: {x:.0} warehouses (CPI {y:.2})");
    }
    let mut group = c.benchmark_group("artifacts");
    group.sample_size(20);
    group.bench_function("fig19_itanium_cpi_fit", |b| {
        b.iter(|| black_box(figures::fig17(black_box(sweep), 4).expect("fit").table.render()))
    });
    group.finish();
}

criterion_group!(
    benches, table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, table2,
    table3, table4, fig12, fig13, fig14, fig15, fig16, fig17, fig18, table5, extrapolate,
    fig19
);
criterion_main!(benches);
