//! Offline stub for `proptest`: the `proptest!` macro swallows its body,
//! so property tests compile to nothing in this container. Modules that
//! use it do `use proptest::prelude::*;` (glob imports never warn as
//! unused) and reference `proptest::collection::*` only *inside* the
//! macro body, which is discarded before name resolution.

/// Discards the whole property-test block.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

pub mod prelude {
    pub use crate::proptest;
}
