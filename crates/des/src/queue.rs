//! The pending-event set: a cancellable priority queue with deterministic
//! FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Heap entry ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with the
        // sequence number breaking ties so same-instant events pop FIFO.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list over payloads of type `E`.
///
/// Events at equal timestamps are delivered in the order they were
/// scheduled, which makes whole simulations reproducible. Cancellation is
/// O(1) amortized: cancelled sequence numbers are tombstoned and skipped
/// at pop time.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers scheduled but neither delivered nor cancelled.
    // Point-access only (insert/remove/contains, never iterated); delivery
    // order comes from the heap, so hash order can never leak.
    // odb-analyzer: allow(unordered_iteration)
    live: std::collections::HashSet<u64>,
    /// Timestamp of the last delivered event: the simulation clock never
    /// runs backwards, and nothing may be scheduled in the past.
    #[cfg(feature = "invariants")]
    last_delivered: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            // odb-analyzer: allow(unordered_iteration) — see field above
            live: std::collections::HashSet::new(),
            #[cfg(feature = "invariants")]
            last_delivered: SimTime::ZERO,
        }
    }

    /// Schedules `payload` for delivery at absolute time `at` and returns
    /// a handle usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        #[cfg(feature = "invariants")]
        debug_assert!(
            at >= self.last_delivered,
            "event scheduled in the past: at {at} but the clock reached {}",
            self.last_delivered
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` only if the
    /// event had not yet been delivered or cancelled; cancelling a
    /// delivered, already-cancelled, or never-issued handle is a no-op
    /// that returns `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.live.remove(&handle.0)
    }

    /// Removes and returns the earliest live event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.live.remove(&entry.seq) {
                #[cfg(feature = "invariants")]
                {
                    debug_assert!(
                        entry.time >= self.last_delivered,
                        "time ran backwards: delivering {} after {}",
                        entry.time,
                        self.last_delivered
                    );
                    self.last_delivered = entry.time;
                }
                return Some((entry.time, entry.payload));
            }
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.live.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live_events", &self.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_nanos(1), 1);
        let h2 = q.schedule(SimTime::from_nanos(2), 2);
        q.schedule(SimTime::from_nanos(3), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 3)));
        assert_eq!(q.pop(), None);
        // Cancelling an already-delivered event is a no-op.
        assert!(!q.cancel(h1));
        // A handle that was never issued is rejected.
        assert!(!q.cancel(EventHandle(999)));
    }

    #[test]
    fn peek_time_sees_through_cancellations() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_nanos(1), "dead");
        q.schedule(SimTime::from_nanos(5), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    /// With the `invariants` feature on, scheduling behind the delivered
    /// clock trips the debug assertion instead of silently corrupting the
    /// simulation's causality.
    #[cfg(all(feature = "invariants", debug_assertions))]
    #[test]
    fn invariants_catch_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(SimTime::from_nanos(5), 2);
        }));
        assert!(caught.is_err(), "past scheduling must trip the invariant");
    }

    #[test]
    fn debug_is_informative() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::ZERO, 0);
        let s = format!("{q:?}");
        assert!(s.contains("live_events: 1"));
    }

    proptest! {
        /// Popping always yields non-decreasing timestamps, with FIFO
        /// delivery among equal timestamps, under any schedule/cancel mix.
        #[test]
        fn ordering_invariant(
            ops in proptest::collection::vec((0u64..50, proptest::bool::weighted(0.2)), 1..200)
        ) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &(t, cancel_one)) in ops.iter().enumerate() {
                handles.push(q.schedule(SimTime::from_nanos(t), i));
                if cancel_one && !handles.is_empty() {
                    let victim = handles[i / 2];
                    q.cancel(victim);
                }
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut popped = 0usize;
            while let Some((t, id)) = q.pop() {
                popped += 1;
                if let Some((lt, lid)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(id > lid, "FIFO violated at {t:?}");
                    }
                }
                last = Some((t, id));
            }
            prop_assert!(popped <= ops.len());
        }

        /// len() always equals the number of events pop() will deliver.
        #[test]
        fn len_matches_drain(
            times in proptest::collection::vec(0u64..1000, 0..100),
            cancel_idx in proptest::collection::vec(0usize..100, 0..20),
        ) {
            let mut q = EventQueue::new();
            let handles: Vec<_> = times
                .iter()
                .map(|&t| q.schedule(SimTime::from_nanos(t), ()))
                .collect();
            for &i in &cancel_idx {
                if i < handles.len() {
                    q.cancel(handles[i]);
                }
            }
            let expected = q.len();
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            prop_assert_eq!(n, expected);
        }
    }
}
