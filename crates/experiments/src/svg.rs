//! SVG line charts for the HTML report.
//!
//! Self-contained (no scripts, no external assets): each chart is one
//! `<svg>` element with axes, gridlines, per-series polylines with point
//! markers, and a legend. Colors follow a fixed six-slot palette keyed
//! by series order, so `1P`/`2P`/`4P` are consistent across figures.

use odb_core::series::Series;
use std::fmt::Write as _;

/// Chart dimensions and margins, in SVG user units (pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Total width.
    pub width: f64,
    /// Total height.
    pub height: f64,
    /// Margin reserved for axis labels (left/bottom) and padding.
    pub margin: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 640.0,
            height: 360.0,
            margin: 56.0,
        }
    }
}

/// The series color palette (colorblind-friendly hues).
const PALETTE: [&str; 6] = [
    "#3b6fb6", // blue
    "#d1495b", // red
    "#2e8b57", // green
    "#8a6fb8", // purple
    "#c98a2b", // ochre
    "#4c4c4c", // gray
];

/// Escapes text for inclusion in SVG/HTML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders labelled series as one `<svg>` line chart.
///
/// Degenerate inputs (no finite points) render an "(no data)" placeholder
/// SVG rather than failing.
pub fn line_chart(title: &str, x_label: &str, series: &[Series], options: SvgOptions) -> String {
    let w = options.width;
    let h = options.height;
    let m = options.margin;
    let plot_w = (w - 1.8 * m).max(10.0);
    let plot_h = (h - 2.0 * m).max(10.0);

    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points().iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    let _ = write!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"##
    );
    let _ = write!(
        out,
        r##"<text x="{}" y="18" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"##,
        w / 2.0,
        escape(title)
    );
    if points.is_empty() {
        let _ = write!(
            out,
            r##"<text x="{}" y="{}" text-anchor="middle">(no data)</text></svg>"##,
            w / 2.0,
            h / 2.0
        );
        return out;
    }

    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if min_y > 0.0 && min_y < 0.5 * max_y {
        min_y = 0.0; // anchor at zero when the data starts low
    }
    if (max_y - min_y).abs() < f64::EPSILON {
        max_y += 1.0;
        min_y -= 1.0;
    }
    if (max_x - min_x).abs() < f64::EPSILON {
        max_x += 1.0;
    }
    let sx = |x: f64| m + (x - min_x) / (max_x - min_x) * plot_w;
    let sy = |y: f64| m / 2.0 + plot_h - (y - min_y) / (max_y - min_y) * plot_h;

    // Gridlines + y tick labels (five divisions).
    for i in 0..=4 {
        let frac = i as f64 / 4.0;
        let y_val = min_y + frac * (max_y - min_y);
        let py = sy(y_val);
        let _ = write!(
            out,
            r##"<line x1="{}" y1="{py}" x2="{}" y2="{py}" stroke="#ddd" stroke-width="1"/>"##,
            m,
            m + plot_w
        );
        let _ = write!(
            out,
            r##"<text x="{}" y="{}" text-anchor="end">{}</text>"##,
            m - 6.0,
            py + 4.0,
            format_tick(y_val)
        );
    }
    // X ticks at each distinct x.
    let mut xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs.dedup();
    for &x in &xs {
        let px = sx(x);
        let _ = write!(
            out,
            r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#eee" stroke-width="1"/>"##,
            m / 2.0,
            m / 2.0 + plot_h
        );
        let _ = write!(
            out,
            r##"<text x="{px}" y="{}" text-anchor="middle">{}</text>"##,
            m / 2.0 + plot_h + 16.0,
            format_tick(x)
        );
    }
    // Axes.
    let _ = write!(
        out,
        r##"<rect x="{}" y="{}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#555"/>"##,
        m,
        m / 2.0
    );
    let _ = write!(
        out,
        r##"<text x="{}" y="{}" text-anchor="middle" font-style="italic">{}</text>"##,
        m + plot_w / 2.0,
        h - 8.0,
        escape(x_label)
    );

    // Series polylines + markers + legend.
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<(f64, f64)> = s
            .points()
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        let _ = write!(
            out,
            r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"##,
            path.join(" ")
        );
        for &(x, y) in &pts {
            let _ = write!(
                out,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"##,
                sx(x),
                sy(y)
            );
        }
        let lx = m + plot_w + 8.0;
        let ly = m / 2.0 + 14.0 + 18.0 * si as f64;
        let _ = write!(
            out,
            r##"<rect x="{lx}" y="{}" width="10" height="10" fill="{color}"/>"##,
            ly - 9.0
        );
        let _ = write!(
            out,
            r##"<text x="{}" y="{ly}">{}</text>"##,
            lx + 14.0,
            escape(s.label())
        );
    }
    out.push_str("</svg>");
    out
}

/// Compact tick formatting.
fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || v == v.trunc() {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series::from_xy("1P", [10.0, 100.0, 800.0], [2.5, 3.3, 4.5]),
            Series::from_xy("4P", [10.0, 100.0, 800.0], [2.8, 3.8, 4.9]),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = line_chart("Figure 9: CPI", "warehouses", &sample(), SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("Figure 9: CPI"));
        assert!(svg.contains("warehouses"));
        assert!(svg.contains("1P"));
        assert!(svg.contains("4P"));
        // Distinct palette slots.
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let s = Series::from_xy("a<b>&\"c\"", [1.0, 2.0], [1.0, 2.0]);
        let svg = line_chart("t<i>&", "x & y", &[s], SvgOptions::default());
        assert!(!svg.contains("<i>"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(svg.contains("t&lt;i&gt;&amp;"));
    }

    #[test]
    fn empty_input_renders_placeholder() {
        let svg = line_chart("empty", "x", &[], SvgOptions::default());
        assert!(svg.contains("(no data)"));
        assert!(svg.ends_with("</svg>"));
        let nan = Series::from_xy("n", [f64::NAN], [1.0]);
        assert!(line_chart("nan", "x", &[nan], SvgOptions::default()).contains("(no data)"));
    }

    #[test]
    fn flat_and_single_point_series_render() {
        let flat = Series::from_xy("flat", [1.0, 2.0, 3.0], [5.0, 5.0, 5.0]);
        let svg = line_chart("flat", "x", &[flat], SvgOptions::default());
        assert!(svg.contains("<polyline"));
        let single = Series::from_xy("one", [7.0], [3.0]);
        let svg2 = line_chart("one", "x", &[single], SvgOptions::default());
        assert!(svg2.contains("<circle"));
    }

    #[test]
    fn ticks_format_compactly() {
        assert_eq!(format_tick(800.0), "800");
        assert_eq!(format_tick(1200.0), "1200");
        assert_eq!(format_tick(4.944), "4.94");
        assert_eq!(format_tick(13.37), "13.4");
    }
}
