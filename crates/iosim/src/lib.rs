//! Disk-array simulation for the ODB workload-scaling study.
//!
//! The paper's machine stripes the database over 26 Ultra320 spindles with
//! two dedicated redo-log volumes (§3.1, §3.3). Disk behaviour shapes
//! three of the paper's findings:
//!
//! * disk reads per transaction grow once the working set exceeds the
//!   buffer cache (Fig 7) — the *demand* side, produced by `odb-engine`;
//! * blocked reads drive context switching (Fig 8) — the *latency* side,
//!   produced here by per-spindle FIFO queueing;
//! * the array's aggregate IOPS ceiling creates the I/O-bound region where
//!   CPU utilization pins below target (Fig 2's 1200 W point) — the
//!   *saturation* side, an emergent property of the queues.
//!
//! [`DiskArray`] is deliberately simple: random requests cost a
//! seek+rotation+transfer service time with bounded jitter, sequential log
//! appends cost much less, and each spindle serves FIFO. No elevator
//! scheduling — Linux 2.4's behaviour under Oracle's mostly-random load is
//! approximated well by FIFO at this granularity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use odb_core::config::DiskArrayConfig;
use odb_des::{IoKind, ObserverHub, SimEvent, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Per-spindle request scheduling discipline.
///
/// The array hands out completion times at submission, so SCAN is
/// modelled through its *effect* rather than literal reordering: with a
/// sorted service order, the seek component of each request shrinks as
/// the queue deepens (classic elevator amortization), while FIFO pays the
/// full random seek regardless of load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Serve in arrival order at full per-request cost (the baseline; a
    /// good match for Linux 2.4 under Oracle's mostly-random load).
    #[default]
    Fifo,
    /// Elevator scheduling: seek time amortizes across the sorted queue.
    Scan,
}

/// Fraction of a random request's service time that is seek (the part an
/// elevator can amortize); the rest is rotation + transfer.
const SEEK_FRACTION: f64 = 0.55;

/// What a request is for; determines its service-time model and routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Synchronous database-block read (a server process is blocked on it).
    Read,
    /// Sequential redo-log append by the log writer.
    LogWrite,
    /// Asynchronous dirty-page writeback by the database writer.
    PageWrite,
}

impl RequestKind {
    /// The observer-seam mirror of this kind (the seam's event vocabulary
    /// lives in `odb-des`, below this crate).
    pub fn io_kind(self) -> IoKind {
        match self {
            RequestKind::Read => IoKind::Read,
            RequestKind::LogWrite => IoKind::LogWrite,
            RequestKind::PageWrite => IoKind::PageWrite,
        }
    }
}

/// Per-kind and per-spindle accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrayStats {
    /// Completed read requests.
    pub reads: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Completed log appends.
    pub log_writes: u64,
    /// Log bytes written.
    pub log_bytes: u64,
    /// Completed page writebacks.
    pub page_writes: u64,
    /// Page bytes written back.
    pub page_bytes: u64,
    /// Summed service time across spindles, nanoseconds (for utilization).
    pub busy_ns: u64,
    /// Summed queueing delay experienced by reads, nanoseconds.
    pub read_wait_ns: u64,
}

impl ArrayStats {
    /// Mean time a read spent queued before service, in milliseconds.
    pub fn mean_read_wait_ms(&self) -> f64 {
        if self.reads > 0 {
            self.read_wait_ns as f64 / self.reads as f64 / 1e6
        } else {
            0.0
        }
    }
}

/// One spindle: busy until a known instant, with its outstanding
/// completion times tracked for queue-depth-aware scheduling.
#[derive(Debug, Clone, Default)]
struct Disk {
    busy_until: SimTime,
    /// Completion times of requests still outstanding (pruned lazily).
    outstanding: VecDeque<SimTime>,
}

impl Disk {
    /// Queue depth as of `now`.
    fn depth(&mut self, now: SimTime) -> usize {
        while self.outstanding.front().is_some_and(|&t| t <= now) {
            self.outstanding.pop_front();
        }
        self.outstanding.len()
    }
}

/// The striped disk array.
///
/// Data pages stripe over the data spindles by page number; log appends
/// round-robin over the dedicated log spindles.
///
/// ```
/// use odb_core::config::DiskArrayConfig;
/// use odb_des::{ObserverHub, SimTime};
/// use odb_iosim::{DiskArray, RequestKind};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let cfg = DiskArrayConfig { disks: 26, service_time_ms: 8.0 };
/// let mut array = DiskArray::new(cfg, 2)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut hub = ObserverHub::new();
/// let done = array.submit(RequestKind::Read, 7, 8192, SimTime::ZERO, &mut rng, &mut hub);
/// assert!(done > SimTime::ZERO);
/// # Ok::<(), odb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiskArray {
    config: DiskArrayConfig,
    scheduler: Scheduler,
    data_disks: Vec<Disk>,
    log_disks: Vec<Disk>,
    next_log_disk: usize,
    stats: ArrayStats,
}

/// Log appends are sequential: a fraction of the random service time.
const LOG_SERVICE_FRACTION: f64 = 0.12;
/// Service-time jitter: uniform in `[1 − J, 1 + J]` around the mean.
const SERVICE_JITTER: f64 = 0.35;

impl DiskArray {
    /// Creates an array with `log_disks` spindles reserved for the redo
    /// log and the remainder striping data.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] when the configuration is
    /// invalid or does not leave at least one data spindle.
    pub fn new(config: DiskArrayConfig, log_disks: u32) -> Result<Self, odb_core::Error> {
        Self::with_scheduler(config, log_disks, Scheduler::Fifo)
    }

    /// Creates an array with an explicit per-spindle scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] when the configuration is
    /// invalid or does not leave at least one data spindle.
    pub fn with_scheduler(
        config: DiskArrayConfig,
        log_disks: u32,
        scheduler: Scheduler,
    ) -> Result<Self, odb_core::Error> {
        config.validate()?;
        if log_disks >= config.disks {
            return Err(odb_core::Error::InvalidConfig {
                field: "log_disks",
                reason: format!(
                    "{log_disks} log spindles leave no data spindles out of {}",
                    config.disks
                ),
            });
        }
        let data = (config.disks - log_disks) as usize;
        Ok(Self {
            config,
            scheduler,
            data_disks: vec![Disk::default(); data],
            log_disks: vec![Disk::default(); log_disks.max(1) as usize],
            next_log_disk: 0,
            stats: ArrayStats::default(),
        })
    }

    /// The scheduling discipline in force.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The underlying configuration.
    pub fn config(&self) -> DiskArrayConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Resets statistics (after warm-up) without draining queues.
    pub fn reset_stats(&mut self) {
        self.stats = ArrayStats::default();
    }

    /// Number of data spindles.
    pub fn data_disk_count(&self) -> usize {
        self.data_disks.len()
    }

    /// Submits a request at simulated time `now` and returns its
    /// completion time. `locator` selects the stripe for data requests
    /// (page number); it is ignored for log appends.
    ///
    /// The completion is announced on the observer seam at submission
    /// time (service times are deterministic once the jitter is drawn,
    /// so the completion instant is already known); the emitted
    /// [`SimEvent::IoComplete`] carries that future instant in `done`.
    pub fn submit(
        &mut self,
        kind: RequestKind,
        locator: u64,
        bytes: u64,
        now: SimTime,
        rng: &mut SmallRng,
        hub: &mut ObserverHub,
    ) -> SimTime {
        let mean_ms = match kind {
            RequestKind::Read | RequestKind::PageWrite => self.config.service_time_ms,
            RequestKind::LogWrite => self.config.service_time_ms * LOG_SERVICE_FRACTION,
        };
        let jitter = 1.0 + SERVICE_JITTER * (rng.gen::<f64>() * 2.0 - 1.0);

        let scheduler = self.scheduler;
        let disk = match kind {
            RequestKind::Read | RequestKind::PageWrite => {
                let i = (locator % self.data_disks.len() as u64) as usize;
                &mut self.data_disks[i]
            }
            RequestKind::LogWrite => {
                let i = self.next_log_disk;
                self.next_log_disk = (self.next_log_disk + 1) % self.log_disks.len();
                &mut self.log_disks[i]
            }
        };
        // Elevator amortization: the seek share of a *random* request
        // shrinks with the number of requests sorted into the sweep.
        // Sequential log appends have no seek to amortize.
        let mean_ms = match (scheduler, kind) {
            (Scheduler::Scan, RequestKind::Read | RequestKind::PageWrite) => {
                let depth = disk.depth(now) as f64;
                mean_ms * ((1.0 - SEEK_FRACTION) + SEEK_FRACTION / (depth + 1.0).sqrt())
            }
            _ => mean_ms,
        };
        let service = SimTime::from_millis_f64(mean_ms * jitter);
        let start = disk.busy_until.max(now);
        let done = start + service;
        disk.busy_until = done;
        disk.outstanding.push_back(done);
        if disk.outstanding.len() > 4_096 {
            disk.outstanding.pop_front();
        }

        self.stats.busy_ns += service.as_nanos();
        match kind {
            RequestKind::Read => {
                self.stats.reads += 1;
                self.stats.read_bytes += bytes;
                self.stats.read_wait_ns += start.saturating_since(now).as_nanos();
            }
            RequestKind::LogWrite => {
                self.stats.log_writes += 1;
                self.stats.log_bytes += bytes;
            }
            RequestKind::PageWrite => {
                self.stats.page_writes += 1;
                self.stats.page_bytes += bytes;
            }
        }
        hub.emit_with(now, || SimEvent::IoComplete {
            kind: kind.io_kind(),
            locator,
            bytes,
            done,
        });
        done
    }

    /// Array utilization over a window: busy spindle-time over available
    /// spindle-time, in `[0, 1]`.
    pub fn utilization(&self, window: SimTime) -> f64 {
        let capacity = window.as_nanos() as f64 * self.config.disks as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.stats.busy_ns as f64 / capacity).min(1.0)
    }

    /// The analytic random-I/O ceiling of the data spindles, requests/sec.
    pub fn data_max_iops(&self) -> f64 {
        self.data_disks.len() as f64 * 1000.0 / self.config.service_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn array() -> DiskArray {
        DiskArray::new(
            DiskArrayConfig {
                disks: 26,
                service_time_ms: 8.0,
            },
            2,
        )
        .unwrap()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// A fresh, empty hub (most tests don't observe).
    fn nohub() -> ObserverHub {
        ObserverHub::new()
    }

    #[test]
    fn submit_announces_completion_on_the_seam() {
        struct Sink(Vec<SimEvent>);
        impl odb_des::SimObserver for Sink {
            fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
                self.0.push(event.clone());
            }
        }
        let mut a = array();
        let mut r = rng();
        let mut hub = ObserverHub::new();
        hub.register(Box::new(Sink(Vec::new())));
        let done = a.submit(
            RequestKind::LogWrite,
            0,
            6144,
            SimTime::from_micros(10),
            &mut r,
            &mut hub,
        );
        let events = &hub.get::<Sink>().unwrap().0;
        assert_eq!(
            events.as_slice(),
            &[SimEvent::IoComplete {
                kind: IoKind::LogWrite,
                locator: 0,
                bytes: 6144,
                done,
            }]
        );
    }

    #[test]
    fn construction_splits_spindles() {
        let a = array();
        assert_eq!(a.data_disk_count(), 24);
        assert!((a.data_max_iops() - 3000.0).abs() < 1e-9);
        assert!(DiskArray::new(
            DiskArrayConfig {
                disks: 2,
                service_time_ms: 8.0
            },
            2
        )
        .is_err());
    }

    #[test]
    fn idle_read_takes_about_one_service_time() {
        let mut a = array();
        let mut r = rng();
        let done = a.submit(RequestKind::Read, 0, 8192, SimTime::ZERO, &mut r, &mut nohub());
        let ms = done.as_secs_f64() * 1e3;
        assert!(
            (8.0 * (1.0 - SERVICE_JITTER)..=8.0 * (1.0 + SERVICE_JITTER)).contains(&ms),
            "service {ms} ms"
        );
        assert_eq!(a.stats().reads, 1);
        assert_eq!(a.stats().read_bytes, 8192);
        assert_eq!(a.stats().read_wait_ns, 0);
    }

    #[test]
    fn log_writes_are_fast_and_round_robin() {
        let mut a = array();
        let mut r = rng();
        let done = a.submit(RequestKind::LogWrite, 0, 6144, SimTime::ZERO, &mut r, &mut nohub());
        let ms = done.as_secs_f64() * 1e3;
        assert!(ms < 8.0 * 0.12 * (1.0 + SERVICE_JITTER), "log append {ms} ms");
        // Two consecutive appends land on different log spindles, so the
        // second does not queue behind the first.
        let done2 = a.submit(RequestKind::LogWrite, 0, 6144, SimTime::ZERO, &mut r, &mut nohub());
        assert!(done2.as_secs_f64() * 1e3 < 2.0, "no queueing: {done2}");
        assert_eq!(a.stats().log_writes, 2);
    }

    #[test]
    fn same_stripe_queues_fifo() {
        let mut a = array();
        let mut r = rng();
        let first = a.submit(RequestKind::Read, 5, 8192, SimTime::ZERO, &mut r, &mut nohub());
        let second = a.submit(RequestKind::Read, 5 + 24, 8192, SimTime::ZERO, &mut r, &mut nohub());
        assert!(second > first, "same spindle serializes");
        assert!(a.stats().read_wait_ns > 0, "second request waited");
        assert!(a.stats().mean_read_wait_ms() > 0.0);
    }

    #[test]
    fn different_stripes_run_in_parallel() {
        let mut a = array();
        let mut r = rng();
        let mut max_done = SimTime::ZERO;
        for page in 0..24u64 {
            let done = a.submit(RequestKind::Read, page, 8192, SimTime::ZERO, &mut r, &mut nohub());
            max_done = max_done.max(done);
        }
        // 24 reads over 24 spindles: all finish within ~one service time.
        assert!(max_done.as_secs_f64() * 1e3 < 8.0 * (1.0 + SERVICE_JITTER) + 0.1);
    }

    #[test]
    fn throughput_saturates_at_analytic_ceiling() {
        let mut a = array();
        let mut r = rng();
        // Offer 2x the ceiling for one simulated second.
        let offered = (2.0 * a.data_max_iops()) as u64;
        let mut latest = SimTime::ZERO;
        for i in 0..offered {
            let now = SimTime::from_nanos(i * 1_000_000_000 / offered);
            latest = latest.max(a.submit(RequestKind::Read, i, 8192, now, &mut r, &mut nohub()));
        }
        // Completing the backlog takes ~2 seconds: the array is saturated.
        let took = latest.as_secs_f64();
        assert!(took > 1.5 && took < 3.0, "drain took {took}s");
        // Utilization over the drain window is pinned at the data-spindle
        // share of the array.
        let util = a.utilization(latest);
        let data_share = 24.0 / 26.0;
        assert!(
            (util - data_share).abs() < 0.08,
            "util {util} vs share {data_share}"
        );
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut a = array();
        let mut r = rng();
        a.submit(RequestKind::PageWrite, 3, 8192, SimTime::ZERO, &mut r, &mut nohub());
        assert_eq!(a.stats().page_writes, 1);
        assert_eq!(a.stats().page_bytes, 8192);
        a.reset_stats();
        assert_eq!(a.stats(), &ArrayStats::default());
        // The spindle is still busy: a new request on the same stripe queues.
        let done = a.submit(RequestKind::Read, 3, 8192, SimTime::ZERO, &mut r, &mut nohub());
        assert!(a.stats().read_wait_ns > 0 || done.as_secs_f64() > 0.004);
    }

    #[test]
    fn scan_amortizes_seeks_under_load() {
        let cfg = DiskArrayConfig {
            disks: 26,
            service_time_ms: 8.0,
        };
        let drain_time = |scheduler: Scheduler| {
            let mut a = DiskArray::with_scheduler(cfg, 2, scheduler).unwrap();
            let mut r = rng();
            // Pile 20 requests onto one spindle at t = 0.
            let mut last = SimTime::ZERO;
            for i in 0..20u64 {
                last = last.max(a.submit(RequestKind::Read, i * 24, 8192, SimTime::ZERO, &mut r, &mut nohub()));
            }
            last
        };
        let fifo = drain_time(Scheduler::Fifo);
        let scan = drain_time(Scheduler::Scan);
        assert!(
            scan.as_secs_f64() < fifo.as_secs_f64() * 0.75,
            "SCAN drains a deep queue much faster: {scan} vs {fifo}"
        );
    }

    #[test]
    fn scan_matches_fifo_when_idle() {
        let cfg = DiskArrayConfig {
            disks: 26,
            service_time_ms: 8.0,
        };
        let mut fifo = DiskArray::with_scheduler(cfg, 2, Scheduler::Fifo).unwrap();
        let mut scan = DiskArray::with_scheduler(cfg, 2, Scheduler::Scan).unwrap();
        assert_eq!(fifo.scheduler(), Scheduler::Fifo);
        assert_eq!(scan.scheduler(), Scheduler::Scan);
        // Same RNG stream: an isolated request costs the same either way.
        let a = fifo.submit(RequestKind::Read, 3, 8192, SimTime::ZERO, &mut rng(), &mut nohub());
        let b = scan.submit(RequestKind::Read, 3, 8192, SimTime::ZERO, &mut rng(), &mut nohub());
        assert_eq!(a, b, "no queue, no amortization");
        // Log appends never amortize (already sequential).
        let c = fifo.submit(RequestKind::LogWrite, 0, 6144, SimTime::ZERO, &mut rng(), &mut nohub());
        let d = scan.submit(RequestKind::LogWrite, 0, 6144, SimTime::ZERO, &mut rng(), &mut nohub());
        assert_eq!(c, d);
    }

    #[test]
    fn utilization_zero_window_is_zero() {
        let a = array();
        assert_eq!(a.utilization(SimTime::ZERO), 0.0);
    }
}
