//! Shared helpers for the benchmark suite.
//!
//! The artifact benches regenerate every paper table and figure; the
//! expensive part — the measurement sweep — runs once here and the
//! per-artifact benches time the projection/fitting/rendering stage,
//! while `pipeline` benches time the measurement machinery itself. All
//! of them run on the in-house [`harness`] (no criterion in this
//! offline workspace).
//!
//! The sweep bench (`benches/sweep.rs`) is the number CI gates on — and
//! since the observer seam landed in the engine it doubles as the
//! zero-cost check for that seam: the gated sweep runs with no external
//! observers registered, so any overhead the hooks add to the hot path
//! shows up directly in its wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use odb_core::config::SystemConfig;
use odb_engine::SimOptions;
use odb_experiments::ladder::ConfigPoint;
use odb_experiments::runner::{Sweep, SweepOptions};

/// Reduced ladder used by the benchmark sweep (covers both regions).
pub const BENCH_WAREHOUSES: [u32; 6] = [10, 50, 100, 200, 400, 800];

/// A reduced but real sweep (all three processor counts over
/// [`BENCH_WAREHOUSES`]) at quick fidelity, for artifact benches.
///
/// # Panics
///
/// Panics on simulation errors — benches have no error channel.
pub fn bench_sweep() -> Sweep {
    let mut options = SweepOptions::quick();
    // One fixed-point round keeps the setup affordable.
    options.measure = SimOptions::quick();
    let points: Vec<ConfigPoint> = [1u32, 2, 4]
        .iter()
        .flat_map(|&p| {
            BENCH_WAREHOUSES.iter().map(move |&w| ConfigPoint {
                warehouses: w,
                processors: p,
            })
        })
        .collect();
    let sweep = Sweep::run_points(&SystemConfig::xeon_quad(), &options, &points);
    sweep.ensure_complete().expect("bench sweep must run");
    sweep
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_ladder_is_sorted() {
        assert!(super::BENCH_WAREHOUSES.windows(2).all(|w| w[0] < w[1]));
    }
}
