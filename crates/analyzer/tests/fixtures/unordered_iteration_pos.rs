//! Fixture: hash-keyed simulation state (positive — must trip
//! `unordered_iteration`).
use std::collections::HashMap;

pub struct EventIndex {
    by_actor: HashMap<u64, u64>,
}

pub fn touch(idx: &EventIndex) -> usize {
    idx.by_actor.len()
}
