//! A fully-associative, LRU data-TLB over 4 KB pages.

use odb_core::Error;

/// Translation look-aside buffer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`; zero with no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses > 0 {
            self.misses as f64 / self.accesses as f64
        } else {
            0.0
        }
    }
}

/// A fully-associative TLB with true-LRU replacement over 4 KB pages.
///
/// Xeon MP's DTLB is 64-entry fully associative; at that size a linear
/// scan is faster than fancier structures and keeps the simulator simple.
///
/// ```
/// use odb_memsim::tlb::Tlb;
///
/// let mut t = Tlb::new(64)?;
/// assert!(!t.access(0x1000)); // cold miss
/// assert!(t.access(0x1FFF));  // same 4 KB page: hit
/// # Ok::<(), odb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `(page_number, stamp)` pairs; linear LRU.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    /// Index of the most recently touched entry. Reference streams have
    /// strong page locality, so checking this one entry first skips the
    /// linear scan for the common consecutive-same-page case without
    /// changing hit/miss or replacement behaviour.
    mru: usize,
    clock: u64,
    stats: TlbStats,
}

/// 4 KB pages.
const PAGE_SHIFT: u32 = 12;

impl Tlb {
    /// Creates an empty TLB holding `entries` translations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `entries` is zero.
    pub fn new(entries: usize) -> Result<Self, Error> {
        if entries == 0 {
            return Err(Error::InvalidConfig {
                field: "tlb_entries",
                reason: "TLB must have at least one entry".to_owned(),
            });
        }
        Ok(Self {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            mru: 0,
            clock: 0,
            stats: TlbStats::default(),
        })
    }

    /// Translates the page containing `addr`; returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        // MRU fast path: same page as the previous translation.
        if let Some(entry) = self.entries.get_mut(self.mru) {
            if entry.0 == page {
                entry.1 = self.clock;
                return true;
            }
        }
        if let Some((i, entry)) = self
            .entries
            .iter_mut()
            .enumerate()
            .find(|(_, (p, _))| *p == page)
        {
            entry.1 = self.clock;
            self.mru = i;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() < self.capacity {
            self.entries.push((page, self.clock));
            self.mru = self.entries.len() - 1;
        } else if let Some((i, lru)) = self
            .entries
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
        {
            *lru = (page, self.clock);
            self.mru = i;
        }
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics without evicting translations.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_different_page_misses() {
        let mut t = Tlb::new(4).unwrap();
        assert!(!t.access(0x0000));
        assert!(t.access(0x0FFF));
        assert!(!t.access(0x1000));
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2).unwrap();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000), "page 0 survived");
        assert!(!t.access(0x1000), "page 1 evicted");
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_misses() {
        let mut t = Tlb::new(64).unwrap();
        for i in 0..64u64 {
            t.access(i << PAGE_SHIFT);
        }
        t.reset_stats();
        for _ in 0..5 {
            for i in 0..64u64 {
                assert!(t.access(i << PAGE_SHIFT));
            }
        }
        assert_eq!(t.stats().misses, 0);
        assert_eq!(t.len(), 64);
        assert!(!t.is_empty());
    }

    #[test]
    fn cyclic_overflow_thrashes() {
        let mut t = Tlb::new(8).unwrap();
        for _ in 0..4 {
            for i in 0..16u64 {
                t.access(i << PAGE_SHIFT);
            }
        }
        assert!(t.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            Tlb::new(0),
            Err(Error::InvalidConfig { field: "tlb_entries", .. })
        ));
    }

    #[test]
    fn miss_ratio_zero_when_untouched() {
        let t = Tlb::new(4).unwrap();
        assert_eq!(t.stats().miss_ratio(), 0.0);
    }
}
