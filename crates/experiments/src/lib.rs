//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§4–§6) from the full-system simulation.
//!
//! The entire evaluation hangs off **one sweep** ([`runner::Sweep`]): for
//! each `(W, P)` in the paper's ladder, find the client count that
//! sustains ≥90% CPU utilization (Table 1's criterion), then take one
//! measurement-grade run. Every figure is a projection of those rows:
//!
//! | Artifact | Projection |
//! |---|---|
//! | Table 1 | the client counts themselves |
//! | Fig 2 | TPS vs `W` per `P`, with region classification |
//! | Fig 3 | OS/user split of busy time |
//! | Figs 4–6 | IPX total/user/OS |
//! | Fig 7 | disk KB per transaction by kind |
//! | Fig 8 | context switches per transaction |
//! | Figs 9–11 | CPI total/user/OS |
//! | Tables 2–4 | static (events, stall costs, formulas) |
//! | Fig 12 | CPI breakdown stack |
//! | Figs 13–15 | L3 MPI total/user/OS |
//! | Fig 16 | IOQ bus-transaction time |
//! | Figs 17–18, Table 5 | two-segment fits and pivot points |
//! | Fig 19 | the same sweep on the Itanium2 preset |
//!
//! [`figures`] holds one generator per artifact; [`report`] renders
//! aligned text tables and CSV; `ablations` (in [`figures`]) covers the
//! §6.3 conjectures (L3 size, bus bandwidth, disk bandwidth, coherence).
//! [`latency`] goes beyond the paper's throughput-shaped metrics: it
//! re-runs the trend points with the engine's observer seam attached and
//! reports per-transaction-type commit-latency quantiles (plus the
//! `--trace` JSONL event sink).
//!
//! Sweep points are independent, so [`runner::Sweep::run_points`] runs
//! them on a bounded worker pool ([`runner::SweepOptions::jobs`], the
//! CLI's `--jobs`). Per-point deterministic seeding plus ordered
//! collection make the output byte-identical at every worker count; see
//! the [`runner`] module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod figures;
pub mod html;
pub mod ladder;
pub mod latency;
pub mod persist;
pub mod report;
pub mod runner;
pub mod scorecard;
pub mod svg;

pub use ladder::{paper_ladder, ConfigPoint};
pub use runner::{Sweep, SweepOptions};
