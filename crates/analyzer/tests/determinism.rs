//! End-to-end tests for the determinism-audit pass family: each lint
//! gets a positive fixture (must trip) and a negative fixture (must stay
//! quiet), seeded into a miniature workspace — plus the self-audit test
//! that `odb-analyzer` runs clean on its own tree.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use odb_analyzer::report::Lint;

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A throwaway workspace root, removed on drop.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let root = std::env::temp_dir().join(format!(
            "odb-analyzer-det-{}-{}-{tag}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&root).expect("create temp root");
        TempTree { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(path, content).expect("write file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A minimal clean workspace covering every determinism-audited crate,
/// with both baseline sections ratcheted to zero.
fn clean_tree(tag: &str) -> TempTree {
    let t = TempTree::new(tag);
    t.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n",
    );
    for name in ["core", "des", "engine", "memsim", "ossim", "iosim"] {
        t.write(
            &format!("crates/{name}/Cargo.toml"),
            &format!("[package]\nname = \"odb-{name}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n"),
        );
        t.write(
            &format!("crates/{name}/src/lib.rs"),
            "//! Minimal.\npub fn touch() -> u32 { 1 }\n",
        );
    }
    t.write(
        "crates/analyzer/baseline.toml",
        "[panic_sites]\ncore = 0\ndes = 0\nengine = 0\nmemsim = 0\n\n\
         [determinism]\ncore = 0\ndes = 0\nengine = 0\niosim = 0\nmemsim = 0\nossim = 0\n",
    );
    t
}

fn lints_fired(root: &Path) -> Vec<Lint> {
    let analysis = odb_analyzer::analyze(root).expect("analysis runs");
    analysis.violations.iter().map(|v| v.lint).collect()
}

/// Seeds `fixture` as `crates/des/src/lib.rs` and returns the fired
/// lints.
fn fired_with_fixture(tag: &str, fixture: &str) -> Vec<Lint> {
    let t = clean_tree(tag);
    t.write("crates/des/src/lib.rs", fixture);
    lints_fired(&t.root)
}

#[test]
fn determinism_clean_tree_passes() {
    let t = clean_tree("clean");
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn unordered_iteration_positive_trips() {
    let fired = fired_with_fixture(
        "unord-pos",
        include_str!("fixtures/unordered_iteration_pos.rs"),
    );
    assert!(fired.contains(&Lint::UnorderedIteration), "fired: {fired:?}");
}

#[test]
fn unordered_iteration_negative_is_quiet() {
    let fired = fired_with_fixture(
        "unord-neg",
        include_str!("fixtures/unordered_iteration_neg.rs"),
    );
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn ambient_nondeterminism_positive_trips() {
    let fired = fired_with_fixture(
        "ambient-pos",
        include_str!("fixtures/ambient_nondeterminism_pos.rs"),
    );
    assert!(
        fired.contains(&Lint::AmbientNondeterminism),
        "fired: {fired:?}"
    );
}

#[test]
fn ambient_nondeterminism_negative_is_quiet() {
    let fired = fired_with_fixture(
        "ambient-neg",
        include_str!("fixtures/ambient_nondeterminism_neg.rs"),
    );
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn rng_discipline_positive_trips_both_shapes() {
    let t = clean_tree("rng-pos");
    t.write(
        "crates/des/src/lib.rs",
        include_str!("fixtures/rng_discipline_pos.rs"),
    );
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    let rng: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.lint == Lint::RngDiscipline)
        .collect();
    assert_eq!(rng.len(), 2, "entropy + literal seed: {rng:?}");
}

#[test]
fn rng_discipline_negative_is_quiet() {
    let fired = fired_with_fixture("rng-neg", include_str!("fixtures/rng_discipline_neg.rs"));
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn float_accumulation_positive_trips() {
    let fired = fired_with_fixture(
        "float-pos",
        include_str!("fixtures/float_accumulation_pos.rs"),
    );
    assert_eq!(
        fired,
        vec![Lint::FloatAccumulation],
        "the fixture isolates exactly one lint"
    );
}

#[test]
fn float_accumulation_negative_is_quiet() {
    let fired = fired_with_fixture(
        "float-neg",
        include_str!("fixtures/float_accumulation_neg.rs"),
    );
    assert!(fired.is_empty(), "fired: {fired:?}");
}

#[test]
fn determinism_sites_are_baseline_ratcheted_not_hard_failed() {
    // With a baseline entry covering the site, the gate stays green …
    let t = clean_tree("ratchet");
    t.write(
        "crates/des/src/lib.rs",
        include_str!("fixtures/unordered_iteration_pos.rs"),
    );
    t.write(
        "crates/analyzer/baseline.toml",
        "[panic_sites]\ncore = 0\ndes = 0\nengine = 0\nmemsim = 0\n\n\
         [determinism]\ncore = 0\ndes = 1\nengine = 0\niosim = 0\nmemsim = 0\nossim = 0\n",
    );
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "baselined site should pass: {:?}",
        analysis.violations
    );

    // … and a below-baseline count produces the ratchet-down notice.
    let t2 = clean_tree("ratchet-down");
    t2.write(
        "crates/analyzer/baseline.toml",
        "[panic_sites]\ncore = 0\ndes = 0\nengine = 0\nmemsim = 0\n\n\
         [determinism]\ncore = 0\ndes = 1\nengine = 0\niosim = 0\nmemsim = 0\nossim = 0\n",
    );
    let analysis2 = odb_analyzer::analyze(&t2.root).expect("analysis runs");
    assert!(analysis2.is_clean());
    assert!(
        analysis2.notices.iter().any(|n| n.contains("ratchet")),
        "notices: {:?}",
        analysis2.notices
    );
}

#[test]
fn legacy_escape_spelling_draws_a_deprecation_notice() {
    let t = clean_tree("legacy");
    t.write(
        "crates/des/src/lib.rs",
        "//! Minimal.\n\
         // analyzer:allow(unordered_iteration) — legacy spelling\n\
         pub struct S { pub m: std::collections::HashMap<u64, u64> }\n",
    );
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "legacy escape still silences: {:?}",
        analysis.violations
    );
    assert!(
        analysis
            .notices
            .iter()
            .any(|n| n.contains("legacy") && n.contains("odb-analyzer: allow")),
        "notices: {:?}",
        analysis.notices
    );
}

/// The acceptance criterion in executable form: the analyzer runs clean
/// on the workspace it ships in. Skipped when the build location no
/// longer looks like the workspace (e.g. a copied-out binary).
#[test]
fn self_audit_own_tree_is_clean() {
    let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") else {
        return;
    };
    let root = Path::new(manifest).join("..").join("..");
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return;
    }
    let analysis = odb_analyzer::analyze(&root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "self-audit found violations:\n{}",
        analysis
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
