//! Fixture: float reduction over an unordered source (positive — must
//! trip `float_accumulation`; the unordered_iteration escape keeps the
//! fixture single-lint).
use std::collections::HashMap;

// odb-analyzer: allow(unordered_iteration) — fixture isolates float_accumulation
pub fn total(weights: &HashMap<u64, f64>) -> f64 { weights.values().sum::<f64>() }
