//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Nanosecond resolution is fine enough to express single CPU cycles at
/// 1.6 GHz (0.625 ns rounds to whole-cycle batches in practice — the
/// engine schedules in multi-microsecond quanta) while a `u64` still spans
/// ~584 simulated years.
///
/// ```
/// use odb_des::SimTime;
///
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert!(t < SimTime::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// An instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// An instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// An instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// An instant a fractional number of seconds after the epoch, rounding
    /// to the nearest nanosecond; saturates at [`SimTime::MAX`] and clamps
    /// negative or NaN input to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// An instant a fractional number of nanoseconds after the epoch,
    /// truncating toward zero (`as u64` semantics); saturates at
    /// [`SimTime::MAX`] and clamps negative or NaN input to zero.
    ///
    /// Use this for values that are *already* in nanoseconds (service
    /// times computed by the device models); use [`SimTime::from_secs_f64`]
    /// for second-denominated input, which rounds instead.
    pub fn from_nanos_f64(ns: f64) -> Self {
        // `as` casts on floats clamp NaN to 0 and saturate at the integer
        // bounds; spelling it out keeps the contract readable.
        SimTime(ns as u64)
    }

    /// An instant a fractional number of milliseconds after the epoch;
    /// same rounding and clamping contract as [`SimTime::from_secs_f64`].
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// This instant's offset from the epoch scaled by `factor`, rounding
    /// to the nearest nanosecond; saturates at [`SimTime::MAX`] and clamps
    /// negative or NaN results to zero.
    ///
    /// This is the home for "duration × float" arithmetic (think-time
    /// sampling, jitter): `mean.mul_f64(-u.ln())` draws an exponential
    /// with mean `mean` without leaving the nanosecond domain.
    pub fn mul_f64(self, factor: f64) -> Self {
        let ns = self.0 as f64 * factor;
        if ns.is_nan() || ns <= 0.0 {
            SimTime::ZERO
        } else if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration from `earlier` to `self`, saturating to zero if
    /// `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    /// Saturating addition: the simulation horizon never wraps.
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction: durations never go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn float_nanos_truncate_like_as_casts() {
        // from_nanos_f64 must be bit-identical to the `ns as u64` casts it
        // replaced: truncation, not rounding.
        assert_eq!(SimTime::from_nanos_f64(1_234.9).as_nanos(), 1_234);
        assert_eq!(SimTime::from_nanos_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_nanos_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_nanos_f64(1e30), SimTime::MAX);
        assert_eq!(
            SimTime::from_millis_f64(1.5),
            SimTime::from_secs_f64(1.5e-3)
        );
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let base = SimTime::from_millis(10);
        assert_eq!(base.mul_f64(1.5), SimTime::from_millis(15));
        assert_eq!(base.mul_f64(0.0), SimTime::ZERO);
        assert_eq!(base.mul_f64(-2.0), SimTime::ZERO);
        assert_eq!(base.mul_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::MAX.mul_f64(2.0), SimTime::MAX);
        // Exponential draw shape: mean × -ln(u) for u in (0, 1].
        assert_eq!(base.mul_f64(-(0.5f64).ln()).as_nanos(), 6_931_472);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            SimTime::ZERO
        );
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_nanos(1)), None);
        let mut t = SimTime::from_secs(1);
        t += SimTime::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1_500));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1) > SimTime::from_millis(999));
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(3);
        assert_eq!(a.saturating_since(b), SimTime::from_secs(2));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
    }
}
