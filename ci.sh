#!/usr/bin/env bash
# The whole gate in one command: build, tests, invariant-armed tests,
# the workspace static-analysis pass, and the parallel-sweep perf gate.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q --workspace --features invariants
cargo run -p odb-analyzer

# Parallel-sweep smoke + wall-clock ratchet: runs the quick 27-point
# sweep at jobs=1 and jobs=4, asserts the two are byte-identical (the
# determinism contract of odb-experiments::runner), and fails if either
# regresses wall-clock by >25% against the checked-in baseline.
# ODB_BENCH_SKIP_GATE=1 skips the timing comparison (not the smoke) on
# hosts that are not comparable to the baseline machine.
if [ "${ODB_BENCH_SKIP_GATE:-0}" = "1" ]; then
  cargo bench -p odb-bench --bench sweep -- \
    --quick-only --jobs 4 --out target/BENCH_sweep.json
else
  cargo bench -p odb-bench --bench sweep -- \
    --quick-only --jobs 4 --out target/BENCH_sweep.json \
    --baseline results/BENCH_sweep.json --max-regress 0.25
fi
