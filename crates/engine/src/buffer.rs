//! The SGA database buffer cache.
//!
//! "The largest area in SGA is devoted to the database buffer cache,
//! which tracks the usage of the database blocks to keep the most
//! recently and frequently used blocks in memory" (§3.1). On the paper's
//! machine it is 2.8 GB ≈ 344k frames of 8 KB.
//!
//! This is a true page-level LRU (hash map + intrusive doubly-linked
//! list, O(1) per access): once the working set exceeds capacity, misses
//! — and therefore disk reads per transaction (Fig 7) — grow with `W`.
//! Dirty pages are written back only when evicted (the database writer's
//! coalescing): at small `W` hot dirty pages are never evicted, so write
//! traffic is almost entirely redo log, exactly as §4.3 reports.

use crate::schema::PageId;

/// Outcome of a buffer-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferAccess {
    /// The page was resident.
    Hit,
    /// The page was not resident and has been installed; if installing it
    /// evicted a dirty victim, that page must be written back.
    Miss {
        /// Dirty victim needing writeback, if any.
        evicted_dirty: Option<PageId>,
    },
}

impl BufferAccess {
    /// `true` for [`BufferAccess::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, BufferAccess::Hit)
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Total page accesses.
    pub accesses: u64,
    /// Accesses that required a disk read.
    pub misses: u64,
    /// Dirty evictions (asynchronous page writes).
    pub dirty_evictions: u64,
}

impl BufferStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses > 0 {
            self.misses as f64 / self.accesses as f64
        } else {
            0.0
        }
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: PageId,
    dirty: bool,
    /// Logical clock value of the most recent access (or prewarm touch);
    /// lets the database writer test whether a dirty page has gone cold.
    stamp: u64,
    /// Logical clock value of the most recent *write*; re-reads do not
    /// move it, so the database writer can write back a dirty page that
    /// is still being read (Oracle does exactly that).
    dirty_stamp: u64,
    prev: u32,
    next: u32,
}

/// A page-level LRU buffer cache with O(1) access.
///
/// ```
/// use odb_engine::buffer::BufferCache;
///
/// let mut cache = BufferCache::new(2);
/// assert!(!cache.access(10, false).is_hit());
/// assert!(!cache.access(11, false).is_hit());
/// assert!(cache.access(10, false).is_hit());
/// // Installing a third page evicts page 11 (the least recent).
/// cache.access(12, false);
/// assert!(!cache.contains(11));
/// ```
#[derive(Debug, Clone)]
pub struct BufferCache {
    frames: Vec<Frame>,
    // Page table is point-access only (get/insert/remove/contains_key,
    // never iterated); O(1) lookup is the per-access hot path, so hash
    // order can never leak into sim state.
    // odb-analyzer: allow(unordered_iteration)
    map: std::collections::HashMap<PageId, u32>,
    /// Most recently used frame.
    head: u32,
    /// Least recently used frame.
    tail: u32,
    capacity: usize,
    dirty: usize,
    stats: BufferStats,
    /// Monotonic logical clock, advanced by every access and prewarm.
    clock: u64,
}

impl BufferCache {
    /// A cache holding `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u32::MAX - 1` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer cache needs at least one frame");
        assert!((capacity as u64) < u32::MAX as u64, "frame index is u32");
        Self {
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            // odb-analyzer: allow(unordered_iteration) — see field above
            map: std::collections::HashMap::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            dirty: 0,
            stats: BufferStats::default(),
            clock: 0,
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of resident dirty pages.
    pub fn dirty_len(&self) -> usize {
        self.dirty
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets statistics without evicting pages.
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// `true` when `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Accesses `page`, making it most-recently-used; `write` marks it
    /// dirty. On a miss the page is installed, evicting the LRU victim
    /// when full.
    pub fn access(&mut self, page: PageId, write: bool) -> BufferAccess {
        self.stats.accesses += 1;
        self.clock += 1;
        if let Some(&idx) = self.map.get(&page) {
            self.touch(idx);
            let frame = &mut self.frames[idx as usize];
            frame.stamp = self.clock;
            if write {
                frame.dirty_stamp = self.clock;
                if !frame.dirty {
                    frame.dirty = true;
                    self.dirty += 1;
                }
            }
            #[cfg(feature = "invariants")]
            self.check();
            return BufferAccess::Hit;
        }
        self.stats.misses += 1;
        let evicted_dirty = self.install(page, write);
        #[cfg(feature = "invariants")]
        self.check();
        BufferAccess::Miss { evicted_dirty }
    }

    /// Installs `page` without counting statistics — used to pre-warm the
    /// cache to steady state before measurement, mirroring the paper's
    /// twenty-minute warm-up (§3.3). `dirty` seeds the page's
    /// steady-state modified flag, so eviction-driven writeback starts at
    /// its steady rate instead of waiting for freshly dirtied pages to
    /// age through the whole LRU stack.
    pub fn prewarm(&mut self, page: PageId, dirty: bool) {
        self.clock += 1;
        if let Some(&idx) = self.map.get(&page) {
            self.touch(idx);
            let frame = &mut self.frames[idx as usize];
            frame.stamp = self.clock;
            if dirty {
                frame.dirty_stamp = self.clock;
                if !frame.dirty {
                    frame.dirty = true;
                    self.dirty += 1;
                }
            }
            #[cfg(feature = "invariants")]
            self.check();
            return;
        }
        self.install(page, dirty);
        #[cfg(feature = "invariants")]
        self.check();
    }

    /// Marks a resident page clean (the database writer finished writing
    /// it back). Returns `true` if the page was resident and dirty.
    pub fn mark_clean(&mut self, page: PageId) -> bool {
        if let Some(&idx) = self.map.get(&page) {
            let frame = &mut self.frames[idx as usize];
            if frame.dirty {
                frame.dirty = false;
                self.dirty -= 1;
                #[cfg(feature = "invariants")]
                self.check();
                return true;
            }
        }
        false
    }

    /// The logical-clock value of `page`'s most recent access, or `None`
    /// when the page is not resident. A page whose stamp has not moved
    /// since some earlier observation has not been touched in between —
    /// the database writer's "has this dirty page gone cold?" test.
    pub fn access_stamp(&self, page: PageId) -> Option<u64> {
        self.map.get(&page).map(|&idx| self.frames[idx as usize].stamp)
    }

    /// The logical-clock value of `page`'s most recent *write*, or `None`
    /// when the page is not resident. Unlike [`BufferCache::access_stamp`]
    /// this ignores re-reads: the database writer may write back a page
    /// that is read-hot but write-cold.
    pub fn dirty_stamp(&self, page: PageId) -> Option<u64> {
        self.map
            .get(&page)
            .map(|&idx| self.frames[idx as usize].dirty_stamp)
    }

    /// Collects up to `limit` dirty pages from the cold (LRU) end,
    /// scanning at most `scan` frames, marking them clean and returning
    /// them for writeback — the database writer's incremental checkpoint
    /// scan ("searches the pool of database blocks ... and writes
    /// modified blocks back to disk", §3.1). Hot dirty pages near the
    /// MRU end are left alone, so repeated updates coalesce.
    pub fn collect_dirty(&mut self, limit: usize, scan: usize) -> Vec<PageId> {
        let mut pages = Vec::new();
        let mut idx = self.tail;
        let mut scanned = 0;
        while idx != NIL && pages.len() < limit && scanned < scan {
            let frame = &mut self.frames[idx as usize];
            if frame.dirty {
                frame.dirty = false;
                self.dirty -= 1;
                pages.push(frame.page);
            }
            idx = frame.prev;
            scanned += 1;
        }
        #[cfg(feature = "invariants")]
        self.check();
        pages
    }

    /// Installs a page, returning a dirty victim if one was evicted.
    fn install(&mut self, page: PageId, dirty: bool) -> Option<PageId> {
        let mut evicted_dirty = None;
        let idx = if self.frames.len() < self.capacity {
            let idx = self.frames.len() as u32;
            self.frames.push(Frame {
                page,
                dirty,
                stamp: self.clock,
                dirty_stamp: if dirty { self.clock } else { 0 },
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            // Reuse the LRU frame.
            let idx = self.tail;
            let victim = self.frames[idx as usize];
            self.map.remove(&victim.page);
            if victim.dirty {
                self.dirty -= 1;
                self.stats.dirty_evictions += 1;
                evicted_dirty = Some(victim.page);
            }
            self.unlink(idx);
            let frame = &mut self.frames[idx as usize];
            frame.page = page;
            frame.dirty = dirty;
            frame.stamp = self.clock;
            frame.dirty_stamp = if dirty { self.clock } else { 0 };
            idx
        };
        if dirty {
            self.dirty += 1;
        }
        self.map.insert(page, idx);
        self.push_front(idx);
        evicted_dirty
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let f = &self.frames[idx as usize];
            (f.prev, f.next)
        };
        if prev != NIL {
            self.frames[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.frames[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let f = &mut self.frames[idx as usize];
        f.prev = NIL;
        f.next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let f = &mut self.frames[idx as usize];
            f.prev = NIL;
            f.next = old_head;
        }
        if old_head != NIL {
            self.frames[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    /// LRU/dirty accounting consistency check, called after every mutating
    /// operation under the `invariants` feature. Cheap size bounds run on
    /// every call; the O(n) structural walk (list ↔ map agreement, dirty
    /// recount) runs for small caches and periodically for large ones so
    /// full-size (344k-frame) simulations stay usable in debug builds.
    #[cfg(feature = "invariants")]
    fn check(&self) {
        debug_assert!(self.map.len() <= self.capacity, "over capacity");
        debug_assert_eq!(
            self.frames.len(),
            self.map.len(),
            "every frame stays mapped (frames are reused, never unlinked)"
        );
        debug_assert!(self.dirty <= self.map.len(), "dirty exceeds resident");
        debug_assert_eq!(self.head == NIL, self.map.is_empty());
        debug_assert_eq!(self.tail == NIL, self.map.is_empty());
        if !(self.map.len() <= 4_096 || self.clock.is_multiple_of(4_096)) {
            return;
        }
        let mut seen = 0usize;
        let mut dirty = 0usize;
        let mut idx = self.head;
        let mut prev = NIL;
        while idx != NIL {
            let f = &self.frames[idx as usize];
            debug_assert_eq!(f.prev, prev, "back link broken at frame {idx}");
            debug_assert_eq!(
                self.map.get(&f.page),
                Some(&idx),
                "map entry disagrees with frame {idx}"
            );
            seen += 1;
            dirty += usize::from(f.dirty);
            debug_assert!(seen <= self.map.len(), "LRU list has a cycle");
            prev = idx;
            idx = f.next;
        }
        debug_assert_eq!(prev, self.tail, "list does not end at tail");
        debug_assert_eq!(seen, self.map.len(), "list length != resident count");
        debug_assert_eq!(dirty, self.dirty, "dirty flag recount mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hit_after_install() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(1, false).is_hit());
        assert!(c.access(1, false).is_hit());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = BufferCache::new(3);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false);
        c.access(1, false); // refresh 1; LRU is now 2
        c.access(4, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert!(c.contains(4));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = BufferCache::new(2);
        c.access(1, true);
        c.access(2, false);
        assert_eq!(c.dirty_len(), 1);
        match c.access(3, false) {
            BufferAccess::Miss {
                evicted_dirty: Some(1),
            } => {}
            other => panic!("expected dirty eviction of page 1, got {other:?}"),
        }
        assert_eq!(c.dirty_len(), 0);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = BufferCache::new(2);
        c.access(1, false);
        c.access(2, false);
        match c.access(3, false) {
            BufferAccess::Miss { evicted_dirty: None } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_dirties_once() {
        let mut c = BufferCache::new(2);
        c.access(1, false);
        c.access(1, true);
        c.access(1, true);
        assert_eq!(c.dirty_len(), 1);
        assert!(c.mark_clean(1));
        assert!(!c.mark_clean(1), "already clean");
        assert!(!c.mark_clean(99), "not resident");
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn prewarm_fills_without_stats() {
        let mut c = BufferCache::new(8);
        for p in 0..8 {
            c.prewarm(p, false);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().accesses, 0);
        for p in 0..8 {
            assert!(c.access(p, false).is_hit());
        }
        assert_eq!(c.stats().misses, 0);
        // Prewarming a resident page refreshes recency, not stats.
        c.prewarm(0, false);
        c.access(8, false); // evicts page 1, not 0
        assert!(c.contains(0));
        assert!(!c.contains(1));
        // Dirty prewarm seeds the modified flag.
        let mut d = BufferCache::new(2);
        d.prewarm(1, true);
        assert_eq!(d.dirty_len(), 1);
        d.prewarm(1, true); // idempotent
        assert_eq!(d.dirty_len(), 1);
    }

    #[test]
    fn working_set_beyond_capacity_misses() {
        let mut c = BufferCache::new(100);
        // Cyclic scan over 200 pages: worst case for LRU.
        for _ in 0..3 {
            for p in 0..200 {
                c.access(p, false);
            }
        }
        assert!(c.stats().miss_ratio() > 0.99);
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn collect_dirty_takes_cold_dirty_pages_only() {
        let mut c = BufferCache::new(8);
        for p in 0..8u64 {
            c.access(p, p % 2 == 0); // even pages dirty
        }
        // Refresh pages 0 and 2 so they sit at the MRU end.
        c.access(0, false);
        c.access(2, false);
        // LRU order (cold to hot): 1, 3, 4, 5, 6, 7, 0, 2.
        // Scanning the six coldest finds dirty pages 4 and 6.
        let collected = c.collect_dirty(10, 6);
        assert_eq!(collected, vec![4, 6]);
        assert_eq!(c.dirty_len(), 2, "hot dirty pages 0 and 2 remain");
        // Collected pages are clean but still resident.
        assert!(c.contains(4));
        assert!(c.access(4, false).is_hit());
        // Limit is respected.
        let mut c2 = BufferCache::new(8);
        for p in 0..8u64 {
            c2.access(p, true);
        }
        assert_eq!(c2.collect_dirty(3, 8).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferCache::new(0);
    }

    proptest! {
        /// len() never exceeds capacity, dirty_len() never exceeds len(),
        /// and resident pages always hit, under arbitrary access mixes.
        #[test]
        fn invariants_under_random_traffic(
            ops in proptest::collection::vec((0u64..50, any::<bool>()), 1..400),
            cap in 1usize..20,
        ) {
            let mut c = BufferCache::new(cap);
            for &(page, write) in &ops {
                c.access(page, write);
                prop_assert!(c.len() <= c.capacity());
                prop_assert!(c.dirty_len() <= c.len());
                prop_assert!(c.contains(page), "just-accessed page resident");
                prop_assert!(c.access(page, false).is_hit());
            }
        }

        /// A working set no larger than capacity never misses once loaded.
        #[test]
        fn small_working_set_stays_resident(
            pages in proptest::collection::vec(0u64..10, 1..50),
        ) {
            let mut c = BufferCache::new(10);
            for &p in &pages {
                c.access(p, false);
            }
            c.reset_stats();
            for &p in &pages {
                prop_assert!(c.access(p, false).is_hit());
            }
            prop_assert_eq!(c.stats().misses, 0);
        }
    }
}
