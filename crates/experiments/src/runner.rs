//! The sweep runner: client search plus measurement for every `(W, P)`.

use crate::ladder::{paper_ladder, ConfigPoint, CLIENT_GRID};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::metrics::Measurement;
use odb_engine::{OdbSimulator, SimOptions};
use odb_memsim::trace::Characterization;
use std::collections::BTreeMap;

/// The paper's utilization floor for comparable configurations (§3.2.1).
pub const UTILIZATION_TARGET: f64 = 0.90;

/// Controls sweep fidelity.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Fast options used while searching for the client count.
    pub probe: SimOptions,
    /// Measurement-grade options for the final run per point.
    pub measure: SimOptions,
    /// Utilization floor the client search aims for.
    pub utilization_target: f64,
}

impl SweepOptions {
    /// Experiment-grade settings (used by the CLI and benches).
    pub fn standard() -> Self {
        let mut probe = SimOptions::quick();
        probe.char_warmup_instructions = 1_200_000;
        probe.char_measure_instructions = 600_000;
        // The probe must see the same load mix the final run sees: pull
        // the dirty-page writeback delay inside the probe window so disk
        // write traffic is present when utilization is judged.
        probe.warmup = odb_des::SimTime::from_millis(1_500);
        probe.measure = odb_des::SimTime::from_millis(2_500);
        probe.system.writeback_delay = odb_des::SimTime::from_millis(800);
        Self {
            probe,
            measure: SimOptions::standard(),
            utilization_target: UTILIZATION_TARGET,
        }
    }

    /// Reduced settings for tests: quick probes and quick measurement.
    pub fn quick() -> Self {
        Self {
            probe: SimOptions::quick(),
            measure: SimOptions::quick(),
            utilization_target: UTILIZATION_TARGET,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The grid point.
    pub point: ConfigPoint,
    /// Client count chosen by the utilization search.
    pub clients: u32,
    /// `true` when even the maximum client count missed the utilization
    /// target — the I/O-bound region (1200 W in the paper).
    pub saturated: bool,
    /// The measurement-grade run.
    pub measurement: Measurement,
    /// The final cache characterization (for coherence analyses).
    pub characterization: Characterization,
}

/// All measured points, keyed by `(P, W)`.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    rows: BTreeMap<(u32, u32), SweepRow>,
}

impl Sweep {
    /// Runs the full paper ladder on `system` (pass
    /// [`SystemConfig::xeon_quad`] or [`SystemConfig::itanium2_quad`];
    /// the `processors` field is overridden per point).
    ///
    /// # Errors
    ///
    /// Propagates configuration/simulation errors.
    pub fn run(system: &SystemConfig, options: &SweepOptions) -> Result<Self, odb_core::Error> {
        Self::run_points(system, options, &paper_ladder())
    }

    /// Runs specific grid points (tests and partial regenerations).
    ///
    /// # Errors
    ///
    /// Propagates configuration/simulation errors.
    pub fn run_points(
        system: &SystemConfig,
        options: &SweepOptions,
        points: &[ConfigPoint],
    ) -> Result<Self, odb_core::Error> {
        let mut rows = BTreeMap::new();
        for &point in points {
            let row = Self::run_point(system, options, point)?;
            rows.insert((point.processors, point.warehouses), row);
        }
        Ok(Self { rows })
    }

    /// Client search + measurement for one point.
    fn run_point(
        system: &SystemConfig,
        options: &SweepOptions,
        point: ConfigPoint,
    ) -> Result<SweepRow, odb_core::Error> {
        let sys = system.clone().with_processors(point.processors);
        let probe_util = |clients: u32| -> Result<f64, odb_core::Error> {
            let config = OltpConfig::new(
                WorkloadConfig::new(point.warehouses, clients)?,
                sys.clone(),
            )?;
            let m = OdbSimulator::new(config, options.probe.clone())?.run()?;
            Ok(m.cpu_utilization)
        };

        // The grid is ascending and utilization is monotone in clients to
        // within noise: binary-search the grid for the first count that
        // reaches the target.
        let mut lo = 0usize;
        let mut hi = CLIENT_GRID.len() - 1;
        let mut best: Option<u32> = None;
        if probe_util(CLIENT_GRID[hi])? >= options.utilization_target {
            while lo < hi {
                let mid = (lo + hi) / 2;
                if probe_util(CLIENT_GRID[mid])? >= options.utilization_target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // One grid step of headroom absorbs the fidelity gap between
            // the fast probe and the measurement-grade run (and mirrors
            // how the paper's operators provision clients: comfortably
            // above, not at, the 90% knife edge).
            best = Some(CLIENT_GRID[(hi + 1).min(CLIENT_GRID.len() - 1)]);
        }
        let (clients, saturated) = match best {
            Some(c) => (c, false),
            None => (*CLIENT_GRID.last().expect("grid nonempty"), true),
        };

        let config = OltpConfig::new(
            WorkloadConfig::new(point.warehouses, clients)?,
            sys.clone(),
        )?;
        let artifacts = OdbSimulator::new(config, options.measure.clone())?.run_detailed()?;
        Ok(SweepRow {
            point,
            clients,
            saturated,
            measurement: artifacts.measurement,
            characterization: artifacts.characterization,
        })
    }

    /// Assembles a sweep from pre-computed rows (testing, replaying saved
    /// results).
    pub fn from_rows(rows: Vec<SweepRow>) -> Self {
        Self {
            rows: rows
                .into_iter()
                .map(|r| ((r.point.processors, r.point.warehouses), r))
                .collect(),
        }
    }

    /// The row for `(processors, warehouses)`, if measured.
    pub fn row(&self, processors: u32, warehouses: u32) -> Option<&SweepRow> {
        self.rows.get(&(processors, warehouses))
    }

    /// Rows for one processor count, ascending in `W`.
    pub fn rows_for(&self, processors: u32) -> Vec<&SweepRow> {
        self.rows
            .range((processors, 0)..(processors + 1, 0))
            .map(|(_, row)| row)
            .collect()
    }

    /// All rows in `(P, W)` order.
    pub fn iter(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows.values()
    }

    /// Number of measured points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end sweep exercises the search and projections.
    /// Kept tiny: full-ladder sweeps live in the CLI and benches.
    #[test]
    fn mini_sweep_finds_clients_and_measures() {
        let points = [
            ConfigPoint {
                warehouses: 10,
                processors: 1,
            },
            ConfigPoint {
                warehouses: 10,
                processors: 2,
            },
        ];
        let sweep =
            Sweep::run_points(&SystemConfig::xeon_quad(), &SweepOptions::quick(), &points)
                .unwrap();
        assert_eq!(sweep.len(), 2);
        assert!(!sweep.is_empty());
        let row = sweep.row(1, 10).expect("measured");
        assert!(row.clients >= 1);
        assert!(!row.saturated, "10 W is CPU-bound, not I/O-bound");
        assert!(row.measurement.cpu_utilization >= 0.90);
        assert!(row.measurement.transactions > 0);
        // rows_for returns the P=1 block only.
        assert_eq!(sweep.rows_for(1).len(), 1);
        assert_eq!(sweep.rows_for(2).len(), 1);
        assert_eq!(sweep.rows_for(4).len(), 0);
        // 2P needs at least as many clients as 1P (Table 1's trend).
        let row2 = sweep.row(2, 10).unwrap();
        assert!(row2.clients >= row.clients);
    }
}
