//! The observer seam: typed hook events for cross-cutting observation.
//!
//! Every layer of the simulation stack (engine event loop, lock manager,
//! writers, buffer cache, OS run queue, disk array) announces what it is
//! doing through one narrow interface: it emits [`SimEvent`]s into an
//! [`ObserverHub`], and registered [`SimObserver`]s consume them. The
//! statistics counters, the `invariants` checks, EMON counter sampling,
//! latency histograms and trace sinks are all observers — none of them
//! threads private state through the event loop anymore.
//!
//! Two properties are contractual:
//!
//! * **Observation only** — observers receive copies of values the
//!   simulation already computed. They cannot touch the RNG streams, the
//!   event calendar, or any simulated state, so registering or removing
//!   observers never changes simulation bits (asserted by the engine's
//!   determinism tests and the sweep drift gate).
//! * **Zero cost when empty** — [`ObserverHub::emit_with`] takes a
//!   closure and never even constructs the event when nobody listens,
//!   so a hub with no observers compiles down to one branch per hook
//!   (verified by the sweep benchmark's `--min-speedup` gate).

use crate::SimTime;
use std::any::Any;
use std::fmt;

/// What a disk request was for, as reported by [`SimEvent::IoComplete`].
///
/// This mirrors the I/O simulator's request taxonomy without depending on
/// it; `odb-iosim` maps its own kind into this one at the emission site,
/// keeping the kernel crate free of upward dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Synchronous database-block read a process blocks on.
    Read,
    /// Sequential redo-log append.
    LogWrite,
    /// Asynchronous dirty-page writeback.
    PageWrite,
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoKind::Read => write!(f, "read"),
            IoKind::LogWrite => write!(f, "log_write"),
            IoKind::PageWrite => write!(f, "page_write"),
        }
    }
}

/// One hook event from the simulation stack.
///
/// Process ids are the raw `u32` payload of the OS model's `ProcessId`
/// and transaction kinds are the engine's transaction-type index
/// (`TxnType::index()`); both stay untyped here so the kernel crate does
/// not depend on the layers above it.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A server process started executing a freshly sampled transaction.
    TxnStarted {
        /// Raw process id.
        pid: u32,
        /// Transaction-type index.
        kind: usize,
    },
    /// A transaction committed (or completed read-only).
    TxnCommitted {
        /// Raw process id.
        pid: u32,
        /// Transaction-type index.
        kind: usize,
        /// Start-to-commit simulated latency.
        latency: SimTime,
    },
    /// A process queued on a held lock and must block.
    LockWait {
        /// Raw process id of the blocked process.
        pid: u32,
    },
    /// A buffer-cache access missed.
    BufferMiss {
        /// The missed page number.
        page: u64,
        /// `true` for a write access.
        write: bool,
    },
    /// The log writer began flushing a commit batch.
    FlushBegin {
        /// Redo bytes in the batch being forced.
        bytes: u64,
    },
    /// An in-flight log flush finished.
    FlushEnd {
        /// Number of committing processes the flush released.
        woken: usize,
    },
    /// The run queue dispatched a process onto a CPU (a context switch).
    ContextSwitch {
        /// The CPU that changed occupant.
        cpu: usize,
        /// Raw process id of the new occupant.
        pid: u32,
    },
    /// A disk request's completion time became known.
    ///
    /// The disk array computes completion times at submission (service
    /// times are deterministic once the jitter is drawn), so this fires
    /// at submit time with `done` pointing into the simulated future.
    IoComplete {
        /// What the request was for.
        kind: IoKind,
        /// Stripe selector (page number; 0 for log appends).
        locator: u64,
        /// Transfer size in bytes.
        bytes: u64,
        /// Simulated instant the request completes.
        done: SimTime,
    },
    /// An instruction segment was charged to a CPU.
    Charged {
        /// `true` for kernel-mode work, `false` for user-mode.
        os: bool,
        /// Instructions in the segment.
        instructions: u64,
    },
    /// The bus model closed a feedback window.
    BusObserved {
        /// Bus utilization over the window, in `[0, 1]`.
        utilization: f64,
        /// Resulting IOQ latency in cycles.
        ioq_latency_cycles: f64,
    },
}

/// A consumer of [`SimEvent`]s.
///
/// Implementations must be observation-only: they may accumulate private
/// state from the events but must not influence the simulation (they get
/// no handle to do so — the contract exists because an observer could
/// still, say, share an RNG with the engine through interior mutability;
/// don't).
///
/// The `Any` supertrait lets the hub hand registered observers back to
/// their owners by concrete type ([`ObserverHub::get`]).
pub trait SimObserver: Any + Send {
    /// Called for every emitted event. `now` is the simulated instant of
    /// emission (events may *describe* other instants, e.g.
    /// [`SimEvent::IoComplete::done`]).
    fn on_event(&mut self, now: SimTime, event: &SimEvent);

    /// Called when the statistics window resets (start of measurement).
    /// Observers accumulating window statistics should zero them here;
    /// lifecycle trackers should keep in-flight state, since work started
    /// before the window may finish inside it.
    fn on_reset(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// The registry events are emitted into.
///
/// Owned by the simulator; one hub serves every layer (the engine passes
/// `&mut` references down into the OS and I/O models at their hook
/// points).
#[derive(Default)]
pub struct ObserverHub {
    observers: Vec<Box<dyn SimObserver>>,
}

impl fmt::Debug for ObserverHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverHub")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl ObserverHub {
    /// An empty hub: every emission is a no-op costing one branch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an observer; it receives every subsequent event, in
    /// registration order.
    pub fn register(&mut self, observer: Box<dyn SimObserver>) {
        self.observers.push(observer);
    }

    /// `true` when no observers are registered.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Number of registered observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Delivers `event` to every observer in registration order.
    #[inline]
    pub fn emit(&mut self, now: SimTime, event: &SimEvent) {
        for observer in &mut self.observers {
            observer.on_event(now, event);
        }
    }

    /// Like [`ObserverHub::emit`], but the event is only constructed when
    /// at least one observer is registered — use this at hook points
    /// where building the event is not free.
    #[inline]
    pub fn emit_with(&mut self, now: SimTime, make: impl FnOnce() -> SimEvent) {
        if self.observers.is_empty() {
            return;
        }
        let event = make();
        self.emit(now, &event);
    }

    /// Forwards a statistics-window reset to every observer.
    pub fn reset(&mut self, now: SimTime) {
        for observer in &mut self.observers {
            observer.on_reset(now);
        }
    }

    /// The first registered observer of concrete type `T`, if any.
    pub fn get<T: SimObserver>(&self) -> Option<&T> {
        self.observers.iter().find_map(|o| {
            let any: &dyn Any = &**o;
            any.downcast_ref::<T>()
        })
    }

    /// Mutable companion to [`ObserverHub::get`].
    pub fn get_mut<T: SimObserver>(&mut self) -> Option<&mut T> {
        self.observers.iter_mut().find_map(|o| {
            let any: &mut dyn Any = &mut **o;
            any.downcast_mut::<T>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        events: usize,
        resets: usize,
        last_commit_kind: Option<usize>,
    }

    impl SimObserver for Counter {
        fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
            self.events += 1;
            if let SimEvent::TxnCommitted { kind, .. } = *event {
                self.last_commit_kind = Some(kind);
            }
        }
        fn on_reset(&mut self, _now: SimTime) {
            self.resets += 1;
        }
    }

    #[derive(Default)]
    struct Other;
    impl SimObserver for Other {
        fn on_event(&mut self, _now: SimTime, _event: &SimEvent) {}
    }

    #[test]
    fn events_reach_every_observer_in_order() {
        let mut hub = ObserverHub::new();
        assert!(hub.is_empty());
        hub.register(Box::new(Counter::default()));
        hub.register(Box::new(Other));
        assert_eq!(hub.len(), 2);
        hub.emit(SimTime::ZERO, &SimEvent::LockWait { pid: 3 });
        hub.emit(
            SimTime::from_micros(5),
            &SimEvent::TxnCommitted {
                pid: 3,
                kind: 2,
                latency: SimTime::from_micros(5),
            },
        );
        hub.reset(SimTime::from_micros(9));
        let counter = hub.get::<Counter>().unwrap();
        assert_eq!(counter.events, 2);
        assert_eq!(counter.resets, 1);
        assert_eq!(counter.last_commit_kind, Some(2));
    }

    #[test]
    fn emit_with_skips_construction_when_empty() {
        let mut hub = ObserverHub::new();
        // The closure must not run on an empty hub.
        hub.emit_with(SimTime::ZERO, || unreachable!("no observers"));
        hub.register(Box::new(Counter::default()));
        hub.emit_with(SimTime::ZERO, || SimEvent::FlushBegin { bytes: 6144 });
        assert_eq!(hub.get::<Counter>().unwrap().events, 1);
    }

    #[test]
    fn get_is_typed_and_mutable() {
        let mut hub = ObserverHub::new();
        hub.register(Box::new(Other));
        assert!(hub.get::<Counter>().is_none());
        hub.register(Box::new(Counter::default()));
        hub.get_mut::<Counter>().unwrap().events = 41;
        hub.emit(SimTime::ZERO, &SimEvent::FlushEnd { woken: 1 });
        assert_eq!(hub.get::<Counter>().unwrap().events, 42);
    }

    #[test]
    fn io_kind_displays_snake_case() {
        assert_eq!(IoKind::Read.to_string(), "read");
        assert_eq!(IoKind::LogWrite.to_string(), "log_write");
        assert_eq!(IoKind::PageWrite.to_string(), "page_write");
    }
}
