//! Reproducing the paper's measurement-noise observation (§5.1): "the
//! high variance in the OS-space CPI trend for a small number of
//! warehouses can be attributed to the small percentage of time spent in
//! operating system code and the resulting sampling errors in EMON."
//!
//! This example measures one cached configuration repeatedly through the
//! EMON sampling model and shows that the OS-space CPI wobbles far more
//! than the user-space CPI — purely a small-sample artifact, exactly as
//! the paper argues.
//!
//! ```sh
//! cargo run --release --example emon_noise
//! ```

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::{OdbSimulator, SimOptions};

fn stddev(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repeats = 8;
    println!(
        "measuring 10 warehouses {repeats} times through the EMON noise model..."
    );
    let mut user_errors = Vec::new();
    let mut os_errors = Vec::new();
    for seed in 0..repeats {
        let config = OltpConfig::new(
            WorkloadConfig::new(10, 10)?,
            SystemConfig::xeon_quad(),
        )?;
        let options = SimOptions::quick().with_seed(100 + seed).with_emon_noise();
        let art = OdbSimulator::new(config, options)?.run_detailed()?;
        // Same run, with and without the sampling stage: the difference
        // is pure measurement error.
        let (noisy, truth) = (&art.measurement, &art.true_measurement);
        let user_err = 100.0 * (noisy.cpi_user() - truth.cpi_user()).abs() / truth.cpi_user();
        let os_err = 100.0 * (noisy.cpi_os() - truth.cpi_os()).abs() / truth.cpi_os();
        println!(
            "  run {seed}: sampling error on user CPI {user_err:.2}%, on OS CPI {os_err:.2}%  \
             (OS is only {:.1}% of instructions)",
            100.0 * truth.ipx_os() / truth.ipx()
        );
        user_errors.push(user_err);
        os_errors.push(os_err);
    }
    let (user_mean, _) = stddev(&user_errors);
    let (os_mean, _) = stddev(&os_errors);
    println!("\nmean sampling error: user CPI {user_mean:.2}%, OS CPI {os_mean:.2}%");
    println!(
        "OS-space CPI is {:.0}x noisier under the same instrument.",
        os_mean / user_mean.max(1e-9)
    );
    println!(
        "\nthe OS-space counters accumulate over a small instruction base at 10\n\
         warehouses, so the same sampling machinery yields a far noisier CPI —\n\
         the paper's §5.1 explanation for Figure 11's jitter at small W."
    );
    Ok(())
}
