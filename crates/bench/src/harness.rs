//! A tiny wall-clock micro-benchmark harness.
//!
//! This workspace builds offline, so the `criterion` dev-dependency
//! resolves to an empty stub; the benches carry their own timing loop
//! instead. The contract is deliberately small: [`bench`] warms a
//! closure up, calibrates a batch size, and prints the best-of-three
//! per-iteration time. No statistics beyond "best batch" — these runs
//! guide by eye; the gating perf number is the sweep bench's wall clock.

pub use std::hint::black_box;
use std::time::Instant;

/// How long one calibrated measurement batch should take.
const TARGET_BATCH_NANOS: f64 = 50_000_000.0;

/// Measured batches per benchmark (the minimum is reported).
const BATCHES: u32 = 3;

/// Times `f` and returns `(best per-iteration nanoseconds, iterations
/// per measured batch)` — the measurement behind [`bench`], exposed so
/// callers that emit machine-readable artifacts (the sweep bench's
/// `refs_per_sec` section) can reuse the calibrated loop.
///
/// Calibration doubles as warm-up: the batch size grows by 4× until one
/// batch runs ≥10 ms, then three batches sized for ~50 ms each are
/// measured and the fastest per-iteration time wins (the usual defense
/// against scheduling noise on a shared host).
pub fn measure_ns<R>(mut f: impl FnMut() -> R) -> (f64, u64) {
    let mut batch: u64 = 1;
    let per_iter_estimate = loop {
        let started = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = started.elapsed();
        if elapsed.as_millis() >= 10 || batch >= (1 << 30) {
            break elapsed.as_nanos() as f64 / batch as f64;
        }
        batch *= 4;
    };
    let iters = ((TARGET_BATCH_NANOS / per_iter_estimate.max(1.0)).ceil() as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let started = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(started.elapsed().as_nanos() as f64 / iters as f64);
    }
    (best, iters)
}

/// Times `f` and prints `<name>: <ns>/iter` (see [`measure_ns`]).
pub fn bench<R>(name: &str, f: impl FnMut() -> R) {
    let (best, iters) = measure_ns(f);
    if best >= 1_000_000.0 {
        println!("{name}: {:.3} ms/iter ({iters} iters/batch)", best / 1e6);
    } else {
        println!("{name}: {best:.1} ns/iter ({iters} iters/batch)");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_counts_iterations() {
        let mut calls = 0u64;
        super::bench("test/noop", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "the closure must have been driven");
    }
}
