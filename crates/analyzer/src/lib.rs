//! Project-specific static analysis for the odb-scaling workspace.
//!
//! The paper's conclusions rest on tight numerical identities — the iron
//! law `TPS = (P × F)/(IPX × CPI)`, additive CPI breakdowns, piecewise
//! pivot fits — so a silent modelling bug corrupts every downstream table
//! while still looking plausible. This crate is the static half of the
//! project's correctness tooling (the dynamic half is the `invariants`
//! cargo feature on the simulation crates): a dependency-free scanner
//! that walks the workspace source tree and runs a registry of passes
//! ([`passes::registry`]) no generic tool knows about.
//!
//! Each pass is a [`passes::Pass`]: a stable lint id, a one-line
//! description (`--list-lints`), and span-carrying diagnostics. The
//! current catalog:
//!
//! * **panic** — `unwrap()`/`expect()`/`panic!`-family calls in non-test
//!   simulation library code, ratcheted by the `[panic_sites]` baseline;
//! * **lock_order** — `.acquire(` call sites must canonically order lock
//!   targets first (deadlock-freedom discipline);
//! * **raw_time** — floating-point `SimTime` construction is confined to
//!   `crates/des/src/time.rs`;
//! * **observer_seam** — observer-hook emissions must fire in every
//!   build flavour (never inside `#[cfg(feature = …)]`);
//! * **stray_file** — editor droppings and orphan modules;
//! * **hot_path_alloc** — no heap allocation in the audited
//!   per-reference hot-path functions of `odb-memsim`;
//! * **unordered_iteration**, **ambient_nondeterminism**,
//!   **rng_discipline**, **float_accumulation** — the determinism-audit
//!   family ([`passes::determinism`]) certifying the bit-exactness
//!   contract, ratcheted by the `[determinism]` baseline.
//!
//! Escape hatch (all passes, one syntax): `// odb-analyzer: allow(<lint>)`
//! on the offending line, or on the line directly above it. The legacy
//! `// analyzer:allow(<lint>)` spelling still works but draws a
//! deprecation notice.
//!
//! Run as `cargo run -p odb-analyzer`; exits non-zero on any violation.
//! `--json` renders a machine-readable report for CI archival.

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod baseline;
pub mod passes;
pub mod report;
pub mod source;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything one analysis run produced.
#[derive(Debug)]
pub struct Analysis {
    /// Violations that fail the gate, in discovery order.
    pub violations: Vec<report::Violation>,
    /// Non-fatal notices (deprecations, ratchet-down suggestions).
    pub notices: Vec<String>,
    /// Counted (baseline-ratcheted) sites per `(section, crate)`,
    /// including zero-count entries for every audited crate.
    pub counted: BTreeMap<(String, String), Vec<passes::CountedSite>>,
}

impl Analysis {
    /// `true` when the tree passes the gate.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Counted sites per crate under one baseline section, in crate
    /// order.
    pub fn section_counts(&self, section: &str) -> Vec<(&str, usize)> {
        self.counted
            .iter()
            .filter(|((sec, _), _)| sec == section)
            .map(|((_, krate), sites)| (krate.as_str(), sites.len()))
            .collect()
    }

    /// Total counted sites across all sections.
    pub fn total_counted(&self) -> usize {
        self.counted.values().map(Vec::len).sum()
    }
}

/// Runs every registered pass over the workspace rooted at `root` (the
/// directory holding the top-level `Cargo.toml` and `crates/`), then
/// holds the counted sites against the checked-in baseline.
///
/// # Errors
///
/// Returns an error string when the tree cannot be read at all (missing
/// `crates/` directory, malformed baseline file); individual unreadable
/// files are reported as violations instead of aborting the run.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let model = source::WorkspaceModel::load(root)?;
    let mut ctx = passes::PassContext::default();
    for pass in passes::registry() {
        pass.run(&model, &mut ctx);
    }

    // Legacy escape-syntax deprecation notices: the old
    // `// analyzer:allow(...)` spelling still silences lints, but the
    // unified `// odb-analyzer: allow(...)` spelling is canonical.
    for krate in &model.crates {
        for file in &krate.src_files {
            if !file.legacy_allow_lines.is_empty() {
                let lines: Vec<String> = file
                    .legacy_allow_lines
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                ctx.note(format!(
                    "{}: legacy `// analyzer:allow(...)` escape on line(s) {} — \
                     migrate to `// odb-analyzer: allow(...)`",
                    file.rel_path,
                    lines.join(", ")
                ));
            }
        }
    }

    let baseline_path = baseline_path(root);
    let base = match baseline::Baseline::load(&baseline_path) {
        Ok(base) => base,
        Err(baseline::LoadError::Missing) => {
            // No baseline at all: nothing is allowed, so every counted
            // site below becomes a violation — forcing a baseline to be
            // checked in rather than grandfathered invisibly.
            if ctx.counted.values().any(|sites| !sites.is_empty()) {
                ctx.note(format!(
                    "no baseline exists at {}; run with --update-baseline to record \
                     the current counts",
                    baseline_path.display()
                ));
            }
            baseline::Baseline::default()
        }
        Err(baseline::LoadError::Malformed(why)) => {
            return Err(format!(
                "malformed baseline {}: {why}",
                baseline_path.display()
            ));
        }
    };

    for ((section, krate), sites) in &ctx.counted {
        let allowed = base.allowed(section, krate);
        let count = sites.len();
        if count > allowed {
            for site in sites {
                ctx.violations.push(report::Violation::new(
                    site.lint,
                    &site.path,
                    site.line,
                    format!(
                        "{} [crate `{krate}` has {count} counted site(s) under \
                         [{section}], baseline allows {allowed}]",
                        site.message
                    ),
                ));
            }
        } else if count < allowed {
            ctx.notices.push(format!(
                "crate `{krate}` is below its [{section}] baseline ({count} < {allowed}); \
                 run with --update-baseline to ratchet it down"
            ));
        }
    }

    Ok(Analysis {
        violations: ctx.violations,
        notices: ctx.notices,
        counted: ctx.counted,
    })
}

/// Where the burn-down baseline lives, relative to the workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("crates").join("analyzer").join("baseline.toml")
}

/// Re-counts every baseline-ratcheted site and rewrites the baseline
/// file, returning `(section, crate, count)` triples in file order.
///
/// # Errors
///
/// Returns an error string when the tree or the baseline file cannot be
/// accessed.
pub fn update_baseline(root: &Path) -> Result<Vec<(String, String, usize)>, String> {
    let model = source::WorkspaceModel::load(root)?;
    let mut ctx = passes::PassContext::default();
    for pass in passes::registry() {
        pass.run(&model, &mut ctx);
    }
    let counts: Vec<(String, String, usize)> = ctx
        .counted
        .iter()
        .map(|((section, krate), sites)| (section.clone(), krate.clone(), sites.len()))
        .collect();
    baseline::Baseline::from_counts(
        counts
            .iter()
            .map(|(section, krate, count)| (section.as_str(), krate.as_str(), *count)),
    )
    .store(&baseline_path(root))
    .map_err(|e| format!("writing baseline: {e}"))?;
    Ok(counts)
}
