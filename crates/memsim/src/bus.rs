//! The shared front-side bus and its in-order queue (IOQ) latency model
//! (§5.2, Fig 16).
//!
//! Every L3 miss, dirty writeback and DMA block transfer occupies the
//! shared bus for a fixed number of cycles. The *IOQ latency* — the time
//! for one transaction to complete once queued — is the unloaded latency
//! plus an M/M/1-style waiting term driven by bus utilization:
//!
//! ```text
//! ioq(ρ) = base + occupancy × ρ / (1 − ρ)
//! ```
//!
//! This is why CPI grows with `P` even though MPI does not (Figs 9 vs 13):
//! more processors push utilization up, which stretches every L3 miss.

use odb_core::config::BusConfig;

/// Utilization ceiling: queueing delay is clamped at this load so that a
/// transient overload cannot produce unbounded latencies in one window.
const RHO_MAX: f64 = 0.95;

/// The front-side-bus model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsbModel {
    config: BusConfig,
}

/// One measurement window's bus-level observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusWindow {
    /// Bus transactions issued during the window.
    pub transactions: u64,
    /// Window length in CPU cycles (per-CPU clock, not multiplied by `P`).
    pub window_cycles: f64,
}

impl FsbModel {
    /// Creates a model from validated bus parameters.
    pub fn new(config: BusConfig) -> Self {
        Self { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// Bus utilization for a window: occupancy-cycles demanded over cycles
    /// available, clamped to `[0, RHO_MAX]`.
    ///
    /// The bus is a single shared resource, so the denominator is the
    /// window length regardless of processor count — more CPUs simply
    /// generate more transactions into the same window.
    pub fn utilization(&self, window: BusWindow) -> f64 {
        if window.window_cycles <= 0.0 {
            return 0.0;
        }
        let demand = window.transactions as f64 * self.config.occupancy_cycles;
        (demand / window.window_cycles).clamp(0.0, RHO_MAX)
    }

    /// IOQ latency in cycles at utilization `rho`.
    ///
    /// At `rho = 0` this is the unloaded latency (102 cycles on the
    /// paper's machine, Table 3); it grows hyperbolically as the bus
    /// saturates.
    pub fn ioq_latency(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, RHO_MAX);
        self.config.base_transaction_cycles + self.config.occupancy_cycles * rho / (1.0 - rho)
    }

    /// Convenience: utilization and latency for a window in one call.
    pub fn observe(&self, window: BusWindow) -> BusObservation {
        let utilization = self.utilization(window);
        BusObservation {
            utilization,
            ioq_latency_cycles: self.ioq_latency(utilization),
        }
    }
}

/// Derived bus metrics for one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusObservation {
    /// Fraction of time the bus transferred data, `[0, RHO_MAX]`.
    pub utilization: f64,
    /// Mean cycles to complete a transaction once in the IOQ.
    pub ioq_latency_cycles: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon_bus() -> FsbModel {
        FsbModel::new(BusConfig {
            base_transaction_cycles: 102.0,
            occupancy_cycles: 58.0,
        })
    }

    #[test]
    fn unloaded_latency_is_base() {
        let m = xeon_bus();
        assert_eq!(m.ioq_latency(0.0), 102.0);
        assert_eq!(m.config().base_transaction_cycles, 102.0);
    }

    #[test]
    fn latency_grows_monotonically_with_load() {
        let m = xeon_bus();
        let mut last = 0.0;
        for i in 0..=19 {
            let rho = i as f64 * 0.05;
            let l = m.ioq_latency(rho);
            assert!(l > last, "latency must grow with rho");
            last = l;
        }
    }

    #[test]
    fn paper_scale_latencies() {
        let m = xeon_bus();
        // ~30% utilization (2P): modest inflation.
        let l2p = m.ioq_latency(0.30);
        assert!(l2p > 120.0 && l2p < 130.0, "2P-like latency {l2p}");
        // ~45% utilization (4P): dramatic inflation per Fig 16.
        let l4p = m.ioq_latency(0.45);
        assert!(l4p > 145.0 && l4p < 155.0, "4P-like latency {l4p}");
    }

    #[test]
    fn utilization_from_window() {
        let m = xeon_bus();
        // 1000 transactions × 58 cycles over 116_000 cycles = 0.5.
        let w = BusWindow {
            transactions: 1000,
            window_cycles: 116_000.0,
        };
        assert!((m.utilization(w) - 0.5).abs() < 1e-12);
        let obs = m.observe(w);
        assert!((obs.utilization - 0.5).abs() < 1e-12);
        assert!((obs.ioq_latency_cycles - (102.0 + 58.0)).abs() < 1e-9);
    }

    #[test]
    fn overload_is_clamped() {
        let m = xeon_bus();
        let w = BusWindow {
            transactions: u64::MAX / 2,
            window_cycles: 1.0,
        };
        let rho = m.utilization(w);
        assert_eq!(rho, RHO_MAX);
        assert!(m.ioq_latency(2.0).is_finite());
        assert_eq!(m.ioq_latency(2.0), m.ioq_latency(RHO_MAX));
    }

    #[test]
    fn empty_window_is_idle() {
        let m = xeon_bus();
        assert_eq!(m.utilization(BusWindow::default()), 0.0);
    }
}
