//! Deadlock-freedom tests for the lock manager.
//!
//! The engine's discipline is ordered acquisition: every transaction
//! sorts its lock targets by `canonical_order` before acquiring. The
//! property test below drives many randomly generated transactions
//! through a faithful blocked-waiter scheduler and checks the system
//! always drains — the classical result that a total resource order
//! excludes wait cycles. The companion regression tests check that the
//! `invariants` feature actually *detects* a violation of the discipline
//! rather than quietly relying on it.

// With the offline proptest stub the property-test body compiles away,
// leaving its helpers unreferenced. Tests also use unwrap() freely; the
// workspace-level `clippy::unwrap_used` deny applies to shipped code only.
#![allow(dead_code)]
#![allow(clippy::unwrap_used)]

use odb_engine::locks::{canonical_order, AcquireResult, LockManager};
use odb_engine::txn::LockTarget;
use odb_ossim::ProcessId;
use proptest::prelude::*;
use std::collections::VecDeque;

fn target(kind: bool, w: u32) -> LockTarget {
    if kind {
        LockTarget::WarehouseBlock(w)
    } else {
        LockTarget::DistrictBlock(w)
    }
}

/// Runs `want` (per-process sorted target lists) through a blocked-waiter
/// scheduler: each process acquires its targets in order, parking when
/// queued; a release hands the lock over FIFO and wakes the waiter.
/// Returns the number of scheduler steps taken, panicking on livelock.
fn drive_to_completion(mut manager: LockManager, want: Vec<Vec<LockTarget>>) -> usize {
    struct Proc {
        targets: Vec<LockTarget>,
        next: usize,
        parked: bool,
    }
    let mut procs: Vec<Proc> = want
        .into_iter()
        .map(|targets| Proc {
            targets,
            next: 0,
            parked: false,
        })
        .collect();
    let mut runnable: VecDeque<usize> = (0..procs.len()).collect();
    let mut steps = 0;
    let budget = procs.iter().map(|p| p.targets.len() * 4 + 4).sum::<usize>() + 16;
    while let Some(i) = runnable.pop_front() {
        steps += 1;
        assert!(
            steps <= budget,
            "scheduler exceeded its step budget — deadlock or lost wakeup"
        );
        let pid = ProcessId(i as u32);
        if procs[i].next == procs[i].targets.len() {
            // Done acquiring: commit, releasing everything and waking any
            // handed-over waiters.
            let held = procs[i].targets.clone();
            for woken in manager
                .release_all(pid, &held)
                .expect("scheduler releases only held locks")
            {
                let w = woken.0 as usize;
                assert!(procs[w].parked, "woke a process that was not blocked");
                procs[w].parked = false;
                procs[w].next += 1; // it now owns the lock it waited on
                runnable.push_back(w);
            }
            continue;
        }
        let t = procs[i].targets[procs[i].next];
        match manager.acquire(pid, t) {
            AcquireResult::Granted => {
                procs[i].next += 1;
                runnable.push_back(i);
            }
            AcquireResult::Queued => {
                procs[i].parked = true;
            }
        }
    }
    for (i, p) in procs.iter().enumerate() {
        assert!(
            !p.parked && p.next == p.targets.len(),
            "process {i} never finished: {}/{} targets, parked={}",
            p.next,
            p.targets.len(),
            p.parked
        );
    }
    steps
}

proptest! {
    /// Any population of transactions that acquires its targets in
    /// canonical order always drains — no deadlock, no lost wakeup —
    /// under heavy contention (targets drawn from a tiny warehouse pool,
    /// mirroring the paper's 10-warehouse contention spike).
    #[test]
    fn canonical_order_never_deadlocks(
        txns in proptest::collection::vec(
            proptest::collection::btree_set((any::<bool>(), 0u32..4), 1..6),
            1..12,
        )
    ) {
        let want: Vec<Vec<LockTarget>> = txns
            .into_iter()
            .map(|set| {
                let mut ts: Vec<LockTarget> =
                    set.into_iter().map(|(k, w)| target(k, w)).collect();
                ts.sort_by_key(canonical_order);
                ts.dedup();
                ts
            })
            .collect();
        drive_to_completion(LockManager::new(), want);
    }
}

/// In-order acquisition passes cleanly under the `invariants` witness.
#[test]
fn in_order_acquisition_is_accepted() {
    let mut m = LockManager::new();
    let pid = ProcessId(1);
    let mut ts = vec![
        LockTarget::DistrictBlock(2),
        LockTarget::WarehouseBlock(1),
        LockTarget::DistrictBlock(0),
    ];
    ts.sort_by_key(canonical_order);
    for &t in &ts {
        assert_eq!(m.acquire(pid, t), AcquireResult::Granted);
    }
    assert!(m.release_all(pid, &ts).unwrap().is_empty());
}

/// Out-of-order acquisition is *detected* by the `invariants` feature:
/// the canonical-order witness trips even though no deadlock happens to
/// occur in this single-process run.
#[cfg(all(feature = "invariants", debug_assertions))]
#[test]
fn out_of_order_acquisition_is_detected() {
    let caught = std::panic::catch_unwind(|| {
        let mut m = LockManager::new();
        let pid = ProcessId(1);
        // District sorts after warehouse: this order is backwards.
        m.acquire(pid, LockTarget::DistrictBlock(0));
        m.acquire(pid, LockTarget::WarehouseBlock(0));
    });
    assert!(
        caught.is_err(),
        "invariants feature must flag out-of-order acquisition"
    );
}
