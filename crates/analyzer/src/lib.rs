//! Project-specific static analysis for the odb-scaling workspace.
//!
//! The paper's conclusions rest on tight numerical identities — the iron
//! law `TPS = (P × F)/(IPX × CPI)`, additive CPI breakdowns, piecewise
//! pivot fits — so a silent modelling bug corrupts every downstream table
//! while still looking plausible. This crate is the static half of the
//! project's correctness tooling (the dynamic half is the `invariants`
//! cargo feature on the simulation crates): a dependency-free scanner
//! that walks the workspace source tree and enforces lints no generic
//! tool knows about:
//!
//! * **panic sites** ([`lints::panic_sites`]) — `unwrap()` / `expect()` /
//!   `panic!`-family macros are forbidden in non-test simulation library
//!   code. Existing sites are held by a checked-in, burn-down-only
//!   baseline ([`baseline`]); intentional contract panics carry an
//!   explicit `// analyzer:allow(panic)` comment.
//! * **lock order** ([`lints::lock_order`]) — every `.acquire(` call site
//!   must sit in a file that canonically orders its targets
//!   (`sort_by_key(canonical_order)`) before acquiring, the project's
//!   deadlock-freedom discipline.
//! * **raw time** ([`lints::raw_time`]) — floating-point construction of
//!   simulated time (`from_secs_f64`, `from_nanos(x as u64)` casts) is
//!   confined to `crates/des/src/time.rs`, which owns the rounding and
//!   clamping contracts.
//! * **observer seam** ([`lints::observer_seam`]) — `.emit(`/`.emit_with(`
//!   observer-hook calls in the simulation crates must not sit inside
//!   `#[cfg(feature = …)]` blocks: the event stream has to be identical in
//!   every build flavour (gate the observer *registration* instead).
//! * **stray files** ([`lints::stray_files`]) — editor/backup droppings
//!   (`*.tmp`, `*.bak`, …) anywhere in the repository, and orphan `.rs`
//!   modules under any crate's `src/` that no `mod` declaration reaches.
//! * **hot-path allocation** ([`lints::hot_path_alloc`]) — heap
//!   allocation (`collect()`, `to_vec()`, `Vec::new()`) inside the
//!   audited per-reference functions of `odb-memsim`'s characterization
//!   loop; deliberate cases live in `crates/analyzer/hot_path_allow.txt`.
//!
//! Escape hatch: a `// analyzer:allow(<lint>)` comment on the offending
//! line, or on the line directly above it, suppresses that lint there.
//!
//! Run as `cargo run -p odb-analyzer`; exits non-zero on any violation.

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod baseline;
pub mod lints;
pub mod report;
pub mod source;

use std::path::{Path, PathBuf};

/// Everything one analysis run produced.
#[derive(Debug)]
pub struct Analysis {
    /// Violations that fail the gate, in discovery order.
    pub violations: Vec<report::Violation>,
    /// Non-fatal notices (e.g. a stale, too-high baseline entry).
    pub notices: Vec<String>,
    /// Non-test panic sites actually counted, per audited crate.
    pub panic_counts: Vec<(String, usize)>,
}

impl Analysis {
    /// `true` when the tree passes the gate.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every lint over the workspace rooted at `root` (the directory
/// holding the top-level `Cargo.toml` and `crates/`).
///
/// # Errors
///
/// Returns an error string when the tree cannot be read at all (missing
/// `crates/` directory, unreadable baseline file); individual unreadable
/// files are reported as violations instead of aborting the run.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let model = source::WorkspaceModel::load(root)?;
    let mut violations = Vec::new();
    let mut notices = Vec::new();

    let panic_counts = lints::panic_sites(&model, &mut violations);
    lints::lock_order(&model, &mut violations);
    lints::raw_time(&model, &mut violations);
    lints::observer_seam(&model, &mut violations);
    lints::stray_files(&model, &mut violations);
    lints::hot_path_alloc(&model, &mut violations);

    let baseline_path = baseline_path(root);
    match baseline::Baseline::load(&baseline_path) {
        Ok(base) => base.check(&panic_counts, &mut violations, &mut notices),
        Err(baseline::LoadError::Missing) => {
            // No baseline at all: every panic site is a violation, which
            // forces a baseline to be checked in rather than grandfathered
            // invisibly.
            for (krate, count) in &panic_counts {
                if *count > 0 {
                    violations.push(report::Violation::baseline(format!(
                        "crate `{krate}` has {count} panic site(s) but no baseline exists at \
                         {}; run with --update-baseline to record them",
                        baseline_path.display()
                    )));
                }
            }
        }
        Err(baseline::LoadError::Malformed(why)) => {
            return Err(format!(
                "malformed baseline {}: {why}",
                baseline_path.display()
            ));
        }
    }

    Ok(Analysis {
        violations,
        notices,
        panic_counts,
    })
}

/// Where the panic-site baseline lives, relative to the workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("crates").join("analyzer").join("baseline.toml")
}

/// Re-counts panic sites and rewrites the baseline file.
///
/// # Errors
///
/// Returns an error string when the tree or the baseline file cannot be
/// accessed.
pub fn update_baseline(root: &Path) -> Result<Vec<(String, usize)>, String> {
    let model = source::WorkspaceModel::load(root)?;
    let mut scratch = Vec::new();
    let counts = lints::panic_sites(&model, &mut scratch);
    baseline::Baseline::from_counts(&counts)
        .store(&baseline_path(root))
        .map_err(|e| format!("writing baseline: {e}"))?;
    Ok(counts)
}
