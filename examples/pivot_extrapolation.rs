//! The paper's §6 method end-to-end: measure small configurations, fit
//! the two-region model, locate the pivot point, choose the minimal
//! representative workload, and extrapolate the big setups — then verify
//! against actually simulating them.
//!
//! ```sh
//! cargo run --release --example pivot_extrapolation
//! ```

use odb_core::config::SystemConfig;
use odb_core::extrapolate::{representative_workload, Extrapolator};
use odb_experiments::ladder::ConfigPoint;
use odb_experiments::runner::{Sweep, SweepOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate the affordable range: 10..=300 warehouses at 4P.
    let small: Vec<ConfigPoint> = [10u32, 25, 50, 100, 200, 300]
        .iter()
        .map(|&w| ConfigPoint {
            warehouses: w,
            processors: 4,
        })
        .collect();
    println!("measuring the small configurations (10..=300 W, 4P)...");
    let options = SweepOptions::standard();
    let sweep = Sweep::run_points(&SystemConfig::xeon_quad(), &options, &small);
    sweep.ensure_complete()?;

    let xs: Vec<f64> = small.iter().map(|p| p.warehouses as f64).collect();
    let ys: Vec<f64> = small
        .iter()
        .map(|p| sweep.row(4, p.warehouses).expect("measured").measurement.cpi())
        .collect();
    for (x, y) in xs.iter().zip(&ys) {
        println!("  {x:>4} W: CPI {y:.3}");
    }

    // Fit the two-region model and read off the pivot.
    let extrapolator = Extrapolator::from_measurements(&xs, &ys)?;
    let fit = extrapolator.fit();
    println!(
        "\ncached region: CPI = {:.5} x W + {:.3}   (R2 {:.3})",
        fit.cached.slope, fit.cached.intercept, fit.cached.r_squared
    );
    println!(
        "scaled region: CPI = {:.5} x W + {:.3}   (R2 {:.3})",
        fit.scaled.slope, fit.scaled.intercept, fit.scaled.r_squared
    );
    match fit.pivot() {
        Some(p) => println!("pivot point: {:.0} warehouses (CPI {:.2})", p.x, p.y),
        None => println!("pivot point: segments are parallel"),
    }
    let ladder = [10u32, 25, 50, 100, 200, 300, 500, 800];
    if let Some(rep) =
        fit.pivot().and_then(|p| representative_workload(p.x, &ladder))
    {
        println!("minimal representative workload: {rep} warehouses");
    }

    // Now actually simulate the big setups and compare to extrapolation.
    println!("\nverifying against the big configurations (500 W and 800 W)...");
    let big: Vec<ConfigPoint> = [500u32, 800]
        .iter()
        .map(|&w| ConfigPoint {
            warehouses: w,
            processors: 4,
        })
        .collect();
    let big_sweep = Sweep::run_points(&SystemConfig::xeon_quad(), &options, &big);
    big_sweep.ensure_complete()?;
    let held: Vec<(f64, f64)> = big
        .iter()
        .map(|p| {
            (
                p.warehouses as f64,
                big_sweep
                    .row(4, p.warehouses)
                    .expect("measured")
                    .measurement
                    .cpi(),
            )
        })
        .collect();
    let report = extrapolator.validate(&held)?;
    for (x, pred, actual) in &report.points {
        println!(
            "  {x:>4} W: predicted CPI {pred:.3}, simulated {actual:.3} ({:+.1}%)",
            100.0 * (pred - actual) / actual
        );
    }
    println!(
        "\nmean absolute error {:.1}% — \"there is no need to simulate larger setups\" (§6.2)",
        report.mape * 100.0
    );
    Ok(())
}
