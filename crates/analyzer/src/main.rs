//! `odb-analyzer` — the workspace static-analysis gate.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/internal error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
odb-analyzer — static-analysis gate for the odb-scaling workspace

USAGE:
    cargo run -p odb-analyzer [-- OPTIONS]

OPTIONS:
    --root <DIR>         workspace root (default: autodetected)
    --update-baseline    re-count panic sites and rewrite crates/analyzer/baseline.toml
    --verbose            list every counted panic site per audited crate
    --help               show this help

Lints: panic-site baseline (burn-down), lock_order, raw_time,
observer_seam, stray_file.
Escape hatch: `// analyzer:allow(<lint>)` on the offending line or the
line directly above it.";

struct Options {
    root: Option<PathBuf>,
    update_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        update_baseline: false,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(Some(opts))
}

/// The workspace root: `--root` if given, else the manifest-relative
/// location this binary was built from, else the current directory.
fn find_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    // When run via `cargo run -p odb-analyzer`, the manifest dir is
    // <root>/crates/analyzer at compile time and the workspace layout is
    // fixed, so ../../ is the root — but only trust it if it still looks
    // like this workspace (the binary may have been copied elsewhere, or
    // built outside cargo, where the env var is absent).
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let compiled = std::path::Path::new(manifest).join("..").join("..");
        if compiled.join("Cargo.toml").is_file() && compiled.join("crates").is_dir() {
            return compiled;
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };
    let root = find_root(&opts);

    if opts.update_baseline {
        return match odb_analyzer::update_baseline(&root) {
            Ok(counts) => {
                println!(
                    "baseline written to {}",
                    odb_analyzer::baseline_path(&root).display()
                );
                for (krate, count) in counts {
                    println!("  {krate} = {count}");
                }
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("error: {why}");
                ExitCode::from(2)
            }
        };
    }

    let analysis = match odb_analyzer::analyze(&root) {
        Ok(a) => a,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };

    if opts.verbose {
        match odb_analyzer::source::WorkspaceModel::load(&root) {
            Ok(model) => {
                for name in odb_analyzer::lints::PANIC_AUDITED {
                    let Some(krate) = model.get(name) else { continue };
                    let sites = odb_analyzer::lints::describe_panic_sites(krate);
                    println!("crate `{name}`: {} counted panic site(s)", sites.len());
                    for site in sites {
                        println!("  {site}");
                    }
                }
            }
            Err(why) => eprintln!("error (verbose listing): {why}"),
        }
    }

    for notice in &analysis.notices {
        println!("note: {notice}");
    }
    if analysis.is_clean() {
        let total: usize = analysis.panic_counts.iter().map(|(_, c)| c).sum();
        println!(
            "odb-analyzer: clean ({total} baselined panic site(s) across {} audited crate(s))",
            analysis.panic_counts.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &analysis.violations {
            println!("{v}");
        }
        println!(
            "odb-analyzer: {} violation(s) — see above",
            analysis.violations.len()
        );
        ExitCode::FAILURE
    }
}
