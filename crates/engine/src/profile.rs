//! Translating an OLTP configuration into cache-characterization inputs.
//!
//! The warehouse count enters the memory system through three routes:
//!
//! 1. **Database data** — [`OdbRefSource`] replays the same page-touch
//!    stream the DES executes (hot district/index/item pages at small
//!    `W`, spreading out as `W` grows);
//! 2. **Per-warehouse control structures** — buffer headers, row-cache
//!    and library-cache entries grow ≈6 KB per warehouse; their hot set
//!    crosses L3 capacity near 100–200 warehouses, producing the
//!    cached→scaled knee of Figs 9/13;
//! 3. **Context switching** — the engine's measured switch rate feeds
//!    back into process-rotation pollution, the mechanism §5.2 cites for
//!    the continued MPI climb in the scaled region.
//!
//! Routes 1–2 are structural; route 3 closes a feedback loop, so
//! measurement runs the characterize→simulate cycle twice (a fixed-point
//! iteration that converges fast because cache rates depend only weakly
//! on the switch rate).

use crate::schema::{PageMap, PAGE_BYTES};
use crate::txn::TxnSampler;
use odb_core::config::OltpConfig;
use odb_core::metrics::Measurement;
use odb_memsim::trace::{DataMix, DbRef, DbRefSource, TraceParams};
use rand::rngs::SmallRng;
use rand::Rng;

/// Workload quantities that only the full-system simulation can measure,
/// estimated first and refined by iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadEstimates {
    /// Fraction of instructions executed in OS space.
    pub os_fraction: f64,
    /// Instructions executed on a CPU between context switches.
    pub instrs_per_context_switch: u64,
}

impl WorkloadEstimates {
    /// Starting point for the fixed-point iteration: a lightly loaded
    /// system (10% OS share, a switch every 400k instructions).
    pub fn initial() -> Self {
        Self {
            os_fraction: 0.10,
            instrs_per_context_switch: 400_000,
        }
    }

    /// Refines the estimates from a completed measurement.
    pub fn from_measurement(m: &Measurement) -> Self {
        let total_ipx = m.ipx();
        let os_fraction = if total_ipx > 0.0 {
            (m.ipx_os() / total_ipx).clamp(0.02, 0.6)
        } else {
            0.10
        };
        let switches = m.context_switches_per_txn.max(0.5);
        let instrs_per_context_switch = ((total_ipx / switches) as u64).clamp(20_000, 2_000_000);
        Self {
            os_fraction,
            instrs_per_context_switch,
        }
    }
}

/// Builds the trace parameters for a configuration.
///
/// Field derivations are documented inline; everything not listed keeps
/// the ODB-on-Xeon defaults of [`TraceParams::default`].
pub fn trace_params(config: &OltpConfig, estimates: &WorkloadEstimates) -> TraceParams {
    let w = config.workload.warehouses as u64;
    let frames = (config.system.buffer_cache_bytes / PAGE_BYTES).max(1);
    // LP64 machines carry ~2x pointer-heavy structures and less dense
    // code (SystemConfig::structure_scale; 1.0 on the IA-32 baseline).
    let scale = |bytes: u64| (bytes as f64 * config.system.structure_scale) as u64;
    // Buffer headers: 64 B per resident page, but the *hot* slice is the
    // headers of each warehouse's hot blocks: ~2.5 KB per warehouse.
    let buffer_header_bytes = scale((24 << 10) + 2_560 * w.min(frames * 64 / (4 << 10)));
    // Shared metadata: a fixed dictionary plus ~1.5 KB of row-cache and
    // library-cache entries per warehouse. Together with the headers this
    // grows the shared hot set ~4 KB per warehouse, crossing the 1 MB L3
    // (above the ~0.5 MB fixed floor) near 130 warehouses — the pivot.
    let metadata_bytes = scale((256 << 10) + 1_536 * w);
    let processes_per_cpu = (config.workload.clients as usize)
        .div_ceil(config.system.processors as usize)
        .max(1);
    TraceParams {
        buffer_header_bytes,
        metadata_bytes,
        user_code_bytes: scale(1280 << 10),
        stack_bytes: scale(48 << 10),
        code_zipf_s: 1.55,
        mix: DataMix {
            stack: 0.62,
            metadata: 0.16,
            buffer_header: 0.18,
            db: 0.04,
        },
        metadata_dwell: 6,
        buffer_header_dwell: 6,
        os_fraction: estimates.os_fraction.clamp(0.01, 0.9),
        instrs_per_context_switch: estimates.instrs_per_context_switch,
        processes_per_cpu: processes_per_cpu.min(32),
        ..TraceParams::default()
    }
}

/// Replays the transaction page-touch stream as cache-line references.
///
/// Each page touch yields a few distinct lines (block header, row slots),
/// which the characterizer further dwells on; writes follow the touch
/// kind, so hot shared blocks (district, warehouse) produce genuine
/// cross-processor invalidation traffic.
#[derive(Debug, Clone)]
pub struct OdbRefSource {
    sampler: TxnSampler,
    touches: Vec<crate::txn::PageTouch>,
    next_touch: usize,
    lines_left: u32,
    current_page: u64,
    current_write: bool,
    lines_per_touch: u32,
    /// Probability that a write touch emits a written line. The
    /// characterizer consumes transactions far faster than real time (it
    /// samples only the database slice of the reference stream), which
    /// would inflate the *rate* of stores to hot shared blocks — and with
    /// it coherence traffic — by the same factor. Scaling write emission
    /// back down restores the real store cadence while keeping the read
    /// locality intact.
    write_scale: f64,
}

impl OdbRefSource {
    /// A source over `warehouses`, emitting `lines_per_touch` distinct
    /// lines per page touch.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] if the sampler's
    /// row-selection distributions cannot be built.
    pub fn new(warehouses: u32, lines_per_touch: u32) -> Result<Self, odb_core::Error> {
        Ok(Self::with_sampler(
            TxnSampler::new(PageMap::new(warehouses))?,
            lines_per_touch,
        ))
    }

    /// A source sharing an existing sampler's Zipf tables — cheap to call
    /// once per simulated process.
    pub fn with_sampler(sampler: TxnSampler, lines_per_touch: u32) -> Self {
        Self {
            sampler,
            touches: Vec::new(),
            next_touch: 0,
            lines_left: 0,
            current_page: 0,
            current_write: false,
            lines_per_touch: lines_per_touch.max(1),
            write_scale: 0.05,
        }
    }
}

impl DbRefSource for OdbRefSource {
    fn next_ref(&mut self, rng: &mut SmallRng) -> DbRef {
        if self.lines_left == 0 {
            if self.next_touch >= self.touches.len() {
                let txn = self.sampler.sample(rng);
                self.touches = txn.touches;
                self.next_touch = 0;
            }
            let touch = self.touches[self.next_touch];
            self.next_touch += 1;
            self.current_page = touch.page;
            self.current_write = touch.kind == crate::schema::TouchKind::Write;
            self.lines_left = self.lines_per_touch;
        }
        self.lines_left -= 1;
        let line = rng.gen_range(0..PAGE_BYTES / 64);
        DbRef {
            offset: self.current_page * PAGE_BYTES + line * 64,
            write: self.current_write && rng.gen_bool(self.write_scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::{SystemConfig, WorkloadConfig};
    use odb_core::metrics::{IoPerTxn, SpaceCounts};
    use rand::SeedableRng;

    fn config(w: u32, c: u32, p: u32) -> OltpConfig {
        OltpConfig::new(
            WorkloadConfig::new(w, c).unwrap(),
            SystemConfig::xeon_quad().with_processors(p),
        )
        .unwrap()
    }

    #[test]
    fn warehouse_scaled_footprints() {
        let est = WorkloadEstimates::initial();
        let small = trace_params(&config(10, 10, 4), &est);
        let large = trace_params(&config(800, 64, 4), &est);
        assert!(large.metadata_bytes > small.metadata_bytes);
        assert!(large.buffer_header_bytes > small.buffer_header_bytes);
        // ~4 KB of control structures per added warehouse.
        let delta = (large.metadata_bytes + large.buffer_header_bytes)
            - (small.metadata_bytes + small.buffer_header_bytes);
        assert_eq!(delta, 790 * (2_560 + 1_536));
        small.validate().unwrap();
        large.validate().unwrap();
    }

    #[test]
    fn processes_per_cpu_follows_clients() {
        let est = WorkloadEstimates::initial();
        assert_eq!(trace_params(&config(100, 48, 4), &est).processes_per_cpu, 12);
        assert_eq!(trace_params(&config(100, 10, 1), &est).processes_per_cpu, 10);
        // Capped to keep characterization affordable.
        assert_eq!(trace_params(&config(100, 64, 1), &est).processes_per_cpu, 32);
    }

    #[test]
    fn estimates_refine_from_measurement() {
        let m = Measurement {
            warehouses: 500,
            clients: 56,
            processors: 4,
            elapsed_seconds: 10.0,
            transactions: 10_000,
            user: SpaceCounts {
                instructions: 10_000_000_000,
                cycles: 40_000_000_000,
                ..Default::default()
            },
            os: SpaceCounts {
                instructions: 3_000_000_000,
                cycles: 6_000_000_000,
                ..Default::default()
            },
            cpu_utilization: 0.95,
            os_busy_fraction: 0.15,
            io_per_txn: IoPerTxn::default(),
            disk_reads_per_txn: 3.0,
            context_switches_per_txn: 8.0,
            bus_utilization: 0.4,
            bus_transaction_cycles: 140.0,
        };
        let est = WorkloadEstimates::from_measurement(&m);
        assert!((est.os_fraction - 3.0 / 13.0).abs() < 1e-9);
        // 1.3M instructions per txn / 8 switches per txn.
        assert_eq!(est.instrs_per_context_switch, 162_500);
    }

    #[test]
    fn estimates_clamp_degenerate_measurements() {
        let mut m = Measurement {
            warehouses: 10,
            clients: 8,
            processors: 1,
            elapsed_seconds: 0.0,
            transactions: 0,
            user: SpaceCounts::default(),
            os: SpaceCounts::default(),
            cpu_utilization: 0.0,
            os_busy_fraction: 0.0,
            io_per_txn: IoPerTxn::default(),
            disk_reads_per_txn: 0.0,
            context_switches_per_txn: 0.0,
            bus_utilization: 0.0,
            bus_transaction_cycles: 102.0,
        };
        let est = WorkloadEstimates::from_measurement(&m);
        assert_eq!(est.os_fraction, 0.10);
        // All-OS pathological measurement clamps at 0.6.
        m.os.instructions = 1_000;
        m.transactions = 1;
        let est = WorkloadEstimates::from_measurement(&m);
        assert!(est.os_fraction <= 0.6);
        assert!(est.instrs_per_context_switch >= 20_000);
    }

    #[test]
    fn ref_source_emits_lines_within_touched_pages() {
        let mut src = OdbRefSource::new(25, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let map = PageMap::new(25);
        let mut pages = std::collections::HashSet::new();
        let mut writes = 0u32;
        for _ in 0..4_000 {
            let r = src.next_ref(&mut rng);
            let page = r.offset / PAGE_BYTES;
            assert!(page < map.total_pages(), "page {page} in range");
            pages.insert(page);
            if r.write {
                writes += 1;
            }
        }
        assert!(pages.len() > 50, "page diversity: {}", pages.len());
        // Writes are scaled down to the real store cadence (write_scale),
        // so only a few percent of refs write — but some must.
        assert!(writes > 20, "write touches propagate: {writes}");
        assert!(writes < 600, "write cadence stays scaled: {writes}");
    }

    #[test]
    fn ref_source_groups_lines_per_touch() {
        let mut src = OdbRefSource::new(5, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        // Consecutive refs come in groups of 4 on the same page.
        let mut last_page = u64::MAX;
        let mut run = 0;
        let mut runs = Vec::new();
        for _ in 0..400 {
            let r = src.next_ref(&mut rng);
            let page = r.offset / PAGE_BYTES;
            if page == last_page {
                run += 1;
            } else {
                if run > 0 {
                    runs.push(run);
                }
                run = 1;
                last_page = page;
            }
        }
        // Mean run length ≥ lines_per_touch implies grouping works
        // (adjacent touches can hit the same page, making runs longer).
        let mean: f64 = runs.iter().sum::<i32>() as f64 / runs.len() as f64;
        assert!(mean >= 3.5, "mean page run {mean}");
    }
}
