// A demo driver, not shipped simulation code: panicking on a bad point
// is the right behaviour here.
#![allow(clippy::unwrap_used)]

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::{OdbSimulator, SimOptions};

fn main() {
    let clients = |w: u32, p: u32| -> u32 {
        // rough Table-1-like ladder
        match (w, p) {
            (w, 1) if w <= 100 => 8,
            (_, 1) => 13,
            (w, 2) if w <= 10 => 10,
            (w, 2) if w <= 100 => 16,
            (_, 2) => 36,
            (w, _) if w <= 10 => 10,
            (w, _) if w <= 50 => 32,
            (w, _) if w <= 100 => 48,
            (w, _) if w <= 500 => 56,
            _ => 64,
        }
    };
    for p in [1u32, 2, 4] {
        for w in [10u32, 25, 50, 100, 200, 300, 500, 800, 1200] {
            let c = clients(w, p);
            let config = OltpConfig::new(WorkloadConfig::new(w, c).unwrap(),
                SystemConfig::xeon_quad().with_processors(p)).unwrap();
            let sim = OdbSimulator::new(config, SimOptions::standard()).unwrap();
            let art = sim.run_detailed().unwrap();
            let m = &art.measurement;
            println!("P={p} W={w:4} C={c:2} TPS={:6.0} util={:.2} os%={:.2} ipx={:.2}M ipxU={:.2} ipxO={:.2} cpi={:.2} cpiU={:.2} cpiO={:.2} mpi={:.4} cs={:4.1} rd={:4.2} io(r/l/w)KB={:4.1}/{:3.1}/{:4.1} bus={:.2} ioq={:.0} coh%={:.1}",
                m.tps(), m.cpu_utilization, m.os_busy_fraction,
                m.ipx()/1e6, m.ipx_user()/1e6, m.ipx_os()/1e6,
                m.cpi(), m.cpi_user(), m.cpi_os(), m.mpi()*1000.0,
                m.context_switches_per_txn, m.disk_reads_per_txn,
                m.io_per_txn.read_kb, m.io_per_txn.log_write_kb, m.io_per_txn.page_write_kb,
                m.bus_utilization, m.bus_transaction_cycles,
                art.characterization.coherence_miss_fraction()*100.0);
        }
    }
}
