//! Transaction types, mix and per-type execution profiles.
//!
//! ODB's transactions are the classic order-entry five (§3.1): entering
//! and delivering orders, recording payments, checking order status and
//! inventory levels. For the paper's metrics, what matters about a
//! transaction is (a) how many user instructions it runs, (b) which pages
//! it touches and whether it dirties them, (c) which hot blocks it
//! serializes on, and (d) how much redo it generates. [`TxnSampler`]
//! produces concrete [`Transaction`] instances with those four properties.

use crate::schema::{PageId, PageMap, Table, TouchKind, CUSTOMERS_PER_DISTRICT, ITEMS};
use odb_memsim::dist::Zipf;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The five ODB transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnType {
    /// Enter a customer order (≈45% of the mix).
    NewOrder,
    /// Record a payment (≈43%).
    Payment,
    /// Check the status of a previous order (4%).
    OrderStatus,
    /// Deliver a batch of pending orders (4%).
    Delivery,
    /// Check inventory levels at a warehouse (4%).
    StockLevel,
}

impl TxnType {
    /// All types, in mix order.
    pub const ALL: [TxnType; 5] = [
        TxnType::NewOrder,
        TxnType::Payment,
        TxnType::OrderStatus,
        TxnType::Delivery,
        TxnType::StockLevel,
    ];

    /// This type's position in [`TxnType::ALL`] (mix order).
    pub fn index(self) -> usize {
        match self {
            TxnType::NewOrder => 0,
            TxnType::Payment => 1,
            TxnType::OrderStatus => 2,
            TxnType::Delivery => 3,
            TxnType::StockLevel => 4,
        }
    }

    /// The share of this type in the transaction mix (sums to 1).
    pub fn mix(&self) -> f64 {
        match self {
            TxnType::NewOrder => 0.45,
            TxnType::Payment => 0.43,
            TxnType::OrderStatus => 0.04,
            TxnType::Delivery => 0.04,
            TxnType::StockLevel => 0.04,
        }
    }

    /// Mean user-space instructions for one execution.
    pub fn user_instructions(&self) -> u64 {
        match self {
            TxnType::NewOrder => 1_400_000,
            TxnType::Payment => 700_000,
            TxnType::OrderStatus => 500_000,
            TxnType::Delivery => 1_800_000,
            TxnType::StockLevel => 1_200_000,
        }
    }

    /// Redo-log bytes generated (read-only types write a commit marker).
    pub fn log_bytes(&self) -> u64 {
        match self {
            TxnType::NewOrder => 8 << 10,
            TxnType::Payment => 3 << 10,
            TxnType::OrderStatus => 256,
            TxnType::Delivery => 10 << 10,
            TxnType::StockLevel => 128,
        }
    }

    /// Draws a type according to the paper's standard mix.
    pub fn sample(rng: &mut SmallRng) -> TxnType {
        TxnMix::paper().sample(rng)
    }
}

/// A transaction mix: the probability of each type.
///
/// The iron law makes the mix a first-order performance lever: it sets
/// the average IPX directly (a read-heavy mix runs lighter transactions)
/// and shifts the redo volume and lock pressure. [`TxnMix::paper`] is the
/// order-entry mix of §3.1; the alternates support mix-sensitivity
/// studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnMix {
    weights: [f64; 5],
}

impl TxnMix {
    /// The paper's standard order-entry mix (45/43/4/4/4).
    pub fn paper() -> Self {
        Self {
            weights: [0.45, 0.43, 0.04, 0.04, 0.04],
        }
    }

    /// A reporting-leaning mix: reads dominate (order status and stock
    /// checks), updates are rare.
    pub fn read_heavy() -> Self {
        Self {
            weights: [0.10, 0.10, 0.40, 0.05, 0.35],
        }
    }

    /// An ingest-leaning mix: almost all new orders and payments.
    pub fn write_heavy() -> Self {
        Self {
            weights: [0.55, 0.41, 0.01, 0.02, 0.01],
        }
    }

    /// A custom mix in [`TxnType::ALL`] order.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] unless the weights are
    /// non-negative, finite and sum to 1 (within 1e-6).
    pub fn new(weights: [f64; 5]) -> Result<Self, odb_core::Error> {
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(odb_core::Error::InvalidConfig {
                field: "weights",
                reason: "weights must be finite and non-negative".to_owned(),
            });
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(odb_core::Error::InvalidConfig {
                field: "weights",
                reason: format!("weights sum to {total}, expected 1.0"),
            });
        }
        Ok(Self { weights })
    }

    /// The weight of one type.
    pub fn weight(&self, ty: TxnType) -> f64 {
        self.weights[ty.index()]
    }

    /// Draws a type.
    pub fn sample(&self, rng: &mut SmallRng) -> TxnType {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (ty, w) in TxnType::ALL.iter().zip(self.weights) {
            acc += w;
            if u < acc {
                return *ty;
            }
        }
        // Rounding can leave `u` past the accumulated sum; the last type
        // in mix order absorbs the remainder.
        TxnType::StockLevel
    }

    /// Mean user instructions per transaction under this mix.
    pub fn mean_user_instructions(&self) -> f64 {
        TxnType::ALL
            .iter()
            .zip(self.weights)
            .map(|(t, w)| w * t.user_instructions() as f64)
            .sum()
    }

    /// Mean redo bytes per transaction under this mix.
    pub fn mean_log_bytes(&self) -> f64 {
        TxnType::ALL
            .iter()
            .zip(self.weights)
            .map(|(t, w)| w * t.log_bytes() as f64)
            .sum()
    }
}

impl Default for TxnMix {
    fn default() -> Self {
        Self::paper()
    }
}

/// The hot blocks a transaction must serialize on.
///
/// `Ord` is derived so lock state can live in deterministically ordered
/// collections; the *acquisition* order remains
/// [`crate::locks::canonical_order`], which is not the derived order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockTarget {
    /// The block holding all ten district rows of a warehouse; new-order
    /// takes it to advance the order sequence, payment to post district
    /// totals. At 10 warehouses there are only ten such blocks in the
    /// whole database — the contention mechanism behind Fig 8's spike.
    DistrictBlock(u32),
    /// The block holding a warehouse row; payment updates warehouse
    /// year-to-date totals.
    WarehouseBlock(u32),
}

/// One page access in a transaction's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTouch {
    /// The page accessed.
    pub page: PageId,
    /// Read or write.
    pub kind: TouchKind,
    /// `true` for inserts into fresh tail blocks of the ring tables:
    /// write-allocate without a read from disk (the block's old contents
    /// are dead).
    pub insert: bool,
}

/// A fully materialized transaction, ready for the DES to execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// The transaction's type.
    pub ty: TxnType,
    /// Home warehouse.
    pub warehouse: u32,
    /// Pages touched, in execution order.
    pub touches: Vec<PageTouch>,
    /// User instructions this execution will retire.
    pub user_instructions: u64,
    /// Redo bytes generated at commit.
    pub log_bytes: u64,
    /// Locks to take, acquired when execution reaches
    /// `lock_acquire_index` into `touches` and held until after commit.
    pub locks: Vec<LockTarget>,
    /// Touch index at which the locks are acquired.
    pub lock_acquire_index: usize,
}

impl Transaction {
    /// Pages this transaction writes (dirty page count).
    pub fn dirty_pages(&self) -> usize {
        let mut dirtied: Vec<PageId> = self
            .touches
            .iter()
            .filter(|t| t.kind == TouchKind::Write)
            .map(|t| t.page)
            .collect();
        dirtied.sort_unstable();
        dirtied.dedup();
        dirtied.len()
    }
}

/// Interior B-tree pages per warehouse that probes actually touch: the
/// root and branch levels stay hot; leaf-page misses are folded into the
/// row-page touches they lead to.
const INDEX_INTERIOR_SLOTS: u64 = 64;

/// Per-warehouse insert sequences (order numbers, history records).
#[derive(Debug, Clone, Default)]
struct WarehouseSequences {
    orders: u64,
    history: u64,
}

/// Materializes transactions against a [`PageMap`].
///
/// Row selection is skewed — customers, items and stock follow Zipf
/// distributions, matching real order-entry behaviour where popular items
/// and recent customers dominate. Index probes hit the per-warehouse
/// index extent with interior-node skew.
#[derive(Debug, Clone)]
pub struct TxnSampler {
    map: PageMap,
    mix: TxnMix,
    // Zipf CDF tables are large (the item table's is ~800 KB); sharing
    // them makes cloning a sampler per simulated process cheap.
    customer: std::sync::Arc<Zipf>,
    item: std::sync::Arc<Zipf>,
    index: std::sync::Arc<Zipf>,
    sequences: Vec<WarehouseSequences>,
    /// Fraction of payments made through a remote warehouse (TPC-C-like
    /// cross-warehouse sharing; disabled for a single warehouse).
    remote_payment_frac: f64,
}

impl TxnSampler {
    /// A sampler over the given page map with the paper's standard mix.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] if a row-selection
    /// distribution cannot be built (impossible for the fixed schema
    /// constants, but propagated rather than asserted).
    pub fn new(map: PageMap) -> Result<Self, odb_core::Error> {
        Self::with_mix(map, TxnMix::paper())
    }

    /// A sampler with a custom transaction mix.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] as for
    /// [`TxnSampler::new`].
    pub fn with_mix(map: PageMap, mix: TxnMix) -> Result<Self, odb_core::Error> {
        Ok(Self {
            map,
            mix,
            customer: std::sync::Arc::new(Zipf::new(CUSTOMERS_PER_DISTRICT * 10, 1.0)?),
            item: std::sync::Arc::new(Zipf::new(ITEMS, 1.09)?),
            index: std::sync::Arc::new(Zipf::new(INDEX_INTERIOR_SLOTS, 1.1)?),
            sequences: vec![WarehouseSequences::default(); map.warehouses() as usize],
            remote_payment_frac: if map.warehouses() > 1 { 0.15 } else { 0.0 },
        })
    }

    /// Checks the sampler's Zipf CDF tables for corruption.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::CorruptState`] if any table was
    /// poisoned (see [`TxnSampler::inject_poison_cdf`]).
    pub fn check_invariants(&self) -> Result<(), odb_core::Error> {
        self.customer.check_cdf()?;
        self.item.check_cdf()?;
        self.index.check_cdf()?;
        Ok(())
    }

    /// Fault injection: poisons the customer-selection CDF with NaN.
    /// Returns `true` if a table was poisoned. Sampling stays abort-free;
    /// [`TxnSampler::check_invariants`] reports the corruption.
    #[cfg(feature = "invariants")]
    pub fn inject_poison_cdf(&mut self) -> bool {
        std::sync::Arc::make_mut(&mut self.customer).inject_poison_cdf()
    }

    /// The underlying page map.
    pub fn map(&self) -> &PageMap {
        &self.map
    }

    /// Samples one transaction with a uniformly chosen home warehouse.
    pub fn sample(&mut self, rng: &mut SmallRng) -> Transaction {
        let warehouse = rng.gen_range(0..self.map.warehouses());
        let ty = self.mix.sample(rng);
        self.sample_of_type(ty, warehouse, rng)
    }

    /// The mix in force.
    pub fn mix(&self) -> TxnMix {
        self.mix
    }

    /// Samples a transaction of a specific type at a specific warehouse.
    pub fn sample_of_type(
        &mut self,
        ty: TxnType,
        warehouse: u32,
        rng: &mut SmallRng,
    ) -> Transaction {
        let mut touches = Vec::with_capacity(48);
        let mut locks = Vec::new();
        let mut lock_acquire_index = 0;
        match ty {
            TxnType::NewOrder => {
                // Read the customer placing the order.
                self.probe(&mut touches, warehouse, rng);
                self.customer_touch(&mut touches, warehouse, TouchKind::Read, rng);
                // Take the district sequence: the hot-block lock point.
                lock_acquire_index = touches.len();
                locks.push(LockTarget::DistrictBlock(warehouse));
                touches.push(PageTouch {
                    page: self.map.row_page(Table::District, warehouse, 0),
                    kind: TouchKind::Write,
                    insert: false,
                });
                // Ten order lines: item lookup (global) + stock update.
                for _ in 0..10 {
                    let item = self.item.sample(rng);
                    touches.push(PageTouch {
                        page: self.map.item_page(item),
                        kind: TouchKind::Read,
                        insert: false,
                    });
                    self.probe(&mut touches, warehouse, rng);
                    touches.push(PageTouch {
                        page: self.map.row_page(Table::Stock, warehouse, item),
                        kind: TouchKind::Write,
                        insert: false,
                    });
                }
                // Insert the order header, its lines and the queue entry.
                let seq = self.next_order_seq(warehouse);
                touches.push(PageTouch {
                    page: self.map.row_page(Table::Orders, warehouse, seq),
                    kind: TouchKind::Write,
                    insert: true,
                });
                for line in 0..10 {
                    let page = self
                        .map
                        .row_page(Table::OrderLine, warehouse, seq * 10 + line);
                    if touches.last().map(|t| t.page) != Some(page) {
                        touches.push(PageTouch {
                            page,
                            kind: TouchKind::Write,
                            insert: true,
                        });
                    }
                }
                touches.push(PageTouch {
                    page: self.map.row_page(Table::NewOrder, warehouse, seq),
                    kind: TouchKind::Write,
                    insert: true,
                });
            }
            TxnType::Payment => {
                lock_acquire_index = 0;
                locks.push(LockTarget::WarehouseBlock(warehouse));
                locks.push(LockTarget::DistrictBlock(warehouse));
                touches.push(PageTouch {
                    page: self.map.row_page(Table::Warehouse, warehouse, 0),
                    kind: TouchKind::Write,
                    insert: false,
                });
                touches.push(PageTouch {
                    page: self.map.row_page(Table::District, warehouse, 0),
                    kind: TouchKind::Write,
                    insert: false,
                });
                // The paying customer, sometimes of a remote warehouse.
                let cust_wh = if rng.gen_bool(self.remote_payment_frac) {
                    rng.gen_range(0..self.map.warehouses())
                } else {
                    warehouse
                };
                self.probe(&mut touches, cust_wh, rng);
                self.customer_touch(&mut touches, cust_wh, TouchKind::Write, rng);
                let hseq = self.next_history_seq(warehouse);
                touches.push(PageTouch {
                    page: self.map.row_page(Table::History, warehouse, hseq),
                    kind: TouchKind::Write,
                    insert: true,
                });
            }
            TxnType::OrderStatus => {
                self.probe(&mut touches, warehouse, rng);
                self.customer_touch(&mut touches, warehouse, TouchKind::Read, rng);
                // Find the customer's most recent order and its lines.
                let seq = self.recent_order_seq(warehouse, rng);
                self.probe(&mut touches, warehouse, rng);
                touches.push(PageTouch {
                    page: self.map.row_page(Table::Orders, warehouse, seq),
                    kind: TouchKind::Read,
                    insert: false,
                });
                for line in [0u64, 5] {
                    touches.push(PageTouch {
                        page: self
                            .map
                            .row_page(Table::OrderLine, warehouse, seq * 10 + line),
                        kind: TouchKind::Read,
                        insert: false,
                    });
                }
            }
            TxnType::Delivery => {
                // Delivery batch-processes every district of the
                // warehouse, serializing on the district block for its
                // whole run — a strong contributor to small-W contention.
                lock_acquire_index = 0;
                locks.push(LockTarget::DistrictBlock(warehouse));
                for _district in 0..10u64 {
                    let seq = self.recent_order_seq(warehouse, rng);
                    touches.push(PageTouch {
                        page: self.map.row_page(Table::NewOrder, warehouse, seq),
                        kind: TouchKind::Write,
                        insert: false,
                    });
                    touches.push(PageTouch {
                        page: self.map.row_page(Table::Orders, warehouse, seq),
                        kind: TouchKind::Write,
                        insert: false,
                    });
                    touches.push(PageTouch {
                        page: self
                            .map
                            .row_page(Table::OrderLine, warehouse, seq * 10 + 2),
                        kind: TouchKind::Write,
                        insert: false,
                    });
                    self.customer_touch(&mut touches, warehouse, TouchKind::Write, rng);
                }
            }
            TxnType::StockLevel => {
                touches.push(PageTouch {
                    page: self.map.row_page(Table::District, warehouse, 0),
                    kind: TouchKind::Read,
                    insert: false,
                });
                // Recent order lines, then the stock rows they name.
                let seq = self.recent_order_seq(warehouse, rng);
                for k in 0..4u64 {
                    touches.push(PageTouch {
                        page: self
                            .map
                            .row_page(Table::OrderLine, warehouse, (seq + k) * 10),
                        kind: TouchKind::Read,
                        insert: false,
                    });
                }
                for _ in 0..20 {
                    let item = self.item.sample(rng);
                    self.probe(&mut touches, warehouse, rng);
                    touches.push(PageTouch {
                        page: self.map.row_page(Table::Stock, warehouse, item),
                        kind: TouchKind::Read,
                        insert: false,
                    });
                }
            }
        }
        let jitter = 0.9 + 0.2 * rng.gen::<f64>();
        Transaction {
            ty,
            warehouse,
            user_instructions: (ty.user_instructions() as f64 * jitter) as u64,
            log_bytes: ty.log_bytes(),
            touches,
            locks,
            lock_acquire_index,
        }
    }

    /// One B-tree probe: a touch on the (interior-skewed) index extent.
    fn probe(&mut self, touches: &mut Vec<PageTouch>, warehouse: u32, rng: &mut SmallRng) {
        let slot = self.index.sample(rng);
        touches.push(PageTouch {
            page: self.map.index_page(warehouse, slot),
            kind: TouchKind::Read,
            insert: false,
        });
    }

    /// A customer-row touch at a Zipf-selected customer.
    fn customer_touch(
        &mut self,
        touches: &mut Vec<PageTouch>,
        warehouse: u32,
        kind: TouchKind,
        rng: &mut SmallRng,
    ) {
        let row = self.customer.sample(rng);
        touches.push(PageTouch {
            page: self.map.row_page(Table::Customer, warehouse, row),
            kind,
            insert: false,
        });
    }

    fn next_order_seq(&mut self, warehouse: u32) -> u64 {
        let seq = &mut self.sequences[warehouse as usize].orders;
        *seq += 1;
        *seq
    }

    fn next_history_seq(&mut self, warehouse: u32) -> u64 {
        let seq = &mut self.sequences[warehouse as usize].history;
        *seq += 1;
        *seq
    }

    /// A recently inserted order's sequence number.
    fn recent_order_seq(&mut self, warehouse: u32, rng: &mut SmallRng) -> u64 {
        let head = self.sequences[warehouse as usize].orders;
        head.saturating_sub(rng.gen_range(0..20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sampler(w: u32) -> TxnSampler {
        TxnSampler::new(PageMap::new(w)).unwrap()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    #[test]
    fn txn_mix_presets_and_validation() {
        for mix in [TxnMix::paper(), TxnMix::read_heavy(), TxnMix::write_heavy()] {
            let total: f64 = TxnType::ALL.iter().map(|t| mix.weight(*t)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert_eq!(TxnMix::default(), TxnMix::paper());
        // Read-heavy mixes run lighter transactions and log less.
        assert!(
            TxnMix::read_heavy().mean_user_instructions()
                < TxnMix::paper().mean_user_instructions()
        );
        assert!(TxnMix::read_heavy().mean_log_bytes() < TxnMix::paper().mean_log_bytes());
        assert!(TxnMix::write_heavy().mean_log_bytes() > TxnMix::paper().mean_log_bytes());
        // Validation.
        assert!(TxnMix::new([0.2, 0.2, 0.2, 0.2, 0.2]).is_ok());
        assert!(TxnMix::new([0.5, 0.5, 0.5, 0.0, 0.0]).is_err());
        assert!(TxnMix::new([-0.1, 0.5, 0.3, 0.2, 0.1]).is_err());
        assert!(TxnMix::new([f64::NAN, 0.5, 0.3, 0.1, 0.1]).is_err());
    }

    #[test]
    fn custom_mix_drives_sampling() {
        let mix = TxnMix::new([0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut s = TxnSampler::with_mix(PageMap::new(5), mix).unwrap();
        assert_eq!(s.mix(), mix);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r).ty, TxnType::OrderStatus);
        }
    }

    #[test]
    fn mix_sums_to_one_and_sampling_respects_it() {
        let total: f64 = TxnType::ALL.iter().map(|t| t.mix()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(TxnType::sample(&mut r)).or_insert(0u32) += 1;
        }
        for ty in TxnType::ALL {
            let observed = counts[&ty] as f64 / 20_000.0;
            assert!(
                (observed - ty.mix()).abs() < 0.02,
                "{ty:?}: {observed} vs {}",
                ty.mix()
            );
        }
    }

    #[test]
    fn average_user_instructions_and_log_near_paper() {
        let mean_instr: f64 = TxnType::ALL
            .iter()
            .map(|t| t.mix() * t.user_instructions() as f64)
            .sum();
        assert!(
            (1.0e6..1.3e6).contains(&mean_instr),
            "user IPX {mean_instr}"
        );
        // The paper reports ~6 KB of log per transaction on average.
        let mean_log: f64 = TxnType::ALL
            .iter()
            .map(|t| t.mix() * t.log_bytes() as f64)
            .sum();
        assert!(
            (5.0e3..7.0e3).contains(&mean_log),
            "log bytes {mean_log}"
        );
    }

    #[test]
    fn new_order_locks_district_and_writes_stock() {
        let mut s = sampler(10);
        let mut r = rng();
        let t = s.sample_of_type(TxnType::NewOrder, 3, &mut r);
        assert_eq!(t.locks, vec![LockTarget::DistrictBlock(3)]);
        assert!(t.lock_acquire_index > 0, "reads precede the lock");
        assert!(t.lock_acquire_index < t.touches.len());
        let writes = t
            .touches
            .iter()
            .filter(|x| x.kind == TouchKind::Write)
            .count();
        assert!(writes >= 12, "district + 10 stock + inserts: {writes}");
        assert!(t.touches.len() >= 25, "touches {}", t.touches.len());
        // 10 stock items + district + inserts, minus Zipf page collisions
        // among the item draws: 8 distinct pages under the seeded stream.
        assert!(t.dirty_pages() >= 8, "dirty {}", t.dirty_pages());
    }

    #[test]
    fn payment_locks_warehouse_and_district_immediately() {
        let mut s = sampler(10);
        let mut r = rng();
        let t = s.sample_of_type(TxnType::Payment, 7, &mut r);
        assert!(t.locks.contains(&LockTarget::WarehouseBlock(7)));
        assert!(t.locks.contains(&LockTarget::DistrictBlock(7)));
        assert_eq!(t.lock_acquire_index, 0);
        assert!(t.touches.len() >= 5);
    }

    #[test]
    fn read_only_types_take_no_locks() {
        let mut s = sampler(10);
        let mut r = rng();
        for ty in [TxnType::OrderStatus, TxnType::StockLevel] {
            let t = s.sample_of_type(ty, 0, &mut r);
            assert!(t.locks.is_empty(), "{ty:?} is lock-free");
            assert!(t
                .touches
                .iter()
                .all(|touch| touch.kind == TouchKind::Read));
            assert_eq!(t.dirty_pages(), 0);
        }
    }

    #[test]
    fn delivery_touches_many_pages_across_districts() {
        let mut s = sampler(5);
        let mut r = rng();
        let t = s.sample_of_type(TxnType::Delivery, 2, &mut r);
        assert!(t.touches.len() >= 35, "{}", t.touches.len());
        assert!(t.dirty_pages() >= 10);
    }

    #[test]
    fn touches_stay_inside_the_database() {
        let mut s = sampler(25);
        let mut r = rng();
        let total = s.map().total_pages();
        for _ in 0..500 {
            let t = s.sample(&mut r);
            for touch in &t.touches {
                assert!(touch.page < total, "page {} out of range", touch.page);
            }
            assert!(t.warehouse < 25);
        }
    }

    #[test]
    fn order_sequences_advance_per_warehouse() {
        let mut s = sampler(3);
        let mut r = rng();
        let t1 = s.sample_of_type(TxnType::NewOrder, 1, &mut r);
        let t2 = s.sample_of_type(TxnType::NewOrder, 1, &mut r);
        // Subsequent orders land on the same or the next ring page.
        let p1 = t1.touches.iter().rev().nth(1).unwrap().page;
        let p2 = t2.touches.iter().rev().nth(1).unwrap().page;
        assert!(p2 == p1 || p2 == p1 + 1 || p2 < p1 /* ring wrap */);
    }

    #[test]
    fn single_warehouse_never_pays_remotely() {
        let mut s = sampler(1);
        let mut r = rng();
        for _ in 0..50 {
            let t = s.sample_of_type(TxnType::Payment, 0, &mut r);
            assert!(t.touches.iter().all(|x| x.page < s.map().total_pages()));
        }
    }

    mod properties {
        // With the offline proptest stub the macro body (and thus every
        // use of these imports) compiles away.
        #![allow(unused_imports)]
        use super::super::*;
        use proptest::prelude::*;
        use rand::SeedableRng;

        proptest! {
            /// Sampled transactions are always well-formed: in-range
            /// pages, valid lock index, positive instruction budget, and
            /// locks only on the hot blocks of real warehouses.
            #[test]
            fn sampled_transactions_are_well_formed(
                warehouses in 1u32..600,
                seed in 0u64..1_000,
            ) {
                let mut s = TxnSampler::new(PageMap::new(warehouses)).unwrap();
                let mut rng = SmallRng::seed_from_u64(seed);
                let total = s.map().total_pages();
                for _ in 0..10 {
                    let t = s.sample(&mut rng);
                    prop_assert!(t.warehouse < warehouses);
                    prop_assert!(!t.touches.is_empty());
                    prop_assert!(t.lock_acquire_index <= t.touches.len());
                    prop_assert!(t.user_instructions > 100_000);
                    for touch in &t.touches {
                        prop_assert!(touch.page < total);
                    }
                    for lock in &t.locks {
                        let w = match lock {
                            LockTarget::DistrictBlock(w)
                            | LockTarget::WarehouseBlock(w) => *w,
                        };
                        prop_assert!(w < warehouses);
                    }
                    // Insert touches are writes by definition.
                    prop_assert!(t
                        .touches
                        .iter()
                        .filter(|x| x.insert)
                        .all(|x| x.kind == TouchKind::Write));
                }
            }

            /// dirty_pages() is consistent with the touch list.
            #[test]
            fn dirty_page_count_matches_touches(seed in 0u64..500) {
                let mut s = TxnSampler::new(PageMap::new(20)).unwrap();
                let mut rng = SmallRng::seed_from_u64(seed);
                let t = s.sample(&mut rng);
                let writes: std::collections::HashSet<u64> = t
                    .touches
                    .iter()
                    .filter(|x| x.kind == TouchKind::Write)
                    .map(|x| x.page)
                    .collect();
                prop_assert_eq!(t.dirty_pages(), writes.len());
            }
        }
    }

    #[test]
    fn instruction_jitter_is_bounded() {
        let mut s = sampler(2);
        let mut r = rng();
        for _ in 0..100 {
            let t = s.sample_of_type(TxnType::NewOrder, 0, &mut r);
            let base = TxnType::NewOrder.user_instructions() as f64;
            let ratio = t.user_instructions as f64 / base;
            assert!((0.9..=1.1).contains(&ratio));
        }
    }
}
