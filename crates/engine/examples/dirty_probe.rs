// A demo driver, not shipped simulation code: panicking on a bad point
// is the right behaviour here.
#![allow(clippy::unwrap_used)]

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::buffer::BufferCache;
use odb_engine::schema::PageMap;
use odb_engine::txn::TxnSampler;
use odb_engine::schema::TouchKind;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let config = OltpConfig::new(WorkloadConfig::new(100, 48).unwrap(), SystemConfig::xeon_quad()).unwrap();
    let frames = (config.system.buffer_cache_bytes / 8192) as usize;
    let mut buffer = BufferCache::new(frames);
    let mut sampler = TxnSampler::new(PageMap::new(100)).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xDB_CAFE);
    let mut touched = 0usize;
    while touched < frames * 3 {
        let txn = sampler.sample(&mut rng);
        touched += txn.touches.len();
        for t in txn.touches {
            buffer.prewarm(t.page, t.kind == TouchKind::Write);
        }
    }
    println!("len={} capacity={} dirty={} ({:.1}%)", buffer.len(), buffer.capacity(),
        buffer.dirty_len(), 100.0*buffer.dirty_len() as f64/buffer.len() as f64);
    // Now drive 200k touches and count dirty evictions
    buffer.reset_stats();
    for _ in 0..20_000 {
        let txn = sampler.sample(&mut rng);
        for t in txn.touches {
            buffer.access(t.page, t.kind == TouchKind::Write);
        }
    }
    let s = buffer.stats();
    println!("accesses={} misses={} dirty_evictions={} per-miss={:.3}",
        s.accesses, s.misses, s.dirty_evictions, s.dirty_evictions as f64/s.misses.max(1) as f64);
}
