//! Extrapolating large-configuration behaviour from a minimal
//! representative setup (§6.2).
//!
//! The paper's proposal: fit the two-region model on measurements spanning
//! the pivot, pick the smallest configuration *larger* than the pivot as
//! the representative workload, and project bigger setups with the
//! scaled-region line — "there is no need to simulate larger setups."

use crate::error::Error;
use crate::pivot::TwoSegmentFit;
use crate::regression::mape;
use serde::{Deserialize, Serialize};

/// Picks the smallest candidate workload size strictly greater than the
/// pivot — the paper's minimal representative configuration (it picks
/// 200 W for a pivot near 130 W on the Xeon's standard ladder).
///
/// Returns `None` when every candidate is at or below the pivot.
///
/// ```
/// use odb_core::extrapolate::representative_workload;
///
/// let ladder = [10, 25, 50, 100, 200, 300, 500, 800];
/// assert_eq!(representative_workload(130.0, &ladder), Some(200));
/// assert_eq!(representative_workload(900.0, &ladder), None);
/// ```
pub fn representative_workload(pivot_x: f64, candidates: &[u32]) -> Option<u32> {
    candidates
        .iter()
        .copied()
        .filter(|&w| (w as f64) > pivot_x)
        .min()
}

/// Quality report for an extrapolation validated against held-out
/// measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtrapolationReport {
    /// Mean absolute percentage error across the held-out points.
    pub mape: f64,
    /// Worst single-point absolute percentage error.
    pub worst_ape: f64,
    /// `(x, predicted, actual)` triples for every held-out point.
    pub points: Vec<(f64, f64, f64)>,
}

/// Predicts scaled-setup metric values from measurements around the pivot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extrapolator {
    fit: TwoSegmentFit,
}

impl Extrapolator {
    /// Builds an extrapolator by fitting the two-region model to
    /// measurements (`xs` strictly increasing, typically 10 W up to a few
    /// points past the expected pivot).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from [`TwoSegmentFit::fit`].
    pub fn from_measurements(xs: &[f64], ys: &[f64]) -> Result<Self, Error> {
        Ok(Self {
            fit: TwoSegmentFit::fit(xs, ys)?,
        })
    }

    /// The underlying two-segment fit.
    pub fn fit(&self) -> &TwoSegmentFit {
        &self.fit
    }

    /// Predicts the metric at workload size `x`; beyond the pivot this is
    /// the scaled-region line — the paper's projection rule.
    pub fn predict(&self, x: f64) -> f64 {
        self.fit.predict(x)
    }

    /// Scores the extrapolation against held-out `(x, actual)` pairs
    /// (larger configurations that were *not* part of the fit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] when `held_out` is empty or all
    /// actuals are zero.
    pub fn validate(&self, held_out: &[(f64, f64)]) -> Result<ExtrapolationReport, Error> {
        if held_out.is_empty() {
            return Err(Error::TooFewPoints { needed: 1, got: 0 });
        }
        let predicted: Vec<f64> = held_out.iter().map(|&(x, _)| self.predict(x)).collect();
        let actual: Vec<f64> = held_out.iter().map(|&(_, a)| a).collect();
        let mape = mape(&predicted, &actual)?;
        let mut worst = 0.0f64;
        let mut points = Vec::with_capacity(held_out.len());
        for (&(x, a), &p) in held_out.iter().zip(&predicted) {
            if a != 0.0 {
                worst = worst.max(((p - a) / a).abs());
            }
            points.push((x, p, a));
        }
        Ok(ExtrapolationReport {
            mape,
            worst_ape: worst,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noiseless paper-shaped CPI trend with a knee at 100 W.
    fn trend(x: f64) -> f64 {
        if x <= 100.0 {
            1.0 + 0.04 * x
        } else {
            4.6 + 0.004 * x
        }
    }

    #[test]
    fn extrapolates_scaled_region_accurately() {
        // Fit only on 10..300 W, predict 500 and 800 W.
        let xs = [10.0, 25.0, 50.0, 100.0, 200.0, 300.0];
        let ys: Vec<f64> = xs.iter().map(|&x| trend(x)).collect();
        let ex = Extrapolator::from_measurements(&xs, &ys).unwrap();
        let report = ex
            .validate(&[(500.0, trend(500.0)), (800.0, trend(800.0))])
            .unwrap();
        assert!(report.mape < 0.02, "mape {}", report.mape);
        assert!(report.worst_ape < 0.03);
        assert_eq!(report.points.len(), 2);
    }

    #[test]
    fn representative_workload_is_smallest_above_pivot() {
        let ladder = [10, 25, 50, 100, 200, 300, 500, 800];
        assert_eq!(representative_workload(99.9, &ladder), Some(100));
        assert_eq!(representative_workload(100.0, &ladder), Some(200));
        assert_eq!(representative_workload(0.0, &ladder), Some(10));
        assert_eq!(representative_workload(800.0, &ladder), None);
        assert_eq!(representative_workload(50.0, &[]), None);
        // Order independence.
        assert_eq!(representative_workload(130.0, &[800, 200, 500]), Some(200));
    }

    #[test]
    fn validate_rejects_empty_holdout() {
        let xs = [10.0, 25.0, 50.0, 100.0];
        let ys: Vec<f64> = xs.iter().map(|&x| trend(x)).collect();
        let ex = Extrapolator::from_measurements(&xs, &ys).unwrap();
        assert!(ex.validate(&[]).is_err());
        assert!(ex.validate(&[(500.0, 0.0)]).is_err());
    }

    #[test]
    fn fit_is_exposed_for_reporting() {
        let xs = [10.0, 25.0, 50.0, 100.0, 200.0, 300.0];
        let ys: Vec<f64> = xs.iter().map(|&x| trend(x)).collect();
        let ex = Extrapolator::from_measurements(&xs, &ys).unwrap();
        let pivot = ex.fit().pivot().unwrap();
        assert!(pivot.x > 50.0 && pivot.x < 200.0);
    }
}
