//! Line/token-level source model.
//!
//! The lints do not need a full Rust parse: they operate on source text
//! with comments and literal *contents* blanked out (so a string holding
//! `"panic!("` never matches), with two per-line annotations recovered
//! during the blanking pass:
//!
//! * which lines sit inside a `#[cfg(test)]` item (tracked with a brace
//!   counter over the blanked text), and
//! * which escape markers are in force on each line (a marker covers its
//!   own line and the line directly below it).
//!
//! The canonical escape spelling is `// odb-analyzer: allow(<lint>)`,
//! shared by every pass. The pre-registry spelling
//! `// analyzer:allow(<lint>)` is still honoured but recorded as
//! deprecated; the report carries a migration notice for each file that
//! still uses it.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One analyzed line of source.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments and literal contents replaced by spaces;
    /// the delimiting quotes are kept so adjacent tokens do not merge.
    pub code: String,
    /// `true` when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// `analyzer:allow(...)` lint names in force on this line.
    pub allows: Vec<String>,
}

impl Line {
    /// `true` when `lint` is allowed on this line by an escape comment.
    pub fn allows(&self, lint: &str) -> bool {
        self.allows.iter().any(|a| a == lint)
    }
}

/// A parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (slash-separated for display).
    pub rel_path: String,
    /// Analyzed lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// 1-based lines still using the deprecated `analyzer:allow(...)`
    /// escape spelling (the markers are honoured; these feed a notice).
    pub legacy_allow_lines: Vec<usize>,
}

impl SourceFile {
    /// Parses `text` into blanked, annotated lines.
    pub fn parse(rel_path: String, text: &str) -> SourceFile {
        let (blanked, comments) = blank_non_code(text);
        let mut allow_by_line: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut legacy_allow_lines = Vec::new();
        for (line_idx, comment) in comments {
            for (name, legacy) in allow_markers(&comment) {
                if legacy {
                    legacy_allow_lines.push(line_idx + 1);
                }
                // A marker covers its own line and the next one, so a
                // comment line directly above the offending code works.
                allow_by_line.entry(line_idx).or_default().push(name.clone());
                allow_by_line.entry(line_idx + 1).or_default().push(name);
            }
        }
        legacy_allow_lines.dedup();
        let code_lines: Vec<&str> = blanked.split('\n').collect();
        let in_test = mark_cfg_test(&code_lines);
        let lines = code_lines
            .iter()
            .enumerate()
            .map(|(i, code)| Line {
                code: (*code).to_owned(),
                in_test: in_test[i],
                allows: allow_by_line.remove(&i).unwrap_or_default(),
            })
            .collect();
        SourceFile {
            rel_path,
            lines,
            legacy_allow_lines,
        }
    }

    /// Loads and parses the file at `abs`, reporting `rel_path` in output.
    pub fn load(abs: &Path, rel_path: String) -> Result<SourceFile, String> {
        let text = fs::read_to_string(abs)
            .map_err(|e| format!("reading {}: {e}", abs.display()))?;
        Ok(SourceFile::parse(rel_path, &text))
    }

    /// External `mod name;` declarations in non-test code, with the line
    /// they appear on. Inline `mod name { … }` bodies live in this file
    /// and need no resolution.
    pub fn external_mods(&self) -> Vec<(usize, String)> {
        let mut found = Vec::new();
        for (i, line) in self.lines.iter().enumerate() {
            let code = &line.code;
            let bytes = code.as_bytes();
            let mut search_from = 0;
            while let Some(pos) = code[search_from..].find("mod") {
                let at = search_from + pos;
                search_from = at + 3;
                // Word boundaries: reject `mod` inside a longer identifier.
                let before_ok = at == 0
                    || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
                let after = &code[at + 3..];
                if !before_ok || !after.starts_with(|c: char| c.is_whitespace()) {
                    continue;
                }
                let rest = after.trim_start();
                let ident: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if ident.is_empty() {
                    continue;
                }
                let tail = rest[ident.len()..].trim_start();
                if tail.starts_with(';') {
                    found.push((i, ident));
                }
            }
        }
        found
    }
}

/// One crate directory under `crates/`.
#[derive(Debug)]
pub struct CrateModel {
    /// Directory name under `crates/` (e.g. `engine`, not `odb-engine`).
    pub name: String,
    /// Parsed files under `src/`, sorted by path for determinism.
    pub src_files: Vec<SourceFile>,
    /// Relative paths of all `.rs` files under `src/` (orphan detection).
    pub src_rs_paths: Vec<String>,
}

/// The whole workspace as the lints see it.
#[derive(Debug)]
pub struct WorkspaceModel {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Crates under `crates/`, sorted by name.
    pub crates: Vec<CrateModel>,
    /// Every file path (relative) in the repository outside `.git`/`target`.
    pub all_files: Vec<String>,
}

impl WorkspaceModel {
    /// Walks `root` and parses every crate's `src/` tree.
    ///
    /// # Errors
    ///
    /// Errors when `root/crates` cannot be enumerated; unreadable
    /// individual files error too (a gate must not silently skip input).
    pub fn load(root: &Path) -> Result<WorkspaceModel, String> {
        let crates_dir = root.join("crates");
        let mut crates = Vec::new();
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = dir.join("src");
            let mut src_files = Vec::new();
            let mut src_rs_paths = Vec::new();
            if src.is_dir() {
                let mut rs_files = Vec::new();
                walk_files(&src, &mut rs_files)?;
                rs_files.sort();
                for abs in rs_files {
                    let rel = rel_to(root, &abs);
                    if abs.extension().is_some_and(|e| e == "rs") {
                        src_rs_paths.push(rel.clone());
                        src_files.push(SourceFile::load(&abs, rel)?);
                    }
                }
            }
            crates.push(CrateModel {
                name,
                src_files,
                src_rs_paths,
            });
        }
        let mut all_files = Vec::new();
        let mut abs_all = Vec::new();
        walk_files_pruned(root, &mut abs_all)?;
        abs_all.sort();
        for abs in abs_all {
            all_files.push(rel_to(root, &abs));
        }
        Ok(WorkspaceModel {
            root: root.to_path_buf(),
            crates,
            all_files,
        })
    }

    /// The crate with directory name `name`, if present.
    pub fn get(&self, name: &str) -> Option<&CrateModel> {
        self.crates.iter().find(|c| c.name == name)
    }
}

fn rel_to(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects files under `dir`.
fn walk_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk_files(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Like [`walk_files`] but skips VCS and build-output directories.
fn walk_files_pruned(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" || name == ".claude" {
                continue;
            }
            walk_files_pruned(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts every escape marker from a comment as `(name, legacy)`
/// pairs. The canonical spelling is `odb-analyzer: allow(<name>)`
/// (the space after the colon is optional); the deprecated pre-registry
/// spelling `analyzer:allow(<name>)` still works and is reported as
/// `legacy = true`.
fn allow_markers(comment: &str) -> Vec<(String, bool)> {
    let mut names = Vec::new();
    let mut from = 0;
    const KEY: &str = "allow(";
    while let Some(pos) = comment[from..].find(KEY) {
        let at = from + pos;
        from = at + KEY.len();
        // What sits before `allow(` decides whether this is a marker at
        // all, and which spelling it uses.
        let head = comment[..at].trim_end();
        let Some(prefix) = head.strip_suffix("analyzer:") else {
            continue;
        };
        let legacy = !prefix.ends_with("odb-");
        let start = at + KEY.len();
        if let Some(end) = comment[start..].find(')') {
            let name = comment[start..start + end].trim();
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                names.push((name.to_owned(), legacy));
            }
        }
    }
    names
}

/// Replaces comment text and string/char literal contents with spaces,
/// returning the blanked text plus `(line_index, comment_text)` pairs for
/// marker extraction. Newlines are preserved so line numbers survive.
fn blank_non_code(text: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut line = 0usize;
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let flush = |comments: &mut Vec<(usize, String)>, cur: &mut String, line: usize| {
        if !cur.is_empty() {
            comments.push((line, std::mem::take(cur)));
        }
    };
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // r"…", r#"…"#, br#"…"# etc.: skip prefix up to the
                    // opening quote, counting hashes.
                    let mut j = i;
                    while chars.get(j) == Some(&'b') || chars.get(j) == Some(&'r') {
                        out.push(chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        out.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    out.push('"');
                    i = j + 1;
                    state = State::RawStr(hashes);
                }
                '\'' => {
                    // Char literal or lifetime. An escape, or a closing
                    // quote within two characters, means char literal.
                    if next == Some('\\') {
                        out.push_str("' '");
                        let mut j = i + 2;
                        // Skip the escape body to the closing quote.
                        while j < chars.len() && chars[j] != '\'' {
                            if chars[j] == '\n' {
                                break;
                            }
                            j += 1;
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime: emit as-is.
                        out.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    flush(&mut comments, &mut cur_comment, line);
                    out.push('\n');
                    line += 1;
                    state = State::Code;
                } else {
                    cur_comment.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush(&mut comments, &mut cur_comment, line);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '\n' {
                    flush(&mut comments, &mut cur_comment, line);
                    out.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    cur_comment.push(c);
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    if chars.get(i - 1) == Some(&'\n') {
                        // Escaped newline inside a string literal.
                        out.pop();
                        out.pop();
                        out.push_str(" \n");
                        line += 1;
                    }
                } else if c == '"' {
                    out.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
        }
    }
    flush(&mut comments, &mut cur_comment, line);
    (out, comments)
}

/// `true` when `chars[i..]` starts a raw (byte) string literal and the
/// preceding character does not glue it into a longer identifier.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_ascii_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `true` when the quote at `chars[i]` is followed by `hashes` hashes.
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks which lines are inside a `#[cfg(test)]` item by walking braces
/// over the blanked code.
///
/// Limitation (documented in the README): a `#[cfg(test)] mod name;`
/// pointing at a separate file does not mark that file as test code; the
/// workspace keeps its tests inline, and the convention is enforced by
/// this very tool staying useful.
fn mark_cfg_test(code_lines: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the innermost #[cfg(test)] item opened, if any.
    let mut test_open_depth: Option<i64> = None;
    let mut pending_attr = false;
    for (i, raw) in code_lines.iter().enumerate() {
        if test_open_depth.is_some() {
            out[i] = true;
        }
        if test_open_depth.is_none()
            && (raw.contains("#[cfg(test)]") || raw.contains("#[cfg(any(test"))
        {
            pending_attr = true;
            out[i] = true;
        }
        for c in raw.chars() {
            match c {
                '{' => {
                    if pending_attr && test_open_depth.is_none() {
                        test_open_depth = Some(depth);
                        pending_attr = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_open_depth == Some(depth) {
                        // The closing line (possibly also the opening one,
                        // for a single-line body) is still test code.
                        test_open_depth = None;
                        out[i] = true;
                    }
                }
                // `#[cfg(test)] use …;` or `mod t;` without a body.
                ';' if pending_attr && test_open_depth.is_none() => {
                    pending_attr = false;
                    out[i] = true;
                }
                _ => {}
            }
        }
        // Mark the line that *opened* the block (e.g. `mod tests {`) and
        // any line still waiting between attribute and body.
        if test_open_depth.is_some() || pending_attr {
            out[i] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("test.rs".to_owned(), text)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = parse("let x = \"unwrap()\"; // call unwrap()\nx.unwrap();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let x = \""));
        assert!(f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = parse("a /* x /* y */ panic!( */ b\n/* panic!(\nstill */ c\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.trim_end().ends_with('b'));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[2].code.contains('c'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = parse("let s = r#\"panic!(\"inner\")\"#; s.expect(\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains(".expect("));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = parse("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n");
        // The double-quote char literal must not open a string state that
        // swallows the rest of the file.
        assert!(f.lines[0].code.contains("let d ="));
        assert!(f.lines[0].code.contains("'a"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let text = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn lib2() {}
";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test mod");
    }

    #[test]
    fn cfg_test_without_body_does_not_leak() {
        let f = parse("#[cfg(test)]\nuse helper::*;\nfn lib() {}\n");
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn allow_markers_cover_their_line_and_the_next() {
        let text = "\
// odb-analyzer: allow(panic)
a.unwrap();
b.unwrap(); // odb-analyzer: allow(panic)
c.unwrap();
";
        let f = parse(text);
        assert!(f.lines[0].allows("panic"));
        assert!(f.lines[1].allows("panic"), "line under the comment");
        assert!(f.lines[2].allows("panic"), "trailing comment");
        // Line 3 is covered by the marker on line 2 (trailing markers
        // deliberately spill one line down; harmless in practice).
        assert!(!f.lines[3].allows("raw_time"));
        assert!(f.legacy_allow_lines.is_empty(), "canonical spelling");
    }

    #[test]
    fn legacy_allow_spelling_still_works_but_is_recorded() {
        let text = "\
// analyzer:allow(panic)
a.unwrap();
// odb-analyzer:allow(raw_time)
t();
";
        let f = parse(text);
        assert!(f.lines[0].allows("panic"));
        assert!(f.lines[1].allows("panic"), "legacy marker still honoured");
        assert!(f.lines[3].allows("raw_time"), "spaceless canonical form");
        assert_eq!(f.legacy_allow_lines, vec![1], "only the legacy site");
    }

    #[test]
    fn external_mod_declarations_are_found() {
        let f = parse("pub mod queue;\nmod time;\nmod inline { }\n// mod ghost;\n");
        let mods: Vec<String> = f.external_mods().into_iter().map(|(_, m)| m).collect();
        assert_eq!(mods, vec!["queue".to_owned(), "time".to_owned()]);
    }

    #[test]
    fn string_escapes_do_not_desync_lines() {
        let f = parse("let s = \"a\\\"b\\\\\"; let t = 1;\nnext();\n");
        assert!(f.lines[0].code.contains("let t = 1;"));
        assert!(f.lines[1].code.contains("next();"));
    }
}
