//! Structured synthetic trace generation and the multi-processor
//! characterization runner.
//!
//! The paper measures miss rates on live hardware; we regenerate them by
//! *sampled, execution-driven simulation*: a synthetic instruction/data
//! reference stream whose structure mirrors the ODB workload's —
//!
//! * a large, skewed **code** footprint (Oracle's instruction working set
//!   famously exceeds first-level instruction stores);
//! * per-process **stack/private** data with high locality;
//! * shared **SGA metadata** (latches, state objects) with a write
//!   fraction, the main source of coherence traffic;
//! * **buffer-header** arrays whose footprint grows with the database
//!   size until the buffer cache is exhausted;
//! * **database page data** supplied by the engine through
//!   [`DbRefSource`] — this is where warehouse-count dependence enters:
//!   the per-transaction page population grows with `W`, so
//!   inter-transaction reuse distance grows with `W` and the L3 MPI
//!   saturates past the point where the hot set exceeds L3 capacity;
//! * an interleaved **OS** stream whose share grows with I/O activity.
//!
//! Processes are rotated per the engine's context-switch-rate estimate, so
//! switch-induced cache pollution emerges naturally; the coherence
//! [`Directory`] connects the per-processor hierarchies.

use crate::coherence::Directory;
use crate::dist::Zipf;
use crate::hierarchy::{CpuHierarchy, HierarchyCounts, RefOutcome, Space};
use crate::rates::{EventRates, SpaceRates};
use odb_core::config::SystemConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One database-data reference, as an offset into the shared buffer-cache
/// data region plus a write flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbRef {
    /// Byte offset within the database data region.
    pub offset: u64,
    /// `true` when the reference modifies the line.
    pub write: bool,
}

/// Supplies the database-data reference stream for one process.
///
/// The engine implements this with its transaction profiles (which tables
/// and pages each transaction type touches); tests can use
/// [`UniformDbSource`].
pub trait DbRefSource {
    /// Produces the next reference. Called once per sampled DB data
    /// reference; implementations advance their own transaction state.
    fn next_ref(&mut self, rng: &mut SmallRng) -> DbRef;
}

/// A synthetic source with page-level locality: picks pages uniformly
/// over a footprint, then emits several line references within each page
/// (as reading a row through a block does) before moving on.
#[derive(Debug, Clone)]
pub struct UniformDbSource {
    footprint_pages: u64,
    write_frac: f64,
    refs_per_page: u32,
    page_base: u64,
    left: u32,
}

/// Database block size used by the synthetic sources (8 KB, Oracle-like).
pub const DB_PAGE_BYTES: u64 = 8 << 10;

impl UniformDbSource {
    /// Uniform page selection over `footprint_bytes`, writing with
    /// probability `write_frac`, eight line references per page visit.
    pub fn new(footprint_bytes: u64, write_frac: f64) -> Self {
        Self {
            footprint_pages: (footprint_bytes / DB_PAGE_BYTES).max(1),
            write_frac,
            refs_per_page: 8,
            page_base: 0,
            left: 0,
        }
    }
}

impl DbRefSource for UniformDbSource {
    fn next_ref(&mut self, rng: &mut SmallRng) -> DbRef {
        if self.left == 0 {
            self.page_base = rng.gen_range(0..self.footprint_pages) * DB_PAGE_BYTES;
            self.left = self.refs_per_page;
        }
        self.left -= 1;
        DbRef {
            offset: self.page_base + rng.gen_range(0..DB_PAGE_BYTES / 64) * 64,
            write: rng.gen_bool(self.write_frac),
        }
    }
}

/// Fractions of user-space data references going to each stream; must sum
/// to 1 (validated by [`TraceParams::validate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataMix {
    /// Process-private stack and heap.
    pub stack: f64,
    /// Shared SGA metadata (latches, library cache, state objects).
    pub metadata: f64,
    /// Buffer-header array entries.
    pub buffer_header: f64,
    /// Database page data (via [`DbRefSource`]).
    pub db: f64,
}

/// Everything the trace generator needs to know about the workload's
/// memory behaviour. Constructed by the engine per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParams {
    /// Hot user (database) code footprint in bytes.
    pub user_code_bytes: u64,
    /// Hot OS code footprint in bytes.
    pub os_code_bytes: u64,
    /// Per-instruction probability of a taken branch to a fresh code block.
    pub code_jump_prob: f64,
    /// Zipf exponent over code blocks (higher = tighter loops).
    pub code_zipf_s: f64,
    /// Data references per instruction.
    pub data_refs_per_instr: f64,
    /// Private stack/heap footprint per process, bytes.
    pub stack_bytes: u64,
    /// Write fraction for stack references.
    pub stack_write_frac: f64,
    /// Shared metadata footprint, bytes.
    pub metadata_bytes: u64,
    /// Write fraction for metadata references (drives coherence traffic).
    pub metadata_write_frac: f64,
    /// Write fraction for buffer-header references. Header mutations
    /// (touch counts, pin state) are rare relative to reads, and every
    /// one is a potential cross-processor invalidation.
    pub buffer_header_write_frac: f64,
    /// Buffer-header array footprint, bytes (64 B per cached page; grows
    /// with `W` until the buffer cache is full).
    pub buffer_header_bytes: u64,
    /// User-space data reference mix.
    pub mix: DataMix,
    /// Kernel data footprint, bytes.
    pub os_data_bytes: u64,
    /// Write fraction for kernel data references.
    pub os_write_frac: f64,
    /// Fraction of all instructions executed in OS space.
    pub os_fraction: f64,
    /// Length of one OS burst (syscall/interrupt path), instructions.
    pub os_burst_len: u64,
    /// Instructions between context switches on one CPU.
    pub instrs_per_context_switch: u64,
    /// Concurrent processes multiplexed on each CPU.
    pub processes_per_cpu: usize,
    /// Database write fraction forwarded to coherence accounting.
    pub db_write_frac: f64,
    /// Mean consecutive references to one sampled stack location (real
    /// streams dwell: a spilled register is reloaded, a local is reused).
    pub stack_dwell: u32,
    /// Mean dwell on a metadata location.
    pub metadata_dwell: u32,
    /// Mean dwell on a buffer-header entry.
    pub buffer_header_dwell: u32,
    /// Mean dwell on a database data line (column accesses within a row).
    pub db_dwell: u32,
    /// Mean dwell on a kernel data location.
    pub os_dwell: u32,
    /// Fraction of kernel data references that hit per-CPU structures
    /// (run queues, per-CPU slabs) rather than shared kernel state.
    pub os_percpu_frac: f64,
    /// Branch mispredictions per user instruction (flat across `W`, §5.1.1).
    pub user_branch_mispred: f64,
    /// Branch mispredictions per OS instruction.
    pub os_branch_mispred: f64,
    /// Residual user stall CPI (the "Other" component's floor).
    pub user_other_stall_cpi: f64,
    /// Residual OS stall CPI.
    pub os_other_stall_cpi: f64,
}

impl Default for TraceParams {
    /// Defaults tuned for the ODB-on-Xeon workload; the engine overrides
    /// the configuration-dependent fields (`buffer_header_bytes`,
    /// `os_fraction`, `instrs_per_context_switch`, `processes_per_cpu`).
    fn default() -> Self {
        Self {
            user_code_bytes: 1536 << 10,
            os_code_bytes: 256 << 10,
            code_jump_prob: 1.0 / 14.0,
            code_zipf_s: 1.5,
            data_refs_per_instr: 0.35,
            stack_bytes: 48 << 10,
            stack_write_frac: 0.3,
            metadata_bytes: 512 << 10,
            metadata_write_frac: 0.0015,
            buffer_header_write_frac: 0.002,
            buffer_header_bytes: 2 << 20,
            mix: DataMix {
                stack: 0.62,
                metadata: 0.10,
                buffer_header: 0.04,
                db: 0.24,
            },
            os_data_bytes: 128 << 10,
            os_write_frac: 0.08,
            os_fraction: 0.12,
            os_burst_len: 1_200,
            instrs_per_context_switch: 150_000,
            processes_per_cpu: 4,
            db_write_frac: 0.18,
            stack_dwell: 10,
            metadata_dwell: 6,
            buffer_header_dwell: 3,
            db_dwell: 8,
            os_dwell: 8,
            os_percpu_frac: 0.8,
            user_branch_mispred: 0.0040,
            os_branch_mispred: 0.0050,
            user_other_stall_cpi: 0.30,
            os_other_stall_cpi: 0.20,
        }
    }
}

impl TraceParams {
    /// Validates ranges and that the data mix sums to one.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] naming the bad field.
    pub fn validate(&self) -> Result<(), odb_core::Error> {
        let mix_sum = self.mix.stack + self.mix.metadata + self.mix.buffer_header + self.mix.db;
        if (mix_sum - 1.0).abs() > 1e-6 {
            return Err(odb_core::Error::InvalidConfig {
                field: "mix",
                reason: format!("data mix sums to {mix_sum}, expected 1.0"),
            });
        }
        for (field, v) in [
            ("code_jump_prob", self.code_jump_prob),
            ("data_refs_per_instr", self.data_refs_per_instr),
            ("os_fraction", self.os_fraction),
            ("metadata_write_frac", self.metadata_write_frac),
            ("buffer_header_write_frac", self.buffer_header_write_frac),
            ("stack_write_frac", self.stack_write_frac),
            ("os_write_frac", self.os_write_frac),
            ("db_write_frac", self.db_write_frac),
            ("os_percpu_frac", self.os_percpu_frac),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(odb_core::Error::InvalidConfig {
                    field,
                    reason: format!("{v} must lie in [0, 1]"),
                });
            }
        }
        if self.processes_per_cpu == 0 {
            return Err(odb_core::Error::InvalidConfig {
                field: "processes_per_cpu",
                reason: "must be nonzero".to_owned(),
            });
        }
        if self.instrs_per_context_switch == 0 {
            return Err(odb_core::Error::InvalidConfig {
                field: "instrs_per_context_switch",
                reason: "must be nonzero".to_owned(),
            });
        }
        for (field, v) in [
            ("stack_dwell", self.stack_dwell),
            ("metadata_dwell", self.metadata_dwell),
            ("buffer_header_dwell", self.buffer_header_dwell),
            ("db_dwell", self.db_dwell),
            ("os_dwell", self.os_dwell),
        ] {
            if v == 0 {
                return Err(odb_core::Error::InvalidConfig {
                    field,
                    reason: "dwell must be at least 1".to_owned(),
                });
            }
        }
        Ok(())
    }
}

// Region base addresses, spread across a 48-bit space so regions never
// collide; the odd low bits de-align region starts across cache sets.
const USER_CODE_BASE: u64 = 0x0000_4000_0000;
const OS_CODE_BASE: u64 = 0x0100_4A00_0000;
const METADATA_BASE: u64 = 0x0200_5340_0000;
const BUFHDR_BASE: u64 = 0x0300_60C0_0000;
const OS_DATA_BASE: u64 = 0x0400_7500_0000;
const OS_PERCPU_BASE: u64 = 0x0480_1180_0000;
const OS_PERCPU_STRIDE: u64 = 1 << 21;
const STACK_BASE: u64 = 0x0500_0000_0000;
const STACK_STRIDE: u64 = 1 << 21;
const DB_BASE: u64 = 0x1000_0000_0000;

/// Code blocks are 256 B: a handful of basic blocks.
const CODE_BLOCK: u64 = 256;
/// Cache-line granularity of data sampling.
const LINE: u64 = 64;

/// Aggregate result of one characterization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Per-instruction event rates for each space (the engine's input).
    pub rates: EventRates,
    /// Raw user-space counts summed over all processors.
    pub user_counts: HierarchyCounts,
    /// Raw OS-space counts summed over all processors.
    pub os_counts: HierarchyCounts,
    /// Coherence invalidations broadcast during measurement.
    pub coherence_invalidations: u64,
    /// Instructions simulated during measurement (all CPUs, both spaces).
    pub instructions: u64,
}

impl Characterization {
    /// Overall L3 misses per instruction across both spaces.
    pub fn mpi(&self) -> f64 {
        let instr = self.user_counts.instructions + self.os_counts.instructions;
        if instr == 0 {
            return 0.0;
        }
        (self.user_counts.l3_misses + self.os_counts.l3_misses) as f64 / instr as f64
    }

    /// Fraction of L3 misses that were coherence misses (the paper finds
    /// this negligible on its machine).
    pub fn coherence_miss_fraction(&self) -> f64 {
        let misses = self.user_counts.l3_misses + self.os_counts.l3_misses;
        if misses == 0 {
            return 0.0;
        }
        (self.user_counts.l3_coherence_misses + self.os_counts.l3_coherence_misses) as f64
            / misses as f64
    }
}

/// An in-progress dwell on one data line: the stream re-references the
/// same line `left` more times before sampling a fresh location.
#[derive(Debug, Clone, Copy, Default)]
struct DataRun {
    line_base: u64,
    left: u32,
    write_frac: f64,
}

/// Per-process stream state.
struct ProcessState<S> {
    /// Global process id (determines its private stack region).
    pid: usize,
    user_code_cursor: u64,
    db_source: S,
    run: DataRun,
}

/// Per-CPU interleaving state.
struct CpuState {
    current: usize,
    until_switch: u64,
    os_remaining: u64,
    user_since_burst: u64,
    os_code_cursor: u64,
    os_run: DataRun,
    rng: SmallRng,
}

/// Draws a dwell length with the given mean: uniform over
/// `1..=2×mean − 1`, cheap and mean-exact.
fn draw_dwell(rng: &mut SmallRng, mean: u32) -> u32 {
    if mean <= 1 {
        1
    } else {
        rng.gen_range(1..=2 * mean - 1)
    }
}

/// Continues a dwell (same line, fresh offset) or reports exhaustion.
fn continue_run(run: &mut DataRun, rng: &mut SmallRng) -> Option<(u64, bool)> {
    if run.left == 0 {
        return None;
    }
    run.left -= 1;
    let offset = rng.gen_range(0..8u64) * 8;
    Some((run.line_base + offset, rng.gen_bool(run.write_frac)))
}

/// The multi-processor characterization runner.
///
/// Simulates `P` processor hierarchies round-robin in fine-grained chunks,
/// multiplexing `processes_per_cpu` process streams on each, with a
/// write-invalidate directory between them, and reduces the result to
/// [`EventRates`].
pub struct Characterizer {
    params: TraceParams,
    system: SystemConfig,
    /// Interleaving granularity in instructions.
    chunk: u64,
    /// Instructions of user execution between OS bursts yielding the
    /// configured OS share — `burst_len × (1 − f) / f`, precomputed once
    /// so the per-chunk path does no float work.
    user_between_bursts: u64,
    /// L3 replacement policy (LRU unless exploring §7 schemes).
    l3_policy: crate::policy::ReplacementPolicy,
    /// Last-level-cache organization (private per core, or one shared —
    /// the CMP what-if of the paper's introduction).
    shared_l3: bool,
    /// Next-line L2 prefetching (off on the paper's machine).
    l2_prefetch: bool,
}

impl Characterizer {
    /// Creates a runner for the given machine and workload description.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] when either fails
    /// validation.
    pub fn new(system: SystemConfig, params: TraceParams) -> Result<Self, odb_core::Error> {
        system.validate()?;
        params.validate()?;
        let user_between_bursts = if params.os_fraction > 0.0 && params.os_fraction < 1.0 {
            (params.os_burst_len as f64 * (1.0 - params.os_fraction) / params.os_fraction) as u64
        } else {
            u64::MAX
        };
        Ok(Self {
            params,
            system,
            chunk: 20_000,
            user_between_bursts,
            l3_policy: crate::policy::ReplacementPolicy::Lru,
            shared_l3: false,
            l2_prefetch: false,
        })
    }

    /// Returns a copy using `policy` for every processor's L3.
    #[must_use]
    pub fn with_l3_policy(mut self, policy: crate::policy::ReplacementPolicy) -> Self {
        self.l3_policy = policy;
        self
    }

    /// Returns a copy with next-line L2 prefetching enabled on every
    /// processor.
    #[must_use]
    pub fn with_l2_prefetch(mut self) -> Self {
        self.l2_prefetch = true;
        self
    }

    /// Returns a copy where all processors share one L3 of the system's
    /// configured geometry — a single-die CMP organization. Shared-L3
    /// runs need no inter-cache coherence, so any directory passed to
    /// [`Characterizer::run_with_directory`] is ignored.
    #[must_use]
    pub fn with_shared_l3(mut self) -> Self {
        self.shared_l3 = true;
        self
    }

    /// The workload parameters in use.
    pub fn params(&self) -> &TraceParams {
        &self.params
    }

    /// Runs warm-up then measurement, returning the reduced rates.
    ///
    /// `make_source` is called once per process (`P × processes_per_cpu`
    /// times) with the global process id. `measure_instructions` counts
    /// per CPU; warm-up runs `warmup_instructions` per CPU first, then all
    /// statistics are reset without disturbing cache state.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] if the system
    /// configuration describes an unbuildable cache stack or sampler.
    pub fn run<S, F>(
        &self,
        mut make_source: F,
        seed: u64,
        warmup_instructions: u64,
        measure_instructions: u64,
    ) -> Result<Characterization, odb_core::Error>
    where
        S: DbRefSource,
        F: FnMut(usize) -> S,
    {
        self.run_with_directory(
            &mut Directory::new(),
            &mut make_source,
            seed,
            warmup_instructions,
            measure_instructions,
        )
    }

    /// Like [`Characterizer::run`], but with a caller-supplied directory —
    /// pass [`Directory::disabled`] for the coherence ablation.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] as for
    /// [`Characterizer::run`].
    pub fn run_with_directory<S, F>(
        &self,
        directory: &mut Directory,
        make_source: &mut F,
        seed: u64,
        warmup_instructions: u64,
        measure_instructions: u64,
    ) -> Result<Characterization, odb_core::Error>
    where
        S: DbRefSource,
        F: FnMut(usize) -> S,
    {
        let p = self.system.processors as usize;
        let ppc = self.params.processes_per_cpu;
        let mut hierarchies: Vec<CpuHierarchy> = if self.shared_l3 {
            let l3 = std::rc::Rc::new(std::cell::RefCell::new(
                crate::cache::SetAssocCache::with_policy(self.system.l3, self.l3_policy),
            ));
            (0..p)
                .map(|_| CpuHierarchy::with_shared_l3(&self.system, l3.clone()))
                .collect::<Result<_, _>>()?
        } else {
            (0..p)
                .map(|_| CpuHierarchy::with_l3_policy(&self.system, self.l3_policy))
                .collect::<Result<_, _>>()?
        };
        if self.l2_prefetch {
            for h in &mut hierarchies {
                h.enable_l2_prefetch();
            }
        }
        // A shared physical L3 has nothing to keep coherent at that
        // level; neutralize the directory so invalidations cannot evict
        // the single copy both writers and readers use.
        let mut disabled_dir = Directory::disabled();
        let directory: &mut Directory = if self.shared_l3 {
            &mut disabled_dir
        } else {
            directory
        };
        // One flat, pre-sized table (`ppc` consecutive slots per CPU):
        // the per-chunk path slices into it instead of chasing a nested
        // `Vec<Vec<…>>`.
        let mut processes: Vec<ProcessState<S>> = Vec::with_capacity(p * ppc);
        for pid in 0..p * ppc {
            processes.push(ProcessState {
                pid,
                user_code_cursor: USER_CODE_BASE
                    + (pid as u64 * 4096) % self.params.user_code_bytes.max(4096),
                db_source: make_source(pid),
                run: DataRun::default(),
            });
        }
        let mut cpus: Vec<CpuState> = (0..p)
            .map(|cpu| CpuState {
                current: 0,
                until_switch: self.params.instrs_per_context_switch,
                os_remaining: 0,
                user_since_burst: 0,
                os_code_cursor: OS_CODE_BASE,
                os_run: DataRun::default(),
                rng: SmallRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64
                    .wrapping_mul(cpu as u64 + 1))),
            })
            .collect();

        let samplers = Samplers::new(&self.params)?;
        // Scratch for interleave's per-CPU countdown, allocated once for
        // both phases.
        let mut remaining = vec![0u64; p];

        // Warm-up: identical loop, stats discarded afterwards.
        self.interleave(
            warmup_instructions,
            &mut hierarchies,
            &mut processes,
            &mut cpus,
            directory,
            &samplers,
            &mut remaining,
        );
        for h in &mut hierarchies {
            h.reset_counts();
        }
        let inval_before = directory.invalidations_sent();

        self.interleave(
            measure_instructions,
            &mut hierarchies,
            &mut processes,
            &mut cpus,
            directory,
            &samplers,
            &mut remaining,
        );

        let mut user = HierarchyCounts::default();
        let mut os = HierarchyCounts::default();
        for h in &hierarchies {
            user.accumulate(h.counts(Space::User));
            os.accumulate(h.counts(Space::Os));
        }
        let fallback = SpaceRates {
            tc_miss: 0.0,
            l2_miss: 0.0,
            l3_miss: 0.0,
            l3_coherence_miss: 0.0,
            l3_writeback: 0.0,
            tlb_miss: 0.0,
            branch_mispred: 0.0,
            other_stall_cpi: 0.0,
        };
        let rates = EventRates {
            user: SpaceRates::from_counts(
                &user,
                self.params.user_branch_mispred,
                self.params.user_other_stall_cpi,
            )
            .unwrap_or(fallback),
            os: SpaceRates::from_counts(
                &os,
                self.params.os_branch_mispred,
                self.params.os_other_stall_cpi,
            )
            .unwrap_or(fallback),
        };
        Ok(Characterization {
            rates,
            coherence_invalidations: directory.invalidations_sent() - inval_before,
            instructions: user.instructions + os.instructions,
            user_counts: user,
            os_counts: os,
        })
    }

    /// Runs `instructions` per CPU, interleaved in chunks for coherence
    /// fidelity. `remaining` is caller-owned scratch (one slot per CPU)
    /// so repeated phases reuse one allocation.
    #[allow(clippy::too_many_arguments)]
    fn interleave<S: DbRefSource>(
        &self,
        instructions: u64,
        hierarchies: &mut [CpuHierarchy],
        processes: &mut [ProcessState<S>],
        cpus: &mut [CpuState],
        directory: &mut Directory,
        samplers: &Samplers,
        remaining: &mut [u64],
    ) {
        let ppc = self.params.processes_per_cpu;
        remaining.fill(instructions);
        loop {
            let mut progressed = false;
            for cpu in 0..cpus.len() {
                if remaining[cpu] == 0 {
                    continue;
                }
                let n = remaining[cpu].min(self.chunk);
                remaining[cpu] -= n;
                progressed = true;
                self.run_chunk(
                    cpu,
                    n,
                    hierarchies,
                    &mut processes[cpu * ppc..(cpu + 1) * ppc],
                    &mut cpus[cpu],
                    directory,
                    samplers,
                );
            }
            if !progressed {
                break;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_chunk<S: DbRefSource>(
        &self,
        cpu: usize,
        instructions: u64,
        hierarchies: &mut [CpuHierarchy],
        procs: &mut [ProcessState<S>],
        state: &mut CpuState,
        directory: &mut Directory,
        samplers: &Samplers,
    ) {
        let p = &self.params;
        let user_between_bursts = self.user_between_bursts;

        for _ in 0..instructions {
            // Space selection via burst alternation.
            let space = if state.os_remaining > 0 {
                state.os_remaining -= 1;
                Space::Os
            } else if p.os_fraction >= 1.0 {
                Space::Os
            } else {
                state.user_since_burst += 1;
                if state.user_since_burst >= user_between_bursts {
                    state.user_since_burst = 0;
                    state.os_remaining = p.os_burst_len;
                }
                Space::User
            };

            hierarchies[cpu].retire_instructions(1, space);

            // Instruction fetch.
            let (cursor, code_base, code_bytes) = match space {
                Space::User => (
                    &mut procs[state.current].user_code_cursor,
                    USER_CODE_BASE,
                    p.user_code_bytes,
                ),
                Space::Os => (&mut state.os_code_cursor, OS_CODE_BASE, p.os_code_bytes),
            };
            let old_line = *cursor / LINE;
            if state.rng.gen_bool(p.code_jump_prob) {
                let sampler = match space {
                    Space::User => &samplers.user_code,
                    Space::Os => &samplers.os_code,
                };
                let block = sampler.sample(&mut state.rng);
                *cursor = code_base + block * CODE_BLOCK;
            } else {
                *cursor += 4;
                if *cursor >= code_base + code_bytes {
                    *cursor = code_base;
                }
            }
            let addr = *cursor;
            if addr / LINE != old_line {
                let outcome = hierarchies[cpu].fetch_code(addr, space);
                sync_directory(cpu, outcome, false, hierarchies, directory);
            }

            // Data reference.
            if state.rng.gen_bool(p.data_refs_per_instr) {
                let (addr, write) = match space {
                    Space::User => self.user_data_ref(procs, state, samplers),
                    Space::Os => self.os_data_ref(cpu, state, samplers),
                };
                let outcome = hierarchies[cpu].access_data(addr, write, space);
                sync_directory(cpu, outcome, write, hierarchies, directory);
            }

            // Context switch: rotate to the next process on this CPU.
            state.until_switch -= 1;
            if state.until_switch == 0 {
                state.until_switch = p.instrs_per_context_switch;
                state.current = (state.current + 1) % procs.len();
            }
        }
    }

    /// Samples one user-space data reference for the current process,
    /// continuing any in-progress dwell first.
    fn user_data_ref<S: DbRefSource>(
        &self,
        procs: &mut [ProcessState<S>],
        state: &mut CpuState,
        samplers: &Samplers,
    ) -> (u64, bool) {
        let p = &self.params;
        let proc = &mut procs[state.current];
        if let Some(r) = continue_run(&mut proc.run, &mut state.rng) {
            return r;
        }
        let u: f64 = state.rng.gen();
        let (line, dwell, write_frac) = if u < p.mix.stack {
            let rank = samplers.stack.sample(&mut state.rng);
            (
                STACK_BASE + proc.pid as u64 * STACK_STRIDE + rank * LINE,
                p.stack_dwell,
                p.stack_write_frac,
            )
        } else if u < p.mix.stack + p.mix.metadata {
            let rank = samplers.metadata.sample(&mut state.rng);
            (
                METADATA_BASE + rank * LINE,
                p.metadata_dwell,
                p.metadata_write_frac,
            )
        } else if u < p.mix.stack + p.mix.metadata + p.mix.buffer_header {
            let rank = samplers.buffer_header.sample(&mut state.rng);
            (
                BUFHDR_BASE + rank * LINE,
                p.buffer_header_dwell,
                p.buffer_header_write_frac,
            )
        } else {
            let r = proc.db_source.next_ref(&mut state.rng);
            let addr = DB_BASE + r.offset;
            let write_frac = if r.write { p.db_write_frac.max(0.5) } else { 0.0 };
            (addr & !(LINE - 1), p.db_dwell, write_frac)
        };
        proc.run = DataRun {
            line_base: line & !(LINE - 1),
            left: draw_dwell(&mut state.rng, dwell).saturating_sub(1),
            write_frac,
        };
        (line, state.rng.gen_bool(write_frac))
    }

    /// Samples one kernel data reference on `cpu`.
    fn os_data_ref(&self, cpu: usize, state: &mut CpuState, samplers: &Samplers) -> (u64, bool) {
        let p = &self.params;
        if let Some(r) = continue_run(&mut state.os_run, &mut state.rng) {
            return r;
        }
        let rank = samplers.os_data.sample(&mut state.rng);
        let base = if state.rng.gen_bool(p.os_percpu_frac) {
            OS_PERCPU_BASE + cpu as u64 * OS_PERCPU_STRIDE
        } else {
            OS_DATA_BASE
        };
        let line = base + rank * LINE;
        state.os_run = DataRun {
            line_base: line,
            left: draw_dwell(&mut state.rng, p.os_dwell).saturating_sub(1),
            write_frac: p.os_write_frac,
        };
        (line, state.rng.gen_bool(p.os_write_frac))
    }
}

/// Propagates an access outcome into the coherence directory.
///
/// Invalidation broadcasts go through [`Directory::write_slice`] on the
/// hierarchy slice itself — the previous shape collected a
/// `Vec<&mut CpuHierarchy>` per invalidating write, a per-reference
/// allocation in the hottest loop of the simulator.
#[inline]
fn sync_directory(
    cpu: usize,
    outcome: RefOutcome,
    _write: bool,
    hierarchies: &mut [CpuHierarchy],
    directory: &mut Directory,
) {
    if let Some(fill) = outcome.l3_fill {
        if let Some(e) = fill.evicted {
            directory.record_evict(cpu, e.addr);
        }
        directory.record_fill(cpu, fill.filled);
    }
    if let Some(line) = outcome.wrote_line {
        if directory.has_remote_holders(cpu, line) {
            directory.write_slice(cpu, line, hierarchies);
        }
    }
}

/// Pre-built Zipf samplers over each region's line (or block) ranks.
struct Samplers {
    user_code: Zipf,
    os_code: Zipf,
    stack: Zipf,
    metadata: Zipf,
    buffer_header: Zipf,
    os_data: Zipf,
}

impl Samplers {
    fn new(p: &TraceParams) -> Result<Self, odb_core::Error> {
        let blocks = |bytes: u64, unit: u64| (bytes / unit).max(1);
        Ok(Self {
            user_code: Zipf::new(blocks(p.user_code_bytes, CODE_BLOCK), p.code_zipf_s)?,
            os_code: Zipf::new(blocks(p.os_code_bytes, CODE_BLOCK), p.code_zipf_s)?,
            stack: Zipf::new(blocks(p.stack_bytes, LINE), 1.0)?,
            metadata: Zipf::new(blocks(p.metadata_bytes, LINE), 1.0)?,
            buffer_header: Zipf::new(blocks(p.buffer_header_bytes, LINE), 0.9)?,
            os_data: Zipf::new(blocks(p.os_data_bytes, LINE), 1.1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(p: u32) -> SystemConfig {
        SystemConfig::xeon_quad().with_processors(p)
    }

    fn quick_params() -> TraceParams {
        TraceParams {
            processes_per_cpu: 2,
            instrs_per_context_switch: 30_000,
            ..TraceParams::default()
        }
    }

    fn run(p: u32, db_footprint: u64, seed: u64) -> Characterization {
        let ch = Characterizer::new(small_system(p), quick_params()).unwrap();
        ch.run(
            |_| UniformDbSource::new(db_footprint, 0.18),
            seed,
            600_000,
            400_000,
        )
        .unwrap()
    }

    #[test]
    fn produces_plausible_rates() {
        let c = run(1, 64 << 20, 42);
        assert!(c.instructions >= 400_000);
        let r = c.rates;
        assert!(r.user.l3_miss > 0.0, "some misses occur");
        assert!(r.user.l3_miss < 0.1, "but not absurdly many");
        assert!(r.user.l2_miss >= r.user.l3_miss, "L2 misses feed L3");
        assert!(r.user.tlb_miss > 0.0);
        assert!(r.os.l3_miss > 0.0);
        assert!(c.mpi() > 0.0);
    }

    #[test]
    fn os_fraction_is_respected() {
        let c = run(1, 64 << 20, 7);
        let total = c.instructions as f64;
        let os_frac = c.os_counts.instructions as f64 / total;
        assert!(
            (os_frac - 0.12).abs() < 0.03,
            "requested 0.12, observed {os_frac}"
        );
    }

    #[test]
    fn larger_db_footprint_raises_mpi() {
        // 512 KB of hot pages fit alongside the other streams in L3; a
        // 256 MB population does not.
        let small = run(1, 512 << 10, 9);
        let large = run(1, 256 << 20, 9);
        assert!(
            large.mpi() > small.mpi() * 1.05,
            "small {} vs large {}",
            small.mpi(),
            large.mpi()
        );
    }

    #[test]
    fn mpi_is_roughly_p_independent_and_coherence_is_small() {
        let one = run(1, 256 << 20, 21);
        let four = run(4, 256 << 20, 21);
        let ratio = four.mpi() / one.mpi();
        assert!(
            (0.8..1.25).contains(&ratio),
            "MPI should not scale with P: 1P {} vs 4P {}",
            one.mpi(),
            four.mpi()
        );
        assert!(
            four.coherence_miss_fraction() < 0.08,
            "coherence fraction {}",
            four.coherence_miss_fraction()
        );
        assert!(four.coherence_invalidations > 0, "sharing does occur");
    }

    #[test]
    fn determinism() {
        let a = run(2, 64 << 20, 1234);
        let b = run(2, 64 << 20, 1234);
        assert_eq!(a, b);
        let c = run(2, 64 << 20, 99);
        assert_ne!(a.user_counts, c.user_counts, "different seed differs");
    }

    #[test]
    fn disabled_coherence_ablation_removes_invalidations() {
        let ch = Characterizer::new(small_system(4), quick_params()).unwrap();
        let mut dir = Directory::disabled();
        let mut make = |_pid: usize| UniformDbSource::new(64 << 20, 0.18);
        let c = ch
            .run_with_directory(&mut dir, &mut make, 5, 300_000, 200_000)
            .unwrap();
        assert_eq!(c.coherence_invalidations, 0);
        assert_eq!(c.user_counts.l3_coherence_misses, 0);
    }

    #[test]
    fn validate_rejects_bad_mix_and_ranges() {
        let mut p = TraceParams::default();
        p.mix.db += 0.2;
        assert!(p.validate().is_err());
        let p = TraceParams {
            os_fraction: 1.5,
            ..TraceParams::default()
        };
        assert!(p.validate().is_err());
        let p = TraceParams {
            processes_per_cpu: 0,
            ..TraceParams::default()
        };
        assert!(p.validate().is_err());
        let p = TraceParams {
            instrs_per_context_switch: 0,
            ..TraceParams::default()
        };
        assert!(p.validate().is_err());
        assert!(TraceParams::default().validate().is_ok());
    }

    #[test]
    fn higher_os_share_improves_os_locality() {
        // The paper's Fig 11 mechanism: more time in kernel code means
        // warmer kernel state, so OS MPI falls as the OS share grows.
        let run_with_os = |os_fraction: f64| {
            let params = TraceParams {
                os_fraction,
                ..quick_params()
            };
            let ch = Characterizer::new(small_system(1), params).unwrap();
            ch.run(
                |_| UniformDbSource::new(64 << 20, 0.18),
                31,
                600_000,
                400_000,
            )
            .unwrap()
        };
        let light = run_with_os(0.05);
        let heavy = run_with_os(0.30);
        let light_os_mpi =
            light.os_counts.l3_misses as f64 / light.os_counts.instructions as f64;
        let heavy_os_mpi =
            heavy.os_counts.l3_misses as f64 / heavy.os_counts.instructions as f64;
        assert!(
            heavy_os_mpi < light_os_mpi,
            "OS MPI should fall with OS share: {light_os_mpi:.5} -> {heavy_os_mpi:.5}"
        );
    }

    #[test]
    fn faster_context_switching_pollutes_the_caches() {
        let run_with_cs = |instrs_per_switch: u64| {
            let params = TraceParams {
                instrs_per_context_switch: instrs_per_switch,
                processes_per_cpu: 8,
                ..TraceParams::default()
            };
            let ch = Characterizer::new(small_system(1), params).unwrap();
            ch.run(
                |_| UniformDbSource::new(64 << 20, 0.18),
                13,
                600_000,
                400_000,
            )
            .unwrap()
        };
        let calm = run_with_cs(400_000);
        let frantic = run_with_cs(25_000);
        assert!(
            frantic.mpi() > calm.mpi(),
            "switch-induced pollution must raise MPI: {:.5} vs {:.5}",
            calm.mpi(),
            frantic.mpi()
        );
    }

    #[test]
    fn stream_resistant_l3_policy_lowers_mpi_here_too() {
        let lru = Characterizer::new(small_system(1), quick_params()).unwrap();
        let bip = Characterizer::new(small_system(1), quick_params())
            .unwrap()
            .with_l3_policy(crate::policy::ReplacementPolicy::StreamResistant);
        let run = |ch: &Characterizer| {
            ch.run(
                |_| UniformDbSource::new(256 << 20, 0.18),
                47,
                600_000,
                400_000,
            )
            .unwrap()
        };
        let a = run(&lru);
        let b = run(&bip);
        assert!(
            b.mpi() < a.mpi() * 1.02,
            "stream-resistant should not lose to LRU under streaming DB              traffic: LRU {:.5} vs BIP {:.5}",
            a.mpi(),
            b.mpi()
        );
    }

    #[test]
    fn uniform_source_stays_in_footprint() {
        let mut s = UniformDbSource::new(1 << 20, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut writes = 0;
        for _ in 0..1000 {
            let r = s.next_ref(&mut rng);
            assert!(r.offset < 1 << 20);
            if r.write {
                writes += 1;
            }
        }
        assert!((300..700).contains(&writes), "write frac ~0.5: {writes}");
    }
}
