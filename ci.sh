#!/usr/bin/env bash
# The whole gate in one command: build, tests, invariant-armed tests,
# clippy at -D warnings across every target, the workspace
# static-analysis pass, and the parallel-sweep perf gate.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q --workspace --features invariants
cargo clippy --workspace --all-targets --features invariants -- -D warnings
cargo run -p odb-analyzer

# Machine-readable analyzer report, archived for downstream tooling
# (same run as the gate above, so it cannot disagree with it).
mkdir -p target
cargo run -q -p odb-analyzer -- --json > target/analyzer_report.json

# Lint-catalog drift check: the README's catalog table must list exactly
# the lints the binary registers (`--list-lints` prints the stable id as
# the first token of each line; the README rows carry it as `` `id` ``).
diff <(cargo run -q -p odb-analyzer -- --list-lints | awk '{print $1}' | sort) \
     <(sed -n '/<!-- lint-catalog:begin -->/,/<!-- lint-catalog:end -->/p' README.md \
         | sed -n 's/^| `\([a-z_]*\)`.*/\1/p' | sort) \
  || { echo "ci.sh: README lint catalog drifted from odb-analyzer --list-lints" >&2; exit 1; }

# Burn-down ratchet: the analyzer above enforces "no worse than
# baseline"; this check pins the baseline itself at zero for every
# audited crate and every section ([panic_sites] and [determinism]), so
# a future change cannot quietly re-baseline a panic site or a
# determinism hazard back into the simulation core.
if grep -Eq '^[a-z_]+ *= *[1-9]' crates/analyzer/baseline.toml; then
  echo "ci.sh: nonzero baseline entry in crates/analyzer/baseline.toml:" >&2
  grep -E '^[a-z_]+ *= *[1-9]' crates/analyzer/baseline.toml >&2
  exit 1
fi

# Parallel-sweep smoke + perf gate: runs the quick 27-point sweep at
# jobs=1 and jobs=4 and asserts the two are byte-identical (the
# determinism contract of odb-experiments::runner) — that part runs
# everywhere. Perf is gated host-relatively: on hosts with >= 4 cores
# the jobs=4 sweep must be at least 1.5x faster than jobs=1, a ratio
# computed within this run, so it holds on any machine. The absolute
# wall-clock ratchet against the checked-in results/BENCH_sweep.json
# (recorded on a 1-core container; 25% tolerance) is only meaningful on
# the machine that recorded the baseline, so it is opt-in via
# ODB_BENCH_GATE=1.
BENCH_ARGS=(--quick-only --jobs 4 --out target/BENCH_sweep.json)
if [ "$(nproc)" -ge 4 ]; then
  BENCH_ARGS+=(--min-speedup 1.5)
else
  echo "ci.sh: WARNING: only $(nproc) core(s) — the parallel-sweep speedup is" >&2
  echo "ci.sh: WARNING: UNVERIFIED on this host (byte-identity still checked);" >&2
  echo "ci.sh: WARNING: the bench stamps \"parallel_unverified\" on 1-core output." >&2
fi
if [ "${ODB_BENCH_GATE:-0}" = "1" ]; then
  BENCH_ARGS+=(--baseline results/BENCH_sweep.json --max-regress 0.25)
fi
cargo bench -p odb-bench --bench sweep -- "${BENCH_ARGS[@]}"

# Artifact drift gate: every checked-in table/figure under results/
# must be exactly what the current code produces — the README's
# "regenerates bit-for-bit" claim, enforced. Replaying the archived
# sweep (ODB_REPLAY_SWEEP) skips the expensive 27-point re-simulation;
# the standalone artifacts (fig19, ablations, variance) re-simulate at
# full fidelity, which is what makes this worth its ~2 min.
# BENCH_sweep.json is per-machine timing, not a simulation artifact, so
# it is excluded. ODB_SKIP_DRIFT_GATE=1 skips for fast local iteration.
if [ "${ODB_SKIP_DRIFT_GATE:-0}" != "1" ]; then
  rm -rf target/results-replay
  mkdir -p target/results-replay
  ODB_REPLAY_SWEEP=results/sweep.csv \
    cargo run --release -p odb-experiments -- all --out target/results-replay \
    > /dev/null
  cp results/sweep.csv target/results-replay/sweep.csv
  diff -r -x BENCH_sweep.json results target/results-replay
fi
