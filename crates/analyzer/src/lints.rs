//! The six lint passes.
//!
//! Each pass pushes [`Violation`]s into a shared vector; the panic pass
//! additionally returns per-crate site counts for the baseline ratchet.

use crate::report::{Lint, Violation};
use crate::source::{CrateModel, SourceFile, WorkspaceModel};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Crates whose library code must not panic (the simulation core).
pub const PANIC_AUDITED: &[&str] = &["core", "des", "engine", "memsim"];

/// Crates whose `.acquire(` call sites must order lock targets.
pub const LOCK_AUDITED: &[&str] = &["engine"];

/// The one file allowed to do floating-point simulated-time arithmetic.
pub const TIME_HOME: &str = "crates/des/src/time.rs";

/// Tokens that panic at runtime and are forbidden in library code.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Forbids `unwrap()`/`expect()`/`panic!`-family calls in non-test code
/// of the audited crates, honouring `// analyzer:allow(panic)`.
///
/// Returns `(crate, counted_sites)` per audited crate; the caller holds
/// the counts against the checked-in baseline. Individual sites are *not*
/// violations by themselves — growth beyond the baseline is.
pub fn panic_sites(
    model: &WorkspaceModel,
    violations: &mut Vec<Violation>,
) -> Vec<(String, usize)> {
    let _ = &mut *violations; // sites become violations via the baseline
    let mut counts = Vec::new();
    for name in PANIC_AUDITED {
        let mut count = 0;
        if let Some(krate) = model.get(name) {
            for file in &krate.src_files {
                count += file_panic_sites(file).len();
            }
        }
        counts.push(((*name).to_owned(), count));
    }
    counts
}

/// `(line_number, token)` for every counted panic site in `file`.
pub fn file_panic_sites(file: &SourceFile) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows("panic") {
            continue;
        }
        for token in PANIC_TOKENS {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(token) {
                from += pos + token.len();
                sites.push((i + 1, *token));
            }
        }
    }
    sites
}

/// Lists every counted (non-allowed, non-test) panic site of a crate, for
/// `--verbose` output and for baseline-overflow diagnostics.
pub fn describe_panic_sites(krate: &CrateModel) -> Vec<String> {
    let mut out = Vec::new();
    for file in &krate.src_files {
        for (line, token) in file_panic_sites(file) {
            out.push(format!("{}:{line}: {token}", file.rel_path));
        }
    }
    out
}

/// Requires every `.acquire(` call site in the audited crates to live in
/// a file that sorts its lock targets with `canonical_order` on an
/// earlier line (the deadlock-freedom discipline), or to carry an
/// explicit `// analyzer:allow(lock_order)` escape.
pub fn lock_order(model: &WorkspaceModel, violations: &mut Vec<Violation>) {
    for name in LOCK_AUDITED {
        let Some(krate) = model.get(name) else { continue };
        for file in &krate.src_files {
            // The defining module's own API (`pub fn acquire`) is not a
            // call site; `.acquire(` is.
            let mut sort_seen_at: Option<usize> = None;
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                if sort_seen_at.is_none()
                    && (line.code.contains("sort_by_key(canonical_order)")
                        || line.code.contains("sort_unstable_by_key(canonical_order)"))
                {
                    sort_seen_at = Some(i);
                }
                if line.code.contains(".acquire(") && !line.allows("lock_order") {
                    let sorted_before = sort_seen_at.is_some_and(|s| s < i);
                    if !sorted_before {
                        violations.push(Violation::new(
                            Lint::LockOrder,
                            &file.rel_path,
                            i + 1,
                            "`.acquire(` call site without a preceding \
                             `sort_by_key(canonical_order)` in this file; acquire lock \
                             targets in canonical order (or annotate with \
                             `// analyzer:allow(lock_order)` and justify)"
                                .to_owned(),
                        ));
                    }
                }
            }
        }
    }
}

/// Confines floating-point simulated-time construction to
/// `crates/des/src/time.rs`.
///
/// Two patterns are flagged outside that file (non-test code only):
///
/// * `from_secs_f64(` — raw float-seconds construction; use the clamping
///   helpers (`from_nanos_f64`, `from_millis_f64`, `SimTime::mul_f64`)
///   whose rounding contracts live in `time.rs`;
/// * a `from_nanos(`/`from_micros(`/`from_millis(`/`from_secs(` call with
///   an `as u64` cast on the same line — an ad-hoc float→time cast that
///   silently truncates and has no NaN story.
pub fn raw_time(model: &WorkspaceModel, violations: &mut Vec<Violation>) {
    const CONSTRUCTORS: &[&str] = &[
        "from_nanos(",
        "from_micros(",
        "from_millis(",
        "from_secs(",
    ];
    for krate in &model.crates {
        for file in &krate.src_files {
            if file.rel_path == TIME_HOME {
                continue;
            }
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test || line.allows("raw_time") {
                    continue;
                }
                if line.code.contains("from_secs_f64(") {
                    violations.push(Violation::new(
                        Lint::RawTime,
                        &file.rel_path,
                        i + 1,
                        "floating-point SimTime construction outside des/src/time.rs; \
                         use from_nanos_f64/from_millis_f64/mul_f64 (or annotate with \
                         `// analyzer:allow(raw_time)`)"
                            .to_owned(),
                    ));
                }
                if line.code.contains("as u64")
                    && CONSTRUCTORS.iter().any(|c| line.code.contains(c))
                {
                    violations.push(Violation::new(
                        Lint::RawTime,
                        &file.rel_path,
                        i + 1,
                        "float→SimTime cast (`… as u64` inside a time constructor); \
                         use SimTime::from_nanos_f64, which owns the truncation \
                         contract"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

/// Crates whose observer-hub emissions are audited: hook calls must not
/// hide inside `#[cfg(feature = …)]` blocks.
pub const OBSERVER_AUDITED: &[&str] = &["des", "engine", "iosim", "ossim"];

/// Observer-hub emission call tokens.
const EMIT_TOKENS: &[&str] = &[".emit(", ".emit_with("];

/// Keeps the observer seam unconditional: an `.emit(`/`.emit_with(` call
/// inside a `#[cfg(feature = …)]` block means the event stream differs by
/// build flavour, so an observer registered in one flavour silently sees
/// fewer events in another. Consumers may be feature-gated (registration
/// is cheap and invisible when absent); the *emissions* may not. Escape:
/// `// analyzer:allow(observer_seam)` with a justification.
pub fn observer_seam(model: &WorkspaceModel, violations: &mut Vec<Violation>) {
    for name in OBSERVER_AUDITED {
        let Some(krate) = model.get(name) else { continue };
        for file in &krate.src_files {
            let code_lines: Vec<&str> =
                file.lines.iter().map(|l| l.code.as_str()).collect();
            let in_feature = mark_cfg_feature(&code_lines);
            for (i, line) in file.lines.iter().enumerate() {
                if !in_feature[i] || line.in_test || line.allows("observer_seam") {
                    continue;
                }
                if EMIT_TOKENS.iter().any(|t| line.code.contains(t)) {
                    violations.push(Violation::new(
                        Lint::ObserverSeam,
                        &file.rel_path,
                        i + 1,
                        "observer-hook emission inside a `#[cfg(feature = …)]` block; \
                         hooks must fire in every build flavour so registered observers \
                         see the same event stream — gate the *observer registration* \
                         instead (or annotate with `// analyzer:allow(observer_seam)` \
                         and justify)"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

/// Marks which lines sit inside a `#[cfg(feature = …)]` item, with the
/// same brace-walking approach (and limitations) as the `#[cfg(test)]`
/// marker in [`crate::source`].
fn mark_cfg_feature(code_lines: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the innermost #[cfg(feature…)] item opened, if any.
    let mut open_depth: Option<i64> = None;
    let mut pending_attr = false;
    for (i, raw) in code_lines.iter().enumerate() {
        if open_depth.is_some() {
            out[i] = true;
        }
        if open_depth.is_none() && raw.contains("#[cfg(") && raw.contains("feature") {
            pending_attr = true;
            out[i] = true;
        }
        for c in raw.chars() {
            match c {
                '{' => {
                    if pending_attr && open_depth.is_none() {
                        open_depth = Some(depth);
                        pending_attr = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if open_depth == Some(depth) {
                        open_depth = None;
                        out[i] = true;
                    }
                }
                // `#[cfg(feature = …)] use …;` or a bodyless statement.
                ';' if pending_attr && open_depth.is_none() => {
                    pending_attr = false;
                    out[i] = true;
                }
                _ => {}
            }
        }
        if open_depth.is_some() || pending_attr {
            out[i] = true;
        }
    }
    out
}

/// The audited per-reference hot-path functions of `odb-memsim`, as
/// `(file, function names)` pairs. These run once (or more) per sampled
/// memory reference — billions of times per sweep — so a heap
/// allocation inside them is a per-reference cost by construction.
pub const HOT_PATH_AUDITED: &[(&str, &[&str])] = &[
    (
        "crates/memsim/src/trace.rs",
        &[
            "interleave",
            "run_chunk",
            "user_data_ref",
            "os_data_ref",
            "sync_directory",
            "continue_run",
            "draw_dwell",
        ],
    ),
    ("crates/memsim/src/cache.rs", &["access"]),
    (
        "crates/memsim/src/hierarchy.rs",
        &["fetch_code", "access_data", "descend"],
    ),
    ("crates/memsim/src/dist.rs", &["sample", "search_table"]),
    ("crates/memsim/src/tlb.rs", &["access"]),
    (
        "crates/memsim/src/coherence.rs",
        &["write_slice", "has_remote_holders"],
    ),
];

/// Allocation tokens forbidden in the audited hot-path functions.
const ALLOC_TOKENS: &[&str] = &[".collect(", ".collect::<", ".to_vec()", "Vec::new()"];

/// The allowlist for deliberate hot-path allocations, relative to the
/// workspace root. One `path:function` entry per line; `#` comments.
pub const HOT_PATH_ALLOWLIST: &str = "crates/analyzer/hot_path_allow.txt";

/// Forbids per-reference heap allocation (`collect()`, `to_vec()`,
/// `Vec::new()`) inside the [`HOT_PATH_AUDITED`] functions — the inner
/// loop the whole sweep's wall-clock stands on. Deliberate cases go in
/// the [`HOT_PATH_ALLOWLIST`] file (`path:function` per line) or carry
/// a `// analyzer:allow(hot_path_alloc)` line escape.
pub fn hot_path_alloc(model: &WorkspaceModel, violations: &mut Vec<Violation>) {
    let allow = load_hot_path_allowlist(&model.root.join(HOT_PATH_ALLOWLIST));
    hot_path_alloc_with(model, &allow, violations);
}

/// Parses the allowlist file into `(path, function)` pairs; a missing
/// or unreadable file is an empty allowlist (the lint then runs at full
/// strictness rather than silently passing).
fn load_hot_path_allowlist(path: &std::path::Path) -> HashSet<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashSet::new();
    };
    text.lines()
        .filter_map(|line| {
            let entry = line.split('#').next().unwrap_or("").trim();
            if entry.is_empty() {
                return None;
            }
            let (path, func) = entry.rsplit_once(':')?;
            Some((path.trim().to_owned(), func.trim().to_owned()))
        })
        .collect()
}

/// [`hot_path_alloc`] against an explicit allowlist (unit-testable).
fn hot_path_alloc_with(
    model: &WorkspaceModel,
    allow: &HashSet<(String, String)>,
    violations: &mut Vec<Violation>,
) {
    let Some(krate) = model.get("memsim") else { return };
    for (path, functions) in HOT_PATH_AUDITED {
        let Some(file) = krate.src_files.iter().find(|f| f.rel_path == *path) else {
            continue;
        };
        let audited: Vec<&str> = functions
            .iter()
            .copied()
            .filter(|f| !allow.contains(&((*path).to_owned(), (*f).to_owned())))
            .collect();
        if audited.is_empty() {
            continue;
        }
        let code_lines: Vec<&str> = file.lines.iter().map(|l| l.code.as_str()).collect();
        let in_hot = mark_fn_bodies(&code_lines, &audited);
        for (i, line) in file.lines.iter().enumerate() {
            if !in_hot[i] || line.in_test || line.allows("hot_path_alloc") {
                continue;
            }
            if ALLOC_TOKENS.iter().any(|t| line.code.contains(t)) {
                violations.push(Violation::new(
                    Lint::HotPathAlloc,
                    &file.rel_path,
                    i + 1,
                    "heap allocation (`collect()`/`to_vec()`/`Vec::new()`) inside a \
                     per-reference hot-path function; hoist the buffer out of the \
                     loop, or record the exception in crates/analyzer/\
                     hot_path_allow.txt (or annotate with \
                     `// analyzer:allow(hot_path_alloc)` and justify)"
                        .to_owned(),
                ));
            }
        }
    }
}

/// Marks which lines sit inside the body of any `fn <name>(`/`fn
/// <name><` among `names`, with the same brace-walking approach (and
/// limitations) as [`mark_cfg_feature`]. A bodyless declaration (trait
/// method signature) opens nothing.
fn mark_fn_bodies(code_lines: &[&str], names: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the innermost audited fn's body opened, if any.
    let mut open_depth: Option<i64> = None;
    let mut pending = false;
    for (i, raw) in code_lines.iter().enumerate() {
        if open_depth.is_some() {
            out[i] = true;
        }
        if open_depth.is_none()
            && !pending
            && names.iter().any(|n| {
                raw.contains(&format!("fn {n}(")) || raw.contains(&format!("fn {n}<"))
            })
        {
            pending = true;
            out[i] = true;
        }
        for c in raw.chars() {
            match c {
                '{' => {
                    if pending && open_depth.is_none() {
                        open_depth = Some(depth);
                        pending = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if open_depth == Some(depth) {
                        open_depth = None;
                        out[i] = true;
                    }
                }
                // Trait-method signature without a body.
                ';' if pending && open_depth.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
        if open_depth.is_some() {
            out[i] = true;
        }
    }
    out
}

/// Extensions that mark editor/tooling droppings.
const STRAY_SUFFIXES: &[&str] = &[".tmp", ".bak", ".orig", ".rej", "~"];

/// Flags stray files anywhere in the repository and orphan `.rs` modules
/// under any crate's `src/` tree.
pub fn stray_files(model: &WorkspaceModel, violations: &mut Vec<Violation>) {
    for path in &model.all_files {
        if STRAY_SUFFIXES.iter().any(|s| path.ends_with(s)) {
            violations.push(Violation::new(
                Lint::StrayFile,
                path,
                0,
                "stray file (editor/tooling dropping); delete it or rename it into \
                 the tree properly"
                    .to_owned(),
            ));
        }
    }
    for krate in &model.crates {
        orphan_modules(krate, violations);
    }
}

/// Breadth-first module-reachability walk from the crate roots.
fn orphan_modules(krate: &CrateModel, violations: &mut Vec<Violation>) {
    let files: HashMap<&str, &SourceFile> = krate
        .src_files
        .iter()
        .map(|f| (f.rel_path.as_str(), f))
        .collect();
    let all: BTreeSet<&str> = krate.src_rs_paths.iter().map(String::as_str).collect();
    let mut reachable: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for path in &krate.src_rs_paths {
        // Roots: lib.rs, main.rs, anything under src/bin/.
        let is_root = path.ends_with("/src/lib.rs")
            || path.ends_with("/src/main.rs")
            || path.contains("/src/bin/");
        if is_root {
            reachable.insert(path.clone());
            queue.push_back(path.clone());
        }
    }
    while let Some(path) = queue.pop_front() {
        let Some(file) = files.get(path.as_str()) else { continue };
        // Directory that child modules resolve against: the file's own
        // directory for lib.rs/main.rs/mod.rs, otherwise a subdirectory
        // named after the file (2018-style `foo.rs` + `foo/bar.rs`).
        let (dir, stem) = split_dir_stem(&path);
        let base = if stem == "lib" || stem == "main" || stem == "mod" {
            dir.to_owned()
        } else {
            format!("{dir}/{stem}")
        };
        for (_, name) in file.external_mods() {
            for candidate in [
                format!("{base}/{name}.rs"),
                format!("{base}/{name}/mod.rs"),
            ] {
                if all.contains(candidate.as_str()) && reachable.insert(candidate.clone())
                {
                    queue.push_back(candidate);
                }
            }
        }
    }
    for path in &krate.src_rs_paths {
        if !reachable.contains(path) {
            violations.push(Violation::new(
                Lint::StrayFile,
                path,
                0,
                format!(
                    "orphan module: no `mod` declaration reaches this file from \
                     crate `{}`'s roots",
                    krate.name
                ),
            ));
        }
    }
}

/// Splits `a/b/c.rs` into (`a/b`, `c`).
fn split_dir_stem(path: &str) -> (&str, &str) {
    let (dir, file) = path.rsplit_once('/').unwrap_or(("", path));
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    (dir, stem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile::parse(rel.to_owned(), text)
    }

    #[test]
    fn panic_sites_skip_tests_allows_and_comments() {
        let f = file(
            "crates/core/src/x.rs",
            "\
fn a() { v.unwrap(); }            // one site (the comment text unwrap() is not)
fn b() { v.expect(\"m\"); }       // two
// analyzer:allow(panic) — contract
fn c() { panic!(\"boom\"); }      // allowed
fn d() { v.unwrap_or_default(); } // not a site
#[cfg(test)]
mod tests { fn t() { v.unwrap(); } }
",
        );
        let sites = file_panic_sites(&f);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0], (1, ".unwrap()"));
        assert_eq!(sites[1], (2, ".expect("));
    }

    #[test]
    fn panic_family_macros_count() {
        let f = file(
            "x.rs",
            "fn a() { todo!() }\nfn b() { unreachable!(\"x\") }\nfn c() { unimplemented!() }\n",
        );
        // `todo!()` and `unimplemented!()` with no args still match the
        // `…!(` token form.
        assert_eq!(file_panic_sites(&f).len(), 3);
    }

    #[test]
    fn cfg_feature_regions_are_marked() {
        let text = "\
fn a(hub: &mut H) { hub.emit(now, &e); }
#[cfg(feature = \"invariants\")]
fn gated(hub: &mut H) {
    hub.emit_with(now, || e);
}
#[cfg(feature = \"invariants\")]
use helper::check;
fn b(hub: &mut H) { hub.emit(now, &e); }
";
        let f = file("crates/engine/src/x.rs", text);
        let code: Vec<&str> = f.lines.iter().map(|l| l.code.as_str()).collect();
        let marked = mark_cfg_feature(&code);
        assert!(!marked[0], "plain code before the attribute");
        assert!(marked[1] && marked[2] && marked[3] && marked[4], "gated fn");
        assert!(marked[5] && marked[6], "bodyless gated item");
        assert!(!marked[7], "code after the gated items");
    }

    #[test]
    fn emit_inside_cfg_feature_is_flagged_and_escapable() {
        let gated = file(
            "crates/engine/src/x.rs",
            "#[cfg(feature = \"invariants\")]\n\
             fn gated(hub: &mut H) {\n    hub.emit(now, &e);\n}\n",
        );
        let clean = file(
            "crates/engine/src/y.rs",
            "fn open(hub: &mut H) { hub.emit(now, &e); }\n\
             #[cfg(feature = \"invariants\")]\n\
             fn gated(hub: &mut H) {\n\
             \x20   // analyzer:allow(observer_seam) — justified\n\
             \x20   hub.emit(now, &e);\n}\n",
        );
        let model = WorkspaceModel {
            root: std::path::PathBuf::new(),
            crates: vec![CrateModel {
                name: "engine".to_owned(),
                src_files: vec![gated, clean],
                src_rs_paths: Vec::new(),
            }],
            all_files: Vec::new(),
        };
        let mut violations = Vec::new();
        observer_seam(&model, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].lint, Lint::ObserverSeam);
        assert_eq!(violations[0].path, "crates/engine/src/x.rs");
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn split_dir_stem_works() {
        assert_eq!(
            split_dir_stem("crates/des/src/time.rs"),
            ("crates/des/src", "time")
        );
    }
}
