//! Cross-crate invariant: the iron law of database performance holds for
//! every simulated configuration.
//!
//! `TPS = util × P × F / (IPX × CPI)` is not imposed anywhere — TPS comes
//! from counting commits against the event clock, IPX from instruction
//! accounting, CPI from busy-time accounting, utilization from idle-time
//! accounting. Their mutual consistency is the paper's §3.4 model and the
//! simulator's strongest self-check.

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::{OdbSimulator, SimOptions};

fn check(warehouses: u32, clients: u32, processors: u32, tolerance: f64) {
    let system = SystemConfig::xeon_quad().with_processors(processors);
    let frequency = system.frequency_hz;
    let config =
        OltpConfig::new(WorkloadConfig::new(warehouses, clients).unwrap(), system).unwrap();
    let m = OdbSimulator::new(config, SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    assert!(m.transactions > 50, "too few transactions to compare");
    let predicted = m.iron_law_tps(frequency);
    let actual = m.tps();
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < tolerance,
        "iron law violated at W={warehouses} C={clients} P={processors}: \
         predicted {predicted:.1}, measured {actual:.1} ({:.1}% apart)",
        err * 100.0
    );
}

#[test]
fn iron_law_holds_cached_1p() {
    check(10, 8, 1, 0.10);
}

#[test]
fn iron_law_holds_cached_4p() {
    check(10, 10, 4, 0.10);
}

#[test]
fn iron_law_holds_midrange_2p() {
    check(100, 16, 2, 0.10);
}

#[test]
fn iron_law_holds_scaled_4p() {
    check(400, 56, 4, 0.10);
}

#[test]
fn iron_law_holds_under_contention() {
    check(2, 24, 4, 0.10);
}

#[test]
fn iron_law_terms_move_the_right_way() {
    // Halving CPI-side work (frequency doubled) must raise TPS for a
    // CPU-bound configuration; the law's terms are causal, not just
    // descriptive.
    let mut fast = SystemConfig::xeon_quad();
    fast.frequency_hz *= 2.0;
    // Plenty of clients so the CPU — not client think time — binds.
    let slow_cfg = OltpConfig::new(
        WorkloadConfig::new(10, 48).unwrap(),
        SystemConfig::xeon_quad(),
    )
    .unwrap();
    let fast_cfg = OltpConfig::new(WorkloadConfig::new(10, 48).unwrap(), fast).unwrap();
    let slow = OdbSimulator::new(slow_cfg, SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    let fast = OdbSimulator::new(fast_cfg, SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    let speedup = fast.tps() / slow.tps();
    assert!(
        speedup > 1.5,
        "doubling F should approach 2x TPS when CPU-bound: got {speedup:.2}x"
    );
}
