//! The panic-site pass: `unwrap()`/`expect()`/`panic!`-family calls in
//! non-test library code of the simulation core, baseline-ratcheted.

use super::{CountedSite, Pass, PassContext};
use crate::report::Lint;
use crate::source::{CrateModel, SourceFile, WorkspaceModel};

/// Crates whose library code must not panic (the simulation core).
pub const PANIC_AUDITED: &[&str] = &["core", "des", "engine", "memsim"];

/// Tokens that panic at runtime and are forbidden in library code.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Forbids `unwrap()`/`expect()`/`panic!`-family calls in non-test code
/// of the audited crates, honouring `// odb-analyzer: allow(panic)`.
/// Sites are counted per crate and held against the `[panic_sites]`
/// baseline; growth beyond the baseline turns each site into a
/// violation.
pub struct PanicSites;

impl Pass for PanicSites {
    fn lint(&self) -> Lint {
        Lint::PanicBaseline
    }

    fn description(&self) -> &'static str {
        "unwrap()/expect()/panic!-family calls in non-test simulation library code"
    }

    fn baseline_section(&self) -> Option<&'static str> {
        Some("panic_sites")
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        for name in PANIC_AUDITED {
            // Register the crate even when absent or clean, so the
            // baseline ratchets to (and stays at) zero.
            ctx.crate_sites("panic_sites", name);
            let Some(krate) = model.get(name) else { continue };
            for file in &krate.src_files {
                for (line, token) in file_panic_sites(file) {
                    ctx.count_site(
                        "panic_sites",
                        name,
                        CountedSite {
                            lint: Lint::PanicBaseline,
                            path: file.rel_path.clone(),
                            line,
                            message: format!(
                                "counted panic site `{token}` in non-test library code; \
                                 propagate a typed error instead (or annotate a documented \
                                 contract panic with `// odb-analyzer: allow(panic)`)"
                            ),
                        },
                    );
                }
            }
        }
    }
}

/// `(line_number, token)` for every counted panic site in `file`.
pub fn file_panic_sites(file: &SourceFile) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows("panic") {
            continue;
        }
        for token in PANIC_TOKENS {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(token) {
                from += pos + token.len();
                sites.push((i + 1, *token));
            }
        }
    }
    sites
}

/// Lists every counted (non-allowed, non-test) panic site of a crate,
/// for `--verbose` output.
pub fn describe_panic_sites(krate: &CrateModel) -> Vec<String> {
    let mut out = Vec::new();
    for file in &krate.src_files {
        for (line, token) in file_panic_sites(file) {
            out.push(format!("{}:{line}: {token}", file.rel_path));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile::parse(rel.to_owned(), text)
    }

    #[test]
    fn panic_sites_skip_tests_allows_and_comments() {
        let f = file(
            "crates/core/src/x.rs",
            "\
fn a() { v.unwrap(); }            // one site (the comment text unwrap() is not)
fn b() { v.expect(\"m\"); }       // two
// odb-analyzer: allow(panic) — contract
fn c() { panic!(\"boom\"); }      // allowed
fn d() { v.unwrap_or_default(); } // not a site
#[cfg(test)]
mod tests { fn t() { v.unwrap(); } }
",
        );
        let sites = file_panic_sites(&f);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0], (1, ".unwrap()"));
        assert_eq!(sites[1], (2, ".expect("));
    }

    #[test]
    fn panic_family_macros_count() {
        let f = file(
            "x.rs",
            "fn a() { todo!() }\nfn b() { unreachable!(\"x\") }\nfn c() { unimplemented!() }\n",
        );
        // `todo!()` and `unimplemented!()` with no args still match the
        // `…!(` token form.
        assert_eq!(file_panic_sites(&f).len(), 3);
    }
}
