//! The burn-down baselines.
//!
//! `crates/analyzer/baseline.toml` records, per ratcheted pass family
//! and per audited crate, how many counted sites the tree is *allowed*
//! to have. Two sections exist today:
//!
//! * `[panic_sites]` — non-test `unwrap()`/`expect()`/`panic!`-family
//!   sites in the panic-audited crates;
//! * `[determinism]` — determinism-pass sites (unordered iteration,
//!   ambient nondeterminism, RNG discipline, float accumulation order)
//!   in the determinism-audited crates.
//!
//! The gate fails when a crate grows beyond its entry (ratchet up is
//! forbidden); shrinking below it produces a friendly notice to re-run
//! `--update-baseline` so the ratchet tightens. A missing section (or a
//! missing file) allows nothing: every counted site is then a violation,
//! which forces baselines to be checked in rather than grandfathered
//! invisibly. Parsed here without a TOML dependency.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The baseline sections the analyzer knows about, in file order.
pub const SECTIONS: &[&str] = &["panic_sites", "determinism"];

/// Allowed site counts per `(section, crate)`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    sections: BTreeMap<String, BTreeMap<String, usize>>,
}

/// Why a baseline could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file does not exist (first run).
    Missing,
    /// The file exists but is not a valid baseline.
    Malformed(String),
}

impl Baseline {
    /// Reads and parses the baseline file.
    ///
    /// # Errors
    ///
    /// [`LoadError::Missing`] when the file is absent;
    /// [`LoadError::Malformed`] on unreadable or unparsable content.
    pub fn load(path: &Path) -> Result<Baseline, LoadError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
            Err(e) => return Err(LoadError::Malformed(format!("read error: {e}"))),
        };
        Self::parse(&text)
    }

    /// Parses baseline text: comments, blank lines, `[section]` headers
    /// from [`SECTIONS`], then `crate = count` pairs under each.
    pub fn parse(text: &str) -> Result<Baseline, LoadError> {
        let mut sections: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                let name = line.trim_matches(|c| c == '[' || c == ']').to_owned();
                if !SECTIONS.contains(&name.as_str()) {
                    return Err(LoadError::Malformed(format!(
                        "line {}: unknown section {line}",
                        n + 1
                    )));
                }
                if sections.contains_key(&name) {
                    return Err(LoadError::Malformed(format!(
                        "line {}: duplicate section {line}",
                        n + 1
                    )));
                }
                sections.insert(name.clone(), BTreeMap::new());
                current = Some(name);
                continue;
            }
            let Some(section) = &current else {
                return Err(LoadError::Malformed(format!(
                    "line {}: entry before any section header",
                    n + 1
                )));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(LoadError::Malformed(format!(
                    "line {}: expected `crate = count`, got {line:?}",
                    n + 1
                )));
            };
            let key = key.trim().trim_matches('"').to_owned();
            let count: usize = value.trim().parse().map_err(|e| {
                LoadError::Malformed(format!("line {}: bad count {:?}: {e}", n + 1, value.trim()))
            })?;
            let entries = sections.entry(section.clone()).or_default();
            if entries.insert(key.clone(), count).is_some() {
                return Err(LoadError::Malformed(format!(
                    "line {}: duplicate entry for `{key}`",
                    n + 1
                )));
            }
        }
        Ok(Baseline { sections })
    }

    /// Builds a baseline from freshly measured `(section, crate, count)`
    /// triples.
    pub fn from_counts<'a, I>(counts: I) -> Baseline
    where
        I: IntoIterator<Item = (&'a str, &'a str, usize)>,
    {
        let mut sections: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for (section, krate, count) in counts {
            sections
                .entry(section.to_owned())
                .or_default()
                .insert(krate.to_owned(), count);
        }
        Baseline { sections }
    }

    /// The allowed count for `krate` under `section` (0 when absent —
    /// absence never grants headroom).
    pub fn allowed(&self, section: &str, krate: &str) -> usize {
        self.sections
            .get(section)
            .and_then(|s| s.get(krate))
            .copied()
            .unwrap_or(0)
    }

    /// Serialises to the on-disk format, with [`SECTIONS`] order.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Burn-down baselines. Maintained by `odb-analyzer`:\n\
             # counts may only go DOWN; regenerate with\n\
             #   cargo run -p odb-analyzer -- --update-baseline\n",
        );
        for section in SECTIONS {
            let Some(entries) = self.sections.get(*section) else {
                continue;
            };
            out.push_str(&format!("\n[{section}]\n"));
            for (krate, count) in entries {
                out.push_str(&format!("{krate} = {count}\n"));
            }
        }
        out
    }

    /// Writes the baseline file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_multi_section() {
        let base = Baseline::from_counts([
            ("panic_sites", "core", 0usize),
            ("panic_sites", "engine", 12),
            ("determinism", "core", 0),
            ("determinism", "memsim", 3),
        ]);
        let text = base.render();
        let again = Baseline::parse(&text).expect("roundtrip parses");
        assert_eq!(again.allowed("panic_sites", "core"), 0);
        assert_eq!(again.allowed("panic_sites", "engine"), 12);
        assert_eq!(again.allowed("determinism", "memsim"), 3);
        assert_eq!(again.allowed("determinism", "absent"), 0);
        assert_eq!(again.allowed("unknown_section", "core"), 0);
    }

    #[test]
    fn missing_section_allows_nothing() {
        let base = Baseline::parse("[panic_sites]\ncore = 2\n").expect("parses");
        assert_eq!(base.allowed("panic_sites", "core"), 2);
        assert_eq!(base.allowed("determinism", "core"), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Baseline::parse("core = 1"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[other]\ncore = 1"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[panic_sites]\ncore = banana"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[panic_sites]\ncore = 1\ncore = 2"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[panic_sites]\n[panic_sites]\n"),
            Err(LoadError::Malformed(_))
        ));
    }
}
