//! The background writer processes: log writer and database writer.
//!
//! "Two background processes of note are the database writer and the log
//! writer. The database writer searches the pool of database blocks that
//! are cached in the main memory and writes modified blocks back to disk.
//! The log writer process records to disk all changes made to the
//! database" (§3.1).
//!
//! Both are modelled as pure state machines the DES drives:
//!
//! * [`LogWriter`] implements **group commit**: committing transactions
//!   park on the current batch; a flush gathers the batch into one
//!   sequential log write (≈6 KB of redo per transaction on average,
//!   independent of `W` and `P` — §4.3), and its completion wakes every
//!   parked committer.
//! * [`DbWriter`] drains dirty pages evicted by the buffer cache with a
//!   bounded number of in-flight writes, so page writeback is
//!   asynchronous and "typically non-critical", as §4.3 notes.

use crate::schema::PageId;
use odb_core::Error;
use odb_ossim::ProcessId;
use std::collections::VecDeque;

/// Group-commit state machine.
#[derive(Debug, Default)]
pub struct LogWriter {
    /// Committers parked on the batch currently being collected.
    batch: Vec<ProcessId>,
    batch_bytes: u64,
    /// Committers riding the flush that is on disk right now.
    in_flight: Vec<ProcessId>,
    flushing: bool,
    /// Total log bytes flushed.
    bytes_flushed: u64,
    /// Number of flush I/Os issued.
    flushes: u64,
}

/// What the engine must do after a commit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitAction {
    /// A flush should be started now (the caller opens the batch and
    /// there is no flush in flight).
    StartFlush,
    /// A flush is already in flight; the new batch will be flushed when
    /// it completes. Nothing to schedule.
    Wait,
}

impl LogWriter {
    /// An idle log writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `pid` on the current batch with `bytes` of redo. Returns
    /// [`CommitAction::StartFlush`] when the caller should begin a flush
    /// immediately.
    pub fn commit_request(&mut self, pid: ProcessId, bytes: u64) -> CommitAction {
        self.batch.push(pid);
        self.batch_bytes += bytes;
        if self.flushing {
            CommitAction::Wait
        } else {
            CommitAction::StartFlush
        }
    }

    /// Begins flushing the collected batch; returns the bytes to write.
    /// The engine submits a `LogWrite` I/O of this size.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptState`] if a flush is already in flight or
    /// the batch is empty — either means the engine's commit scheduling
    /// has diverged from the group-commit protocol.
    pub fn begin_flush(&mut self) -> Result<u64, Error> {
        if self.flushing {
            return Err(Error::corrupt(
                "engine::writers",
                "begin_flush while a flush is already in flight",
            ));
        }
        if self.batch.is_empty() {
            return Err(Error::corrupt(
                "engine::writers",
                "begin_flush with no parked committers",
            ));
        }
        self.flushing = true;
        self.in_flight = std::mem::take(&mut self.batch);
        let bytes = std::mem::take(&mut self.batch_bytes);
        self.flushes += 1;
        self.bytes_flushed += bytes;
        Ok(bytes)
    }

    /// Completes the in-flight flush: returns the committers to wake and
    /// whether another flush should start immediately (a batch formed
    /// while the disk was busy).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptState`] if no flush is in flight (a flush
    /// completion event with nothing on disk).
    pub fn flush_complete(&mut self) -> Result<(Vec<ProcessId>, bool), Error> {
        if !self.flushing {
            return Err(Error::corrupt(
                "engine::writers",
                "flush completion with no flush in flight",
            ));
        }
        self.flushing = false;
        let woken = std::mem::take(&mut self.in_flight);
        Ok((woken, !self.batch.is_empty()))
    }

    /// Fault injection: truncates the in-flight commit batch — the flush
    /// is forgotten and its riders are dropped on the floor, as if the
    /// log device lost the write. Returns `true` if a flush was in
    /// flight. The pending flush-completion event then surfaces as
    /// [`Error::CorruptState`].
    #[cfg(feature = "invariants")]
    pub fn inject_truncate_batch(&mut self) -> bool {
        if !self.flushing {
            return false;
        }
        self.flushing = false;
        self.in_flight.clear();
        true
    }

    /// `true` while a flush I/O is on disk.
    pub fn is_flushing(&self) -> bool {
        self.flushing
    }

    /// Committers parked on the forming batch.
    pub fn batch_len(&self) -> usize {
        self.batch.len()
    }

    /// Total bytes flushed so far.
    pub fn bytes_flushed(&self) -> u64 {
        self.bytes_flushed
    }

    /// Flush I/Os issued so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Resets counters; parked committers are untouched.
    pub fn reset_stats(&mut self) {
        self.bytes_flushed = 0;
        self.flushes = 0;
    }
}

/// Asynchronous dirty-page writeback with bounded concurrency.
#[derive(Debug)]
pub struct DbWriter {
    queue: VecDeque<PageId>,
    in_flight: usize,
    max_in_flight: usize,
    pages_written: u64,
    /// High-water mark of the pending queue (diagnostic).
    max_queue: usize,
}

impl DbWriter {
    /// A writer allowing `max_in_flight` concurrent page writes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `max_in_flight` is zero.
    pub fn new(max_in_flight: usize) -> Result<Self, Error> {
        if max_in_flight == 0 {
            return Err(Error::InvalidConfig {
                field: "db_writer_slots",
                reason: "need at least one write slot".to_owned(),
            });
        }
        Ok(Self {
            queue: VecDeque::new(),
            in_flight: 0,
            max_in_flight,
            pages_written: 0,
            max_queue: 0,
        })
    }

    /// Queues a dirty page; returns the page to submit now if a write
    /// slot is free.
    pub fn enqueue(&mut self, page: PageId) -> Option<PageId> {
        self.queue.push_back(page);
        self.max_queue = self.max_queue.max(self.queue.len());
        self.try_issue()
    }

    /// Marks one write complete; returns the next page to submit, if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptState`] if no write is in flight — a
    /// completion event with nothing on disk.
    pub fn write_complete(&mut self) -> Result<Option<PageId>, Error> {
        if self.in_flight == 0 {
            return Err(Error::corrupt(
                "engine::writers",
                "page-write completion with no write in flight",
            ));
        }
        self.in_flight -= 1;
        self.pages_written += 1;
        Ok(self.try_issue())
    }

    fn try_issue(&mut self) -> Option<PageId> {
        if self.in_flight < self.max_in_flight {
            if let Some(page) = self.queue.pop_front() {
                self.in_flight += 1;
                return Some(page);
            }
        }
        None
    }

    /// Pages whose writes have completed.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Writes currently on disk.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Pages queued but not yet issued.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Resets the written counter; queue state is untouched.
    pub fn reset_stats(&mut self) {
        self.pages_written = 0;
        self.max_queue = self.queue.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn single_commit_flushes_immediately() {
        let mut lw = LogWriter::new();
        assert_eq!(lw.commit_request(pid(1), 6_000), CommitAction::StartFlush);
        assert_eq!(lw.begin_flush().unwrap(), 6_000);
        assert!(lw.is_flushing());
        let (woken, more) = lw.flush_complete().unwrap();
        assert_eq!(woken, vec![pid(1)]);
        assert!(!more);
        assert_eq!(lw.flushes(), 1);
        assert_eq!(lw.bytes_flushed(), 6_000);
    }

    #[test]
    fn group_commit_batches_while_disk_busy() {
        let mut lw = LogWriter::new();
        assert_eq!(lw.commit_request(pid(1), 8_000), CommitAction::StartFlush);
        lw.begin_flush().unwrap();
        // Two more commits arrive while the flush is on disk.
        assert_eq!(lw.commit_request(pid(2), 3_000), CommitAction::Wait);
        assert_eq!(lw.commit_request(pid(3), 8_000), CommitAction::Wait);
        assert_eq!(lw.batch_len(), 2);
        let (woken, more) = lw.flush_complete().unwrap();
        assert_eq!(woken, vec![pid(1)]);
        assert!(more, "a second flush must start for the batch");
        let bytes = lw.begin_flush().unwrap();
        assert_eq!(bytes, 11_000, "the batch is one grouped write");
        let (woken2, more2) = lw.flush_complete().unwrap();
        assert_eq!(woken2, vec![pid(2), pid(3)]);
        assert!(!more2);
        assert_eq!(lw.flushes(), 2);
    }

    #[test]
    fn double_flush_is_corrupt_state() {
        let mut lw = LogWriter::new();
        lw.commit_request(pid(1), 100);
        lw.begin_flush().unwrap();
        lw.commit_request(pid(2), 100);
        assert!(matches!(
            lw.begin_flush(),
            Err(Error::CorruptState { component: "engine::writers", .. })
        ));
    }

    #[test]
    fn empty_flush_is_corrupt_state() {
        let mut lw = LogWriter::new();
        assert!(matches!(
            lw.begin_flush(),
            Err(Error::CorruptState { component: "engine::writers", .. })
        ));
    }

    #[test]
    fn spurious_completions_are_corrupt_state() {
        let mut lw = LogWriter::new();
        assert!(matches!(
            lw.flush_complete(),
            Err(Error::CorruptState { component: "engine::writers", .. })
        ));
        let mut dw = DbWriter::new(1).unwrap();
        assert!(matches!(
            dw.write_complete(),
            Err(Error::CorruptState { component: "engine::writers", .. })
        ));
    }

    #[test]
    fn dbwriter_bounds_in_flight() {
        let mut dw = DbWriter::new(2).unwrap();
        assert_eq!(dw.enqueue(10), Some(10));
        assert_eq!(dw.enqueue(11), Some(11));
        assert_eq!(dw.enqueue(12), None, "third write waits");
        assert_eq!(dw.in_flight(), 2);
        assert_eq!(dw.backlog(), 1);
        assert_eq!(dw.write_complete().unwrap(), Some(12));
        assert_eq!(dw.write_complete().unwrap(), None);
        assert_eq!(dw.write_complete().unwrap(), None);
        assert_eq!(dw.pages_written(), 3);
        assert_eq!(dw.in_flight(), 0);
    }

    #[test]
    fn zero_slots_is_rejected() {
        assert!(matches!(
            DbWriter::new(0),
            Err(Error::InvalidConfig { field: "db_writer_slots", .. })
        ));
    }

    #[test]
    fn reset_stats() {
        let mut lw = LogWriter::new();
        lw.commit_request(pid(1), 500);
        lw.begin_flush().unwrap();
        lw.flush_complete().unwrap();
        lw.reset_stats();
        assert_eq!(lw.flushes(), 0);
        assert_eq!(lw.bytes_flushed(), 0);
        let mut dw = DbWriter::new(1).unwrap();
        dw.enqueue(1);
        dw.write_complete().unwrap();
        dw.reset_stats();
        assert_eq!(dw.pages_written(), 0);
    }
}
