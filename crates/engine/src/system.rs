//! The full-system discrete-event simulation.
//!
//! `C` server processes execute transactions over `P` processors fed by a
//! global run queue. Page touches go through the SGA buffer cache; misses
//! become disk reads the process blocks on; writes stream through the
//! group-commit log writer and the asynchronous database writer. Timing
//! follows the paper's own cost model: a segment of `n` instructions
//! costs `n × CPI / F` seconds, with the CPI produced by the cache
//! characterization (`odb-memsim`) and inflated live by the shared-bus
//! IOQ latency, which in turn is driven by the L3-miss and DMA traffic
//! the simulation itself generates — the feedback loop behind Fig 16.
//!
//! Everything the paper measures falls out of this loop: TPS, IPX by
//! space, CPI by space, utilization and its OS share, I/O and context
//! switches per transaction, bus utilization and IOQ latency.

use crate::buffer::{BufferAccess, BufferCache};
use crate::locks::{canonical_order, AcquireResult, LockManager};
use crate::observe::StatsObserver;
use crate::schema::{PageMap, TouchKind, PAGE_BYTES};
use crate::txn::{Transaction, TxnSampler};
use crate::writers::{CommitAction, DbWriter, LogWriter};
use odb_core::breakdown::StallCosts;
use odb_core::config::OltpConfig;
use odb_core::metrics::{IoPerTxn, Measurement, SpaceCounts};
use odb_des::{EventQueue, ObserverHub, SimEvent, SimObserver, SimTime};
use odb_iosim::{DiskArray, RequestKind};
use odb_memsim::bus::BusWindow;
use odb_memsim::{EventRates, FsbModel};
use odb_ossim::{CpuAccounting, OsCosts, ProcessId, RunQueue, StopReason};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Tunables of the system model (defaults are Linux-2.4-era values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Scheduler timeslice.
    pub quantum: SimTime,
    /// Bus-feedback window (utilization → IOQ latency recomputation).
    pub bus_window: SimTime,
    /// Group-commit batching delay before a flush starts.
    pub log_group_delay: SimTime,
    /// Concurrent page-writeback slots for the database writer.
    pub db_writer_slots: usize,
    /// Log spindles reserved out of the array.
    pub log_disks: u32,
    /// Interval between database-writer checkpoint scans.
    pub checkpoint_interval: SimTime,
    /// Dirty pages written per checkpoint scan. Zero (the default)
    /// disables scanning in favour of the age-based cold-dirty writeback
    /// below; a nonzero batch emulates aggressive incremental
    /// checkpointing on top — exposed for the checkpointing ablation.
    pub checkpoint_batch: usize,
    /// How long a write-installed page must stay untouched before the
    /// database writer writes it back (Oracle's "dirty and aged out").
    pub writeback_delay: SimTime,
    /// Mean client think/messaging time between a commit acknowledgment
    /// and the next request (exponentially distributed). This is why
    /// Table 1 needs multiple clients per processor even for cached
    /// setups: while one client digests its response, another's request
    /// keeps the CPU busy.
    pub think_time_mean: SimTime,
    /// Per-spindle request scheduling (FIFO matches the paper's Linux 2.4
    /// machine; SCAN is the elevator ablation).
    pub disk_scheduler: odb_iosim::Scheduler,
    /// Transaction mix (the paper's order-entry mix by default); a
    /// first-order IPX lever for mix-sensitivity studies.
    pub txn_mix: crate::txn::TxnMix,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            quantum: SimTime::from_millis(30),
            bus_window: SimTime::from_millis(10),
            log_group_delay: SimTime::from_micros(300),
            db_writer_slots: 32,
            log_disks: 2,
            checkpoint_interval: SimTime::from_millis(50),
            checkpoint_batch: 0,
            writeback_delay: SimTime::from_millis(2_500),
            think_time_mean: SimTime::from_millis(4),
            disk_scheduler: odb_iosim::Scheduler::Fifo,
            txn_mix: crate::txn::TxnMix::paper(),
        }
    }
}

/// Why a burst ended (scheduling consequence applied at event time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BurstEnd {
    /// Blocked on a disk read; the I/O completion will wake the process.
    IoWait,
    /// Blocked on a lock; the release handover will wake the process.
    LockWait,
    /// Blocked on the commit log flush.
    CommitWait,
    /// Timeslice expired mid-transaction.
    Quantum,
}

#[derive(Debug)]
enum Event {
    /// A CPU finished its planned burst.
    BurstDone { cpu: usize, end: BurstEnd },
    /// A blocked read completed for a process.
    IoDone { pid: ProcessId },
    /// A database-writer page write completed.
    PageWriteDone,
    /// The log writer should begin flushing the current batch.
    LogFlushStart,
    /// The in-flight log flush finished.
    LogFlushDone,
    /// Recompute bus utilization and IOQ latency.
    BusTick,
    /// Database-writer incremental checkpoint scan.
    CheckpointTick,
    /// A client finished thinking; its server process has a new request.
    ThinkDone { pid: ProcessId },
}

/// Per-process execution state.
#[derive(Debug)]
struct Proc {
    txn: Option<TxnState>,
    /// Kernel work to charge when next scheduled (I/O completions, lock
    /// handovers processed on its behalf).
    pending_os_instructions: u64,
}

#[derive(Debug)]
struct TxnState {
    txn: Transaction,
    next_touch: usize,
    locks_acquired: usize,
    instr_per_touch: u64,
    /// Set when the process is queued on a lock: the FIFO handover makes
    /// it the owner while it sleeps, so on wake-up the grant must be
    /// recorded without re-acquiring.
    lock_handover_pending: bool,
    /// When execution began (for commit-latency observation).
    start: SimTime,
}

/// The assembled system simulator.
///
/// Construction wires every substrate; [`SystemSim::run_for`] advances
/// simulated time; [`SystemSim::reset_stats`] starts a measurement
/// window; [`SystemSim::collect`] reduces it to a [`Measurement`].
pub struct SystemSim {
    config: OltpConfig,
    params: SystemParams,
    rates: EventRates,
    costs: StallCosts,
    os_costs: OsCosts,
    fsb: FsbModel,

    queue: EventQueue<Event>,
    now: SimTime,
    runq: RunQueue,
    accounting: CpuAccounting,
    buffer: BufferCache,
    locks: LockManager,
    log_writer: LogWriter,
    db_writer: DbWriter,
    disks: DiskArray,
    sampler: TxnSampler,
    procs: Vec<Proc>,
    rng: SmallRng,

    // Live timing state.
    cpi_user: f64,
    cpi_os: f64,
    ioq_latency: f64,
    bus_transactions_window: f64,

    /// Cold-dirty writeback candidates: pages installed by a write miss,
    /// checked for coldness after `writeback_delay`.
    pending_writebacks: std::collections::VecDeque<(u64, u64, SimTime)>,

    /// Start of the current measurement window.
    measure_start: SimTime,

    /// The observer seam. Every measurement accumulator lives behind it
    /// as a registered [`SimObserver`] (a [`StatsObserver`] is always
    /// registered); extra observers (latency histograms, trace sinks,
    /// invariant checks) attach via [`SystemSim::register_observer`].
    hub: ObserverHub,
}

/// DMA bus transactions per 8 KB disk transfer (one per 64 B line).
const DMA_LINES_PER_PAGE: f64 = (PAGE_BYTES / 64) as f64;

impl SystemSim {
    /// Builds the system for a configuration with the event rates
    /// produced by a characterization run.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(
        config: OltpConfig,
        params: SystemParams,
        rates: EventRates,
        seed: u64,
    ) -> Result<Self, odb_core::Error> {
        config.system.validate()?;
        let costs = StallCosts {
            bus_transaction_1p: config.system.bus.base_transaction_cycles,
            ..StallCosts::xeon()
        };
        let fsb = FsbModel::new(config.system.bus);
        let frames = (config.system.buffer_cache_bytes / PAGE_BYTES).max(1) as usize;
        let map = PageMap::new(config.workload.warehouses);
        let processors = config.system.processors as usize;
        let clients = config.workload.clients as usize;
        let disks = DiskArray::with_scheduler(
            config.system.disk_array,
            params.log_disks,
            params.disk_scheduler,
        )?;
        let ioq0 = config.system.bus.base_transaction_cycles;
        let mut sim = Self {
            cpi_user: rates.user.cpi(&costs, ioq0),
            cpi_os: rates.os.cpi(&costs, ioq0),
            ioq_latency: ioq0,
            config,
            params,
            rates,
            costs,
            os_costs: OsCosts::default(),
            fsb,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            runq: RunQueue::new(processors),
            accounting: CpuAccounting::new(processors),
            buffer: BufferCache::new(frames),
            locks: LockManager::new(),
            log_writer: LogWriter::new(),
            db_writer: DbWriter::new(params.db_writer_slots)?,
            disks,
            sampler: TxnSampler::with_mix(map, params.txn_mix)?,
            procs: (0..clients)
                .map(|_| Proc {
                    txn: None,
                    pending_os_instructions: 0,
                })
                .collect(),
            rng: SmallRng::seed_from_u64(seed),
            bus_transactions_window: 0.0,
            pending_writebacks: std::collections::VecDeque::new(),
            measure_start: SimTime::ZERO,
            hub: ObserverHub::new(),
        };
        sim.hub.register(Box::new(StatsObserver::default()));
        #[cfg(feature = "invariants")]
        sim.hub
            .register(Box::new(crate::observe::InvariantObserver::default()));
        sim.prewarm();
        for pid in 0..clients {
            sim.runq.make_ready(ProcessId(pid as u32));
        }
        for cpu in 0..processors {
            sim.try_dispatch(cpu)?;
        }
        let tick = sim.params.bus_window;
        sim.queue.schedule(tick, Event::BusTick);
        let ckpt = sim.params.checkpoint_interval;
        sim.queue.schedule(ckpt, Event::CheckpointTick);
        Ok(sim)
    }

    /// Pre-fills the buffer cache with an LRU-plausible steady state by
    /// replaying sampled transaction footprints, standing in for the
    /// paper's twenty-minute warm-up (§3.3).
    fn prewarm(&mut self) {
        let frames = self.buffer.capacity();
        let total = self.sampler.map().total_pages();
        if total <= frames as u64 {
            // Cached setup: after twenty minutes of warm-up the paper's
            // buffer cache holds the entire database; so does ours.
            for page in 0..total {
                self.buffer.prewarm(page, false);
            }
            return;
        }
        // Scaled setup: replay sampled transaction footprints, with their
        // write flags, until the cache reaches an LRU-plausible steady
        // state including the dirty-page population.
        let mut warm_sampler = self.sampler.clone();
        // Warm-up stream is fixed by design: the prewarm must reach the same
        // steady state for every point, and rekeying it would change every
        // checked-in artifact.
        // odb-analyzer: allow(rng_discipline)
        let mut warm_rng = SmallRng::seed_from_u64(0xDB_CAFE);
        let mut touched = 0usize;
        while touched < frames * 3 {
            let txn = warm_sampler.sample(&mut warm_rng);
            if txn.touches.is_empty() {
                break;
            }
            touched += txn.touches.len();
            for t in txn.touches {
                self.buffer.prewarm(t.page, t.kind == TouchKind::Write);
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transactions committed since the last reset.
    pub fn committed(&self) -> u64 {
        self.stats().map_or(0, StatsObserver::committed)
    }

    /// The always-registered statistics observer.
    fn stats(&self) -> Option<&StatsObserver> {
        self.hub.get::<StatsObserver>()
    }

    /// Registers an observer on the simulation's hub; it receives every
    /// subsequent [`SimEvent`]. Observers are observation-only, so
    /// registration never changes simulation bits (the engine's
    /// determinism tests and the sweep drift gate hold this).
    pub fn register_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.hub.register(observer);
    }

    /// The first registered observer of concrete type `T`, if any.
    pub fn observer<T: SimObserver>(&self) -> Option<&T> {
        self.hub.get::<T>()
    }

    /// Mutable companion to [`SystemSim::observer`].
    pub fn observer_mut<T: SimObserver>(&mut self) -> Option<&mut T> {
        self.hub.get_mut::<T>()
    }

    /// Runs the event loop until `duration` has elapsed from now.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::CorruptState`] if an event exposes
    /// internal state that violates a simulator invariant (a completion
    /// with nothing in flight, a release by a non-holder, …). The
    /// simulation point is unusable after an error; callers should drop
    /// it and continue with other points.
    pub fn run_for(&mut self, duration: SimTime) -> Result<(), odb_core::Error> {
        let end = self.now + duration;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let Some((t, ev)) = self.queue.pop() else {
                return Err(odb_core::Error::corrupt(
                    "engine::system",
                    "event queue peeked a time but popped empty",
                ));
            };
            self.now = t;
            self.handle(ev)?;
        }
        self.now = end;
        Ok(())
    }

    /// Begins a measurement window: zeroes every statistic while keeping
    /// all warm state (cache contents, in-flight work, queue state).
    pub fn reset_stats(&mut self) {
        self.accounting.reset();
        self.runq.reset_stats();
        self.buffer.reset_stats();
        self.locks.reset_stats();
        self.log_writer.reset_stats();
        self.db_writer.reset_stats();
        self.disks.reset_stats();
        self.hub.reset(self.now);
        self.measure_start = self.now;
    }

    /// Reduces the window since the last [`SystemSim::reset_stats`] to a
    /// measurement row. Event counts are the product of instruction
    /// totals and the characterized rates; cycles are the accounted busy
    /// time, so measured CPI and simulated timing agree by construction
    /// (the iron-law self-consistency the tests assert).
    pub fn collect(&self) -> Measurement {
        let elapsed = self.now.saturating_since(self.measure_start);
        let elapsed_s = elapsed.as_secs_f64();
        let f = self.config.system.frequency_hz;
        let (transactions, user_instr, os_instr, bus_util_sum, ioq_sum, bus_windows) =
            self.stats().map_or((0, 0.0, 0.0, 0.0, 0.0, 0), |s| {
                (
                    s.committed(),
                    s.user_instructions(),
                    s.os_instructions(),
                    s.bus_util_sum(),
                    s.ioq_sum(),
                    s.bus_windows(),
                )
            });
        let committed = transactions.max(1);
        let per_txn = |v: f64| v / committed as f64;

        let ru = self.rates.user;
        let ro = self.rates.os;
        let user = SpaceCounts {
            instructions: user_instr as u64,
            cycles: (user_instr * self.avg_cpi_user(user_instr)) as u64,
            l3_misses: (user_instr * ru.l3_miss) as u64,
            l2_misses: (user_instr * ru.l2_miss) as u64,
            tc_misses: (user_instr * ru.tc_miss) as u64,
            tlb_misses: (user_instr * ru.tlb_miss) as u64,
            branch_mispredictions: (user_instr * ru.branch_mispred) as u64,
        };
        let os = SpaceCounts {
            instructions: os_instr as u64,
            cycles: (os_instr * self.avg_cpi_os(os_instr)) as u64,
            l3_misses: (os_instr * ro.l3_miss) as u64,
            l2_misses: (os_instr * ro.l2_miss) as u64,
            tc_misses: (os_instr * ro.tc_miss) as u64,
            tlb_misses: (os_instr * ro.tlb_miss) as u64,
            branch_mispredictions: (os_instr * ro.branch_mispred) as u64,
        };
        let _ = f;
        let dstats = self.disks.stats();
        Measurement {
            warehouses: self.config.workload.warehouses,
            clients: self.config.workload.clients,
            processors: self.config.system.processors,
            elapsed_seconds: elapsed_s,
            transactions,
            user,
            os,
            cpu_utilization: self.accounting.utilization(elapsed),
            os_busy_fraction: self.accounting.os_busy_fraction(),
            io_per_txn: IoPerTxn {
                read_kb: per_txn(dstats.read_bytes as f64 / 1024.0),
                log_write_kb: per_txn(dstats.log_bytes as f64 / 1024.0),
                page_write_kb: per_txn(dstats.page_bytes as f64 / 1024.0),
            },
            disk_reads_per_txn: per_txn(dstats.reads as f64),
            context_switches_per_txn: per_txn(self.runq.context_switches() as f64),
            bus_utilization: if bus_windows > 0 {
                bus_util_sum / bus_windows as f64
            } else {
                0.0
            },
            bus_transaction_cycles: if bus_windows > 0 {
                ioq_sum / bus_windows as f64
            } else {
                self.ioq_latency
            },
        }
    }

    /// Mean user CPI over the window, from accounted time (exact).
    fn avg_cpi_user(&self, user_instructions: f64) -> f64 {
        // Accounted busy time already equals instr × cpi / F per segment,
        // so cycles = busy_ns × F; divide by instructions for the mean.
        // Track via accounting: user cycles = user_ns * F / 1e9.
        let user_ns: f64 = self.user_busy_ns();
        if user_instructions > 0.0 {
            user_ns * self.config.system.frequency_hz / 1e9 / user_instructions
        } else {
            self.cpi_user
        }
    }

    fn avg_cpi_os(&self, os_instructions: f64) -> f64 {
        let os_ns = self.os_busy_ns();
        if os_instructions > 0.0 {
            os_ns * self.config.system.frequency_hz / 1e9 / os_instructions
        } else {
            self.cpi_os
        }
    }

    fn user_busy_ns(&self) -> f64 {
        (self.accounting.busy().as_nanos() as f64) * (1.0 - self.accounting.os_busy_fraction())
    }

    fn os_busy_ns(&self) -> f64 {
        (self.accounting.busy().as_nanos() as f64) * self.accounting.os_busy_fraction()
    }

    // ---- event handling ----

    fn handle(&mut self, ev: Event) -> Result<(), odb_core::Error> {
        match ev {
            Event::BurstDone { cpu, end } => self.burst_done(cpu, end)?,
            Event::IoDone { pid } => {
                self.procs[pid.0 as usize].pending_os_instructions +=
                    self.os_costs.io_complete_instructions;
                self.wake(pid)?;
            }
            Event::PageWriteDone => {
                if let Some(page) = self.db_writer.write_complete()? {
                    self.submit_page_write(page);
                }
            }
            Event::LogFlushStart => {
                if !self.log_writer.is_flushing() && self.log_writer.batch_len() > 0 {
                    let bytes = self.log_writer.begin_flush()?;
                    self.hub.emit(self.now, &SimEvent::FlushBegin { bytes });
                    self.bus_transactions_window += bytes as f64 / 64.0;
                    let done = self.disks.submit(
                        RequestKind::LogWrite,
                        0,
                        bytes,
                        self.now,
                        &mut self.rng,
                        &mut self.hub,
                    );
                    self.queue.schedule(done, Event::LogFlushDone);
                }
            }
            Event::LogFlushDone => {
                let (woken, more) = self.log_writer.flush_complete()?;
                self.hub
                    .emit(self.now, &SimEvent::FlushEnd { woken: woken.len() });
                for pid in woken {
                    self.complete_transaction(pid)?;
                    self.procs[pid.0 as usize].pending_os_instructions +=
                        self.os_costs.ipc_instructions;
                    let think = self.sample_think_time();
                    self.queue
                        .schedule(self.now + think, Event::ThinkDone { pid });
                }
                if more {
                    self.queue
                        .schedule(self.now + self.params.log_group_delay, Event::LogFlushStart);
                }
            }
            Event::BusTick => {
                let window_cycles = self.params.bus_window.as_secs_f64()
                    * self.config.system.frequency_hz;
                let obs = self.fsb.observe(BusWindow {
                    transactions: self.bus_transactions_window as u64,
                    window_cycles,
                });
                self.bus_transactions_window = 0.0;
                self.ioq_latency = obs.ioq_latency_cycles;
                self.cpi_user = self.rates.user.cpi(&self.costs, self.ioq_latency);
                self.cpi_os = self.rates.os.cpi(&self.costs, self.ioq_latency);
                self.hub.emit(
                    self.now,
                    &SimEvent::BusObserved {
                        utilization: obs.utilization,
                        ioq_latency_cycles: obs.ioq_latency_cycles,
                    },
                );
                self.queue
                    .schedule(self.now + self.params.bus_window, Event::BusTick);
            }
            Event::ThinkDone { pid } => self.wake(pid)?,
            Event::CheckpointTick => {
                // Age-based cold-dirty writeback: a page installed by a
                // write miss and untouched for `writeback_delay` is
                // written exactly once. Hot pages (stamp moved) are
                // dropped — they are either re-dirtied forever (and
                // coalesce, as the paper's §4.3 coalescing implies) or
                // leave through the eviction path.
                while let Some(&(page, stamp, due)) = self.pending_writebacks.front() {
                    if due > self.now {
                        break;
                    }
                    self.pending_writebacks.pop_front();
                    match self.buffer.dirty_stamp(page) {
                        Some(s) if s == stamp => {
                            // Write-cold: write it back once. A page that
                            // is somehow already clean (checkpoint ablation
                            // raced us) is simply dropped.
                            let was_dirty = self.buffer.mark_clean(page);
                            if was_dirty {
                                if let Some(p) = self.db_writer.enqueue(page) {
                                    self.submit_page_write(p);
                                }
                            }
                        }
                        Some(s) => {
                            // Still being written to: check again later
                            // (hot pages coalesce their writes; they are
                            // only written once they finally go cold).
                            self.pending_writebacks.push_back((
                                page,
                                s,
                                self.now + self.params.writeback_delay,
                            ));
                        }
                        None => {} // evicted; the eviction path wrote it
                    }
                }
                // Optional aggressive incremental checkpoint (ablation).
                if self.params.checkpoint_batch > 0 {
                    let scan = self.buffer.len() / 4;
                    for page in self
                        .buffer
                        .collect_dirty(self.params.checkpoint_batch, scan)
                    {
                        if let Some(p) = self.db_writer.enqueue(page) {
                            self.submit_page_write(p);
                        }
                    }
                }
                self.queue.schedule(
                    self.now + self.params.checkpoint_interval,
                    Event::CheckpointTick,
                );
            }
        }
        Ok(())
    }

    /// A process became runnable; dispatch it if a CPU is idle.
    fn wake(&mut self, pid: ProcessId) -> Result<(), odb_core::Error> {
        self.runq.make_ready(pid);
        for cpu in 0..self.runq.processors() {
            if self.runq.running_on(cpu).is_none() {
                self.try_dispatch(cpu)?;
                break;
            }
        }
        Ok(())
    }

    /// Dispatches the next ready process onto `cpu` and plans its burst.
    fn try_dispatch(&mut self, cpu: usize) -> Result<(), odb_core::Error> {
        if self.runq.running_on(cpu).is_some() {
            return Ok(());
        }
        if let Some(pid) = self.runq.dispatch(cpu, self.now, &mut self.hub) {
            self.plan_burst(cpu, pid)?;
        }
        Ok(())
    }

    fn burst_done(&mut self, cpu: usize, end: BurstEnd) -> Result<(), odb_core::Error> {
        match end {
            BurstEnd::IoWait | BurstEnd::LockWait | BurstEnd::CommitWait => {
                if self.runq.stop(cpu, StopReason::Blocked).is_none() {
                    return Err(odb_core::Error::corrupt(
                        "engine::system",
                        format!("burst completion on idle cpu {cpu}"),
                    ));
                }
                self.try_dispatch(cpu)?;
            }
            BurstEnd::Quantum => {
                let Some(pid) = self.runq.running_on(cpu) else {
                    return Err(odb_core::Error::corrupt(
                        "engine::system",
                        format!("quantum expiry on idle cpu {cpu}"),
                    ));
                };
                if self.runq.ready_len() > 0 {
                    self.runq.stop(cpu, StopReason::Preempted);
                    self.try_dispatch(cpu)?;
                } else {
                    // Alone on the CPU: keep running without a switch.
                    self.plan_burst(cpu, pid)?;
                }
            }
        }
        Ok(())
    }

    /// Plans the next execution burst for `pid` on `cpu`: advances the
    /// transaction state machine until it blocks, commits, or exhausts
    /// its timeslice, charging time as it goes, then schedules the
    /// matching [`Event::BurstDone`].
    fn plan_burst(&mut self, cpu: usize, pid: ProcessId) -> Result<(), odb_core::Error> {
        let quantum_ns = self.params.quantum.as_nanos() as f64;
        let mut elapsed_ns = 0.0f64;

        // Deferred kernel work first (I/O completion, wakeup processing).
        let pending = std::mem::take(&mut self.procs[pid.0 as usize].pending_os_instructions);
        if pending > 0 {
            elapsed_ns += self.charge_os(cpu, pending);
        }

        // A lock handover while asleep made this process the owner.
        if let Some(st) = self.procs[pid.0 as usize].txn.as_mut() {
            if st.lock_handover_pending {
                st.lock_handover_pending = false;
                st.locks_acquired += 1;
            }
        }

        let end = loop {
            if elapsed_ns >= quantum_ns {
                break BurstEnd::Quantum;
            }
            // Ensure there is a transaction in flight.
            if self.procs[pid.0 as usize].txn.is_none() {
                let mut txn = self.sampler.sample(&mut self.rng);
                txn.locks.sort_by_key(canonical_order);
                let touches = txn.touches.len().max(1) as u64;
                let instr_per_touch = txn.user_instructions / (touches + 1);
                let kind = txn.ty.index();
                self.procs[pid.0 as usize].txn = Some(TxnState {
                    txn,
                    next_touch: 0,
                    locks_acquired: 0,
                    instr_per_touch,
                    lock_handover_pending: false,
                    start: self.now,
                });
                self.hub
                    .emit(self.now, &SimEvent::TxnStarted { pid: pid.0, kind });
                // Per-transaction syscall overhead (client messaging).
                elapsed_ns += self.charge_os(cpu, self.os_costs.per_txn_syscall_instructions);
            }

            // Lock acquisition point reached?
            let (need_lock, lock_target) = {
                let st = Self::txn_state(&self.procs, pid)?;
                if st.next_touch >= st.txn.lock_acquire_index
                    && st.locks_acquired < st.txn.locks.len()
                {
                    (true, st.txn.locks[st.locks_acquired])
                } else {
                    (false, crate::txn::LockTarget::DistrictBlock(0))
                }
            };
            if need_lock {
                match self.locks.acquire(pid, lock_target) {
                    AcquireResult::Granted => {
                        Self::txn_state_mut(&mut self.procs, pid)?.locks_acquired += 1;
                        elapsed_ns += self.charge_os(cpu, self.os_costs.ipc_instructions / 2);
                        continue;
                    }
                    AcquireResult::Queued => {
                        Self::txn_state_mut(&mut self.procs, pid)?.lock_handover_pending = true;
                        self.hub.emit(self.now, &SimEvent::LockWait { pid: pid.0 });
                        break BurstEnd::LockWait;
                    }
                }
            }

            // Execute the next page touch, or commit.
            let (touch, instr) = {
                let st = Self::txn_state(&self.procs, pid)?;
                if st.next_touch < st.txn.touches.len() {
                    (Some(st.txn.touches[st.next_touch]), st.instr_per_touch)
                } else {
                    (None, st.instr_per_touch)
                }
            };
            match touch {
                Some(t) => {
                    elapsed_ns += self.charge_user(cpu, instr);
                    Self::txn_state_mut(&mut self.procs, pid)?.next_touch += 1;
                    let write = t.kind == TouchKind::Write;
                    match self.buffer.access(t.page, write) {
                        BufferAccess::Hit => {}
                        BufferAccess::Miss { evicted_dirty } => {
                            self.hub
                                .emit(self.now, &SimEvent::BufferMiss { page: t.page, write });
                            if let Some(victim) = evicted_dirty {
                                if let Some(page) = self.db_writer.enqueue(victim) {
                                    self.submit_page_write(page);
                                }
                            }
                            if write {
                                // Cold-dirty writeback candidate.
                                let Some(stamp) = self.buffer.dirty_stamp(t.page) else {
                                    return Err(odb_core::Error::corrupt(
                                        "engine::system",
                                        format!(
                                            "page {} vanished from the buffer pool \
                                             immediately after install",
                                            t.page
                                        ),
                                    ));
                                };
                                self.pending_writebacks.push_back((
                                    t.page,
                                    stamp,
                                    self.now + self.params.writeback_delay,
                                ));
                            }
                            if t.insert {
                                // Fresh tail block of an insert ring:
                                // write-allocate without reading the dead
                                // old contents from disk.
                                continue;
                            }
                            // Blocking read for the missed page.
                            elapsed_ns +=
                                self.charge_os(cpu, self.os_costs.io_submit_instructions);
                            self.bus_transactions_window += DMA_LINES_PER_PAGE;
                            let done = self.disks.submit(
                                RequestKind::Read,
                                t.page,
                                PAGE_BYTES,
                                self.now + SimTime::from_nanos_f64(elapsed_ns),
                                &mut self.rng,
                                &mut self.hub,
                            );
                            self.queue.schedule(done, Event::IoDone { pid });
                            break BurstEnd::IoWait;
                        }
                    }
                }
                None => {
                    // Commit: trailing user work, then the log decision.
                    elapsed_ns += self.charge_user(cpu, instr);
                    let (log_bytes, read_only) = {
                        let st = Self::txn_state(&self.procs, pid)?;
                        (st.txn.log_bytes, st.txn.locks.is_empty() && st.txn.dirty_pages() == 0)
                    };
                    if read_only {
                        // No redo to force: acknowledge the client and
                        // wait for its next request.
                        self.complete_transaction(pid)?;
                        let think = self.sample_think_time();
                        self.queue.schedule(
                            self.now + SimTime::from_nanos_f64(elapsed_ns) + think,
                            Event::ThinkDone { pid },
                        );
                        break BurstEnd::CommitWait;
                    }
                    elapsed_ns += self.charge_os(cpu, self.os_costs.ipc_instructions);
                    if self.log_writer.commit_request(pid, log_bytes) == CommitAction::StartFlush
                    {
                        self.queue.schedule(
                            self.now
                                + SimTime::from_nanos_f64(elapsed_ns)
                                + self.params.log_group_delay,
                            Event::LogFlushStart,
                        );
                    }
                    break BurstEnd::CommitWait;
                }
            }
        };
        self.queue.schedule(
            self.now + SimTime::from_nanos_f64(elapsed_ns),
            Event::BurstDone { cpu, end },
        );
        Ok(())
    }

    /// Looks up the in-flight transaction state for `pid`, reporting a
    /// [`corrupt state`](odb_core::Error::CorruptState) if the process
    /// was scheduled without one.
    fn txn_state(procs: &[Proc], pid: ProcessId) -> Result<&TxnState, odb_core::Error> {
        procs[pid.0 as usize].txn.as_ref().ok_or_else(|| {
            odb_core::Error::corrupt(
                "engine::system",
                format!("{pid:?} scheduled with no transaction in flight"),
            )
        })
    }

    /// Mutable companion to [`Self::txn_state`].
    fn txn_state_mut(
        procs: &mut [Proc],
        pid: ProcessId,
    ) -> Result<&mut TxnState, odb_core::Error> {
        procs[pid.0 as usize].txn.as_mut().ok_or_else(|| {
            odb_core::Error::corrupt(
                "engine::system",
                format!("{pid:?} scheduled with no transaction in flight"),
            )
        })
    }

    /// Finishes a committed (or read-only) transaction: releases locks,
    /// wakes lock waiters and counts the commit.
    fn complete_transaction(&mut self, pid: ProcessId) -> Result<(), odb_core::Error> {
        let Some(st) = self.procs[pid.0 as usize].txn.take() else {
            return Ok(());
        };
        let held = &st.txn.locks[..st.locks_acquired];
        let woken = self.locks.release_all(pid, held)?;
        // Announce the commit before waking waiters: a woken process may
        // itself start (or even complete) a transaction while handling
        // this event, and the commit happened first.
        self.hub.emit_with(self.now, || SimEvent::TxnCommitted {
            pid: pid.0,
            kind: st.txn.ty.index(),
            latency: self.now.saturating_since(st.start),
        });
        for waiter in woken {
            self.procs[waiter.0 as usize].pending_os_instructions +=
                self.os_costs.ipc_instructions;
            self.wake(waiter)?;
        }
        Ok(())
    }

    /// Draws an exponential think time with the configured mean.
    fn sample_think_time(&mut self) -> SimTime {
        if self.params.think_time_mean == SimTime::ZERO {
            return SimTime::ZERO;
        }
        let u: f64 = rand::Rng::gen_range(&mut self.rng, f64::MIN_POSITIVE..1.0);
        self.params.think_time_mean.mul_f64(-u.ln())
    }

    fn submit_page_write(&mut self, page: u64) {
        self.bus_transactions_window += DMA_LINES_PER_PAGE;
        let done = self.disks.submit(
            RequestKind::PageWrite,
            page,
            PAGE_BYTES,
            self.now,
            &mut self.rng,
            &mut self.hub,
        );
        self.queue.schedule(done, Event::PageWriteDone);
    }

    /// Charges `n` user instructions on `cpu`; returns elapsed ns.
    fn charge_user(&mut self, cpu: usize, n: u64) -> f64 {
        let ns = n as f64 * self.cpi_user / self.config.system.frequency_hz * 1e9;
        self.accounting
            .charge_user(cpu, SimTime::from_nanos_f64(ns));
        self.hub.emit(
            self.now,
            &SimEvent::Charged {
                os: false,
                instructions: n,
            },
        );
        self.bus_transactions_window += n as f64 * self.rates.user.bus_transactions_per_instr();
        ns
    }

    /// Charges `n` OS instructions on `cpu`; returns elapsed ns.
    fn charge_os(&mut self, cpu: usize, n: u64) -> f64 {
        let ns = n as f64 * self.cpi_os / self.config.system.frequency_hz * 1e9;
        self.accounting
            .charge_os(cpu, SimTime::from_nanos_f64(ns));
        self.hub.emit(
            self.now,
            &SimEvent::Charged {
                os: true,
                instructions: n,
            },
        );
        self.bus_transactions_window += n as f64 * self.rates.os.bus_transactions_per_instr();
        ns
    }

    /// Access to the run queue's counters (diagnostics, tests).
    pub fn context_switches(&self) -> u64 {
        self.runq.context_switches()
    }

    /// Buffer-cache statistics (diagnostics, tests).
    pub fn buffer_stats(&self) -> crate::buffer::BufferStats {
        self.buffer.stats()
    }

    /// Lock statistics (diagnostics, tests).
    pub fn lock_stats(&self) -> crate::locks::LockStats {
        self.locks.stats()
    }

    /// Checks the simulator's internal invariants without advancing time.
    ///
    /// This is the detection channel for corruptions that do not abort
    /// the event loop on their own — e.g. a NaN-poisoned sampling CDF,
    /// which sampling tolerates (clamping into the domain) but which
    /// silently skews the reference stream.
    ///
    /// # Errors
    ///
    /// Returns [`CorruptState`](odb_core::Error::CorruptState) naming the
    /// corrupted component.
    pub fn verify_invariants(&self) -> Result<(), odb_core::Error> {
        self.sampler.check_invariants()?;
        if let Some(inv) = self.hub.get::<crate::observe::InvariantObserver>() {
            inv.verify()?;
        }
        Ok(())
    }

    /// Deterministic RNG usage means identical seeds replay identically;
    /// exposed for tests.
    pub fn rates(&self) -> EventRates {
        self.rates
    }
}

/// A deliberate state corruption for the fault-injection harness.
///
/// Each variant names one invariant the simulator relies on; injecting
/// the fault breaks that invariant so tests can prove the violation
/// surfaces as a typed [`odb_core::Error`] instead of a process abort.
#[cfg(feature = "invariants")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently drop a held lock from the lock table, so the eventual
    /// release finds no trace of the acquisition.
    DropHeldLock,
    /// Discard an in-flight log flush, so its completion event finds no
    /// flush in flight.
    TruncateCommitBatch,
    /// Poison the transaction sampler's customer CDF with a NaN weight.
    PoisonCdf,
    /// Clear a busy CPU's running slot, desynchronising the run queue
    /// from the event calendar.
    DesyncRunQueue,
}

#[cfg(feature = "invariants")]
impl SystemSim {
    /// Injects `fault` into the live simulator state.
    ///
    /// Returns `true` if the corruption was applied; `false` if the
    /// current state has nothing to corrupt (no lock held, no flush in
    /// flight, no CPU busy) — callers should advance the simulation and
    /// retry. Only available with the `invariants` feature.
    pub fn inject_fault(&mut self, fault: Fault) -> bool {
        match fault {
            Fault::DropHeldLock => self.locks.inject_drop_any_held().is_some(),
            Fault::TruncateCommitBatch => self.log_writer.inject_truncate_batch(),
            Fault::PoisonCdf => self.sampler.inject_poison_cdf(),
            Fault::DesyncRunQueue => {
                (0..self.runq.processors())
                    .any(|cpu| self.runq.inject_clear_running(cpu).is_some())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::{SystemConfig, WorkloadConfig};
    use odb_memsim::rates::SpaceRates;

    fn flat_rates() -> EventRates {
        let user = SpaceRates {
            tc_miss: 0.004,
            l2_miss: 0.015,
            l3_miss: 0.006,
            l3_coherence_miss: 0.0001,
            l3_writeback: 0.0015,
            tlb_miss: 0.002,
            branch_mispred: 0.004,
            other_stall_cpi: 0.3,
        };
        let os = SpaceRates {
            l3_miss: 0.004,
            l2_miss: 0.010,
            ..user
        };
        EventRates { user, os }
    }

    fn sim(w: u32, c: u32, p: u32) -> SystemSim {
        let config = OltpConfig::new(
            WorkloadConfig::new(w, c).unwrap(),
            SystemConfig::xeon_quad().with_processors(p),
        )
        .unwrap();
        SystemSim::new(config, SystemParams::default(), flat_rates(), 42).unwrap()
    }

    fn run_measured(s: &mut SystemSim, warm_s: u64, measure_s: u64) -> Measurement {
        s.run_for(SimTime::from_secs(warm_s)).unwrap();
        s.reset_stats();
        s.run_for(SimTime::from_secs(measure_s)).unwrap();
        s.collect()
    }

    #[test]
    fn cached_setup_commits_with_high_utilization_and_no_reads() {
        let mut s = sim(10, 10, 4);
        let m = run_measured(&mut s, 1, 3);
        assert!(m.transactions > 1_000, "committed {}", m.transactions);
        assert!(m.cpu_utilization > 0.85, "util {}", m.cpu_utilization);
        assert!(
            m.disk_reads_per_txn < 0.2,
            "cached setup reads {} per txn",
            m.disk_reads_per_txn
        );
        // Write traffic is almost entirely log (§4.3).
        assert!(m.io_per_txn.log_write_kb > 3.0);
        assert!(m.io_per_txn.page_write_kb < m.io_per_txn.log_write_kb);
    }

    #[test]
    fn iron_law_self_consistency() {
        let mut s = sim(10, 10, 4);
        let m = run_measured(&mut s, 1, 3);
        let predicted = m.iron_law_tps(1.6e9);
        let actual = m.tps();
        let err = (predicted - actual).abs() / actual;
        assert!(err < 0.08, "iron law {predicted} vs measured {actual}");
    }

    #[test]
    fn large_w_reads_from_disk_and_switches_more() {
        let mut cached = sim(10, 10, 4);
        let mc = run_measured(&mut cached, 1, 3);
        let mut scaled = sim(400, 56, 4);
        let ms = run_measured(&mut scaled, 1, 3);
        assert!(
            ms.disk_reads_per_txn > mc.disk_reads_per_txn + 0.5,
            "scaled {} vs cached {}",
            ms.disk_reads_per_txn,
            mc.disk_reads_per_txn
        );
        assert!(ms.ipx_os() > mc.ipx_os(), "OS path grows with I/O");
        assert!(ms.io_per_txn.read_kb > 4.0);
    }

    #[test]
    fn user_ipx_is_flat_across_w() {
        let mut a = sim(10, 10, 4);
        let ma = run_measured(&mut a, 1, 3);
        let mut b = sim(400, 56, 4);
        let mb = run_measured(&mut b, 1, 3);
        let ratio = mb.ipx_user() / ma.ipx_user();
        assert!(
            (0.9..1.15).contains(&ratio),
            "user IPX should be flat: {} vs {}",
            ma.ipx_user(),
            mb.ipx_user()
        );
    }

    #[test]
    fn contention_at_small_w_raises_context_switches() {
        // Compare a tiny database against the low-contention, still-cached
        // region (Fig 8's dip sits between the contention spike and the
        // I/O-driven climb).
        let mut tiny = sim(2, 24, 4);
        let mt = run_measured(&mut tiny, 1, 3);
        let mut mid = sim(25, 24, 4);
        let mm = run_measured(&mut mid, 1, 3);
        assert!(
            mt.context_switches_per_txn > mm.context_switches_per_txn,
            "tiny-W contention: {} vs {}",
            mt.context_switches_per_txn,
            mm.context_switches_per_txn
        );
        assert!(tiny.lock_stats().conflict_ratio() > mid.lock_stats().conflict_ratio());
    }

    #[test]
    fn more_processors_give_more_throughput_when_cpu_bound() {
        let mut one = sim(10, 8, 1);
        let m1 = run_measured(&mut one, 1, 3);
        let mut four = sim(10, 10, 4);
        let m4 = run_measured(&mut four, 1, 3);
        let speedup = m4.tps() / m1.tps();
        assert!(
            speedup > 2.5,
            "4P should outrun 1P substantially: {speedup}"
        );
    }

    #[test]
    fn determinism() {
        let mut a = sim(50, 16, 2);
        let ma = run_measured(&mut a, 1, 2);
        let mut b = sim(50, 16, 2);
        let mb = run_measured(&mut b, 1, 2);
        assert_eq!(ma, mb);
    }

    #[test]
    fn log_bytes_per_txn_near_six_kb() {
        let mut s = sim(50, 16, 2);
        let m = run_measured(&mut s, 1, 3);
        assert!(
            (4.0..8.0).contains(&m.io_per_txn.log_write_kb),
            "log per txn {}",
            m.io_per_txn.log_write_kb
        );
    }

    #[test]
    fn think_time_caps_throughput_at_low_client_counts() {
        // With 2 clients and a ~4 ms think time, each client's cycle is
        // dominated by thinking: TPS is client-bound, CPUs sit idle.
        let mut few = sim(10, 2, 4);
        let mf = run_measured(&mut few, 1, 3);
        assert!(
            mf.cpu_utilization < 0.5,
            "2 thinking clients cannot saturate 4 CPUs: {}",
            mf.cpu_utilization
        );
        // Adding clients restores saturation.
        let mut many = sim(10, 24, 4);
        let mm = run_measured(&mut many, 1, 3);
        assert!(mm.cpu_utilization > 0.9, "util {}", mm.cpu_utilization);
        assert!(mm.tps() > 2.0 * mf.tps());
    }

    #[test]
    fn zero_think_time_saturates_with_p_clients() {
        let config = OltpConfig::new(
            WorkloadConfig::new(10, 5).unwrap(),
            SystemConfig::xeon_quad().with_processors(4),
        )
        .unwrap();
        let params = SystemParams {
            think_time_mean: SimTime::ZERO,
            ..SystemParams::default()
        };
        let mut s = SystemSim::new(config, params, flat_rates(), 42).unwrap();
        let m = run_measured(&mut s, 1, 2);
        // Five always-ready clients on four CPUs: essentially saturated
        // (commit waits still steal a little).
        assert!(m.cpu_utilization > 0.8, "util {}", m.cpu_utilization);
    }

    #[test]
    fn writeback_delay_controls_page_write_coalescing() {
        // A short delay writes cold pages sooner; an enormous delay
        // suppresses in-window page writes entirely.
        let config = |delay_ms: u64| {
            let c = OltpConfig::new(
                WorkloadConfig::new(200, 48).unwrap(),
                SystemConfig::xeon_quad(),
            )
            .unwrap();
            let params = SystemParams {
                writeback_delay: SimTime::from_millis(delay_ms),
                ..SystemParams::default()
            };
            SystemSim::new(c, params, flat_rates(), 42).unwrap()
        };
        let mut fast = config(300);
        let mfast = run_measured(&mut fast, 1, 3);
        let mut never = config(600_000);
        let mnever = run_measured(&mut never, 1, 3);
        assert!(
            mfast.io_per_txn.page_write_kb > 1.0,
            "short delay produces page writes: {}",
            mfast.io_per_txn.page_write_kb
        );
        assert!(
            mnever.io_per_txn.page_write_kb < 0.2,
            "huge delay coalesces everything in-window: {}",
            mnever.io_per_txn.page_write_kb
        );
    }

    #[test]
    fn checkpoint_ablation_adds_write_traffic() {
        let base = {
            let mut s = sim(200, 48, 4);
            run_measured(&mut s, 1, 3)
        };
        let config = OltpConfig::new(
            WorkloadConfig::new(200, 48).unwrap(),
            SystemConfig::xeon_quad(),
        )
        .unwrap();
        let params = SystemParams {
            checkpoint_batch: 256,
            ..SystemParams::default()
        };
        let mut aggressive = SystemSim::new(config, params, flat_rates(), 42).unwrap();
        let magg = run_measured(&mut aggressive, 1, 3);
        assert!(
            magg.io_per_txn.page_write_kb > base.io_per_txn.page_write_kb,
            "aggressive checkpointing front-loads writes: {} vs {}",
            magg.io_per_txn.page_write_kb,
            base.io_per_txn.page_write_kb
        );
    }

    #[test]
    fn payment_two_lock_chain_never_deadlocks() {
        // Payment takes warehouse then district; new-order takes district
        // only. At W=1 every transaction collides on the same two blocks;
        // ordered acquisition must still drain the workload.
        let mut s = sim(1, 16, 4);
        let m = run_measured(&mut s, 1, 3);
        assert!(
            m.transactions > 500,
            "single-warehouse lock storm must still commit: {}",
            m.transactions
        );
        assert!(s.lock_stats().conflict_ratio() > 0.3, "it IS a storm");
    }

    #[test]
    fn bus_utilization_grows_with_processors() {
        let mut one = sim(100, 10, 1);
        let m1 = run_measured(&mut one, 1, 2);
        let mut four = sim(100, 48, 4);
        let m4 = run_measured(&mut four, 1, 2);
        assert!(
            m4.bus_utilization > m1.bus_utilization * 1.5,
            "bus util 1P {} vs 4P {}",
            m1.bus_utilization,
            m4.bus_utilization
        );
        assert!(m4.bus_transaction_cycles > m1.bus_transaction_cycles);
    }
}
