//! The paper's qualitative findings, asserted against a reduced sweep.
//!
//! These are the claims EXPERIMENTS.md tracks quantitatively; here they
//! gate the build: if a change to any substrate breaks a *shape* — who
//! grows, who stays flat, where the knee sits — these tests fail.

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::metrics::Measurement;
use odb_core::pivot::TwoSegmentFit;
use odb_engine::{OdbSimulator, SimOptions};
use std::sync::OnceLock;

const LADDER: [u32; 6] = [10, 50, 100, 200, 400, 800];

/// Client counts close to the Table 1 ladder, fixed for reproducibility.
fn clients_for(w: u32, p: u32) -> u32 {
    match (w, p) {
        (w, 1) if w <= 100 => 8,
        (_, 1) => 13,
        (w, 4) if w <= 10 => 10,
        (w, 4) if w <= 50 => 32,
        (w, 4) if w <= 100 => 48,
        (w, 4) if w <= 500 => 56,
        _ => 64,
    }
}

fn measure(w: u32, p: u32) -> Measurement {
    let config = OltpConfig::new(
        WorkloadConfig::new(w, clients_for(w, p)).unwrap(),
        SystemConfig::xeon_quad().with_processors(p),
    )
    .unwrap();
    // Two characterize/simulate rounds: the OS-share feedback (which
    // drives the falling OS CPI of Fig 11) needs the second round.
    let mut options = SimOptions::quick();
    options.iterations = 2;
    OdbSimulator::new(config, options).unwrap().run().unwrap()
}

/// The sweep is shared across tests (it is the expensive part).
fn sweep() -> &'static Vec<(u32, u32, Measurement)> {
    static SWEEP: OnceLock<Vec<(u32, u32, Measurement)>> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let mut rows = Vec::new();
        for &p in &[1u32, 4] {
            for &w in &LADDER {
                rows.push((p, w, measure(w, p)));
            }
        }
        rows
    })
}

fn series(p: u32, f: impl Fn(&Measurement) -> f64) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = LADDER.iter().map(|&w| w as f64).collect();
    let ys: Vec<f64> = sweep()
        .iter()
        .filter(|(rp, _, _)| *rp == p)
        .map(|(_, _, m)| f(m))
        .collect();
    (xs, ys)
}

#[test]
fn tps_peaks_cached_and_decreases_with_w() {
    for p in [1u32, 4] {
        let (_, tps) = series(p, |m| m.tps());
        assert!(
            tps[0] > *tps.last().unwrap() * 1.5,
            "{p}P: TPS must fall from cached to scaled: {tps:?}"
        );
    }
    // More processors help everywhere.
    let (_, t1) = series(1, |m| m.tps());
    let (_, t4) = series(4, |m| m.tps());
    for (a, b) in t1.iter().zip(&t4) {
        assert!(b > a, "4P must outrun 1P");
    }
}

#[test]
fn user_ipx_flat_os_ipx_grows() {
    let (_, user) = series(4, |m| m.ipx_user());
    let spread = (user.iter().cloned().fold(f64::MIN, f64::max)
        - user.iter().cloned().fold(f64::MAX, f64::min))
        / user[0];
    assert!(spread < 0.15, "user IPX must stay flat, spread {spread:.2}");
    let (_, os) = series(4, |m| m.ipx_os());
    assert!(
        *os.last().unwrap() > os[0] * 2.0,
        "OS IPX must grow substantially with W: {os:?}"
    );
}

#[test]
fn cpi_has_two_regions_with_pivot_near_100w() {
    let (xs, ys) = series(4, |m| m.cpi());
    assert!(ys.windows(2).all(|w| w[1] > w[0] * 0.98), "CPI rises: {ys:?}");
    let fit = TwoSegmentFit::fit(&xs, &ys).unwrap();
    assert!(
        fit.cached.slope > 2.0 * fit.scaled.slope,
        "cached region must be much steeper: {:.5} vs {:.5}",
        fit.cached.slope,
        fit.scaled.slope
    );
    let pivot = fit.pivot().expect("regions intersect");
    assert!(
        (40.0..350.0).contains(&pivot.x),
        "CPI pivot at {:.0} W; the paper reports 119-142",
        pivot.x
    );
}

#[test]
fn mpi_is_roughly_processor_independent() {
    let (_, m1) = series(1, |m| m.mpi());
    let (_, m4) = series(4, |m| m.mpi());
    for ((w, a), b) in LADDER.iter().zip(&m1).zip(&m4) {
        let ratio = b / a;
        assert!(
            (0.8..1.35).contains(&ratio),
            "MPI at {w}W should not scale with P: 1P {a:.5} vs 4P {b:.5}"
        );
    }
    // ...but it must grow with W, saturating (scaled region flatter).
    let (xs, ys) = series(4, |m| m.mpi());
    assert!(ys.last().unwrap() > &(ys[0] * 1.5), "MPI grows with W");
    let fit = TwoSegmentFit::fit(&xs, &ys).unwrap();
    assert!(fit.cached.slope > fit.scaled.slope);
}

#[test]
fn bus_latency_grows_with_p_but_not_much_with_w_at_1p() {
    let (_, ioq1) = series(1, |m| m.bus_transaction_cycles);
    let (_, ioq4) = series(4, |m| m.bus_transaction_cycles);
    // 1P stays near the unloaded 102-cycle baseline across all W.
    for v in &ioq1 {
        assert!((102.0..118.0).contains(v), "1P IOQ ~flat, got {v}");
    }
    // 4P is visibly inflated everywhere.
    for (a, b) in ioq1.iter().zip(&ioq4) {
        assert!(b > &(a + 15.0), "4P IOQ must exceed 1P: {a} vs {b}");
    }
}

#[test]
fn os_cpi_falls_while_user_cpi_rises() {
    let (_, user) = series(4, |m| m.cpi_user());
    let (_, os) = series(4, |m| m.cpi_os());
    assert!(user.last().unwrap() > &(user[0] * 1.3), "user CPI rises");
    assert!(os.last().unwrap() < &os[0], "OS CPI falls with W: {os:?}");
}

#[test]
fn io_profile_matches_figure_7() {
    let rows: Vec<&Measurement> = sweep()
        .iter()
        .filter(|(p, _, _)| *p == 4)
        .map(|(_, _, m)| m)
        .collect();
    // Log volume flat (~5-6 KB) across the board.
    for m in &rows {
        assert!(
            (4.0..8.0).contains(&m.io_per_txn.log_write_kb),
            "log stays ~6 KB/txn, got {}",
            m.io_per_txn.log_write_kb
        );
    }
    // Reads negligible at 10 W, substantial at 800 W.
    assert!(rows[0].disk_reads_per_txn < 0.2);
    assert!(rows.last().unwrap().disk_reads_per_txn > 1.0);
    // Page writes absent in the cached region, present at scale. (Quick
    // runs have short windows, so assert presence, not magnitude.)
    assert_eq!(rows[0].io_per_txn.page_write_kb, 0.0);
    assert!(rows.last().unwrap().io_per_txn.page_write_kb > 0.5);
}

#[test]
fn context_switches_track_reads_beyond_the_cached_region() {
    let rows: Vec<&Measurement> = sweep()
        .iter()
        .filter(|(p, _, _)| *p == 4)
        .map(|(_, _, m)| m)
        .collect();
    // Monotone climb with I/O past 100 W (the paper's correlation).
    let tail: Vec<f64> = rows[2..]
        .iter()
        .map(|m| m.context_switches_per_txn)
        .collect();
    assert!(
        tail.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "cs/txn climbs with I/O: {tail:?}"
    );
    assert!(tail.last().unwrap() > &(rows[1].context_switches_per_txn * 1.4));
}
