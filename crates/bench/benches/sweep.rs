//! The sweep wall-clock benchmark: the perf baseline the repo ratchets
//! against.
//!
//! Times the full 27-point `paper_ladder()` sweep at quick and standard
//! fidelity, each at `jobs = 1` and `jobs = N`, asserts that the
//! parallel and sequential quick sweeps are **byte-identical** (the
//! determinism smoke test CI leans on), and emits `BENCH_sweep.json`
//! with per-phase wall-clock (`phase_seconds`: characterize vs engine
//! DES) per entry plus the `refs_per_sec` substrate microbenches (the
//! three-level hierarchy walk and the Zipf draw path).
//!
//! A baseline whose `host_cores` is 1 is refused when the output lands
//! in `results/` (the parallel-speedup ratchet would be vacuous) unless
//! `ODB_BENCH_ALLOW_1CORE=1` is set.
//! Two optional gates, both exiting nonzero on failure:
//!
//! * `--min-speedup RATIO` — host-relative, computed within this run:
//!   every fidelity's `jobs = 1` vs `jobs = N` speedup must reach
//!   `RATIO`. Robust across machines; the gate CI runs on multi-core
//!   hosts.
//! * `--baseline FILE --max-regress FRACTION` (default 25%) — absolute
//!   wall-clock ratchet against a recorded baseline. Only meaningful on
//!   the machine that recorded the baseline, so it is opt-in.
//!
//! Not a criterion bench on purpose: the measured unit is minutes-long
//! and run once, and the artifact (a small JSON file with absolute
//! wall-clock seconds and the host core count) is the deliverable.
//!
//! ```text
//! cargo bench -p odb-bench --bench sweep -- \
//!     [--quick-only] [--jobs N] [--out FILE] [--min-speedup RATIO] \
//!     [--baseline FILE] [--max-regress FRACTION]
//! ```

use odb_bench::harness::{black_box, measure_ns};
use odb_core::config::SystemConfig;
use odb_engine::PhaseSeconds;
use odb_experiments::persist::sweep_to_csv;
use odb_experiments::runner::{Sweep, SweepOptions};
use odb_memsim::dist::Zipf;
use odb_memsim::hierarchy::{CpuHierarchy, Space};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// One timed sweep configuration.
struct Entry {
    sweep: &'static str,
    jobs: usize,
    points: usize,
    seconds: f64,
    /// Wall-clock per simulation phase, summed over the sweep's rows
    /// (probe runs included) — tells future perf work which phase to
    /// ratchet.
    phase: PhaseSeconds,
}

/// The `refs_per_sec` throughput microbenches: the two per-reference
/// code paths the characterization hot loop is made of, reported as
/// references (draws) per second so the artifact captures substrate
/// throughput alongside end-to-end sweep wall-clock.
fn refs_per_sec() -> Vec<(&'static str, f64)> {
    let zipf = Zipf::new(1 << 16, 0.9).expect("zipf");
    // Three-level hierarchy walk: L1→L2→L3 data reference with a
    // Zipf-distributed address stream, the shape `trace.rs` drives.
    let mut hierarchy = CpuHierarchy::new(&SystemConfig::xeon_quad()).expect("hierarchy");
    let mut rng = SmallRng::seed_from_u64(0xBE_11C4);
    let (walk_ns, _) = measure_ns(|| {
        let addr = zipf.sample(&mut rng) * 64;
        black_box(hierarchy.access_data(addr, false, Space::User))
    });
    // The Zipf draw alone: accelerated CDF search plus RNG.
    let mut rng = SmallRng::seed_from_u64(0xD1_57);
    let (draw_ns, _) = measure_ns(|| black_box(zipf.sample(&mut rng)));
    vec![
        ("hierarchy_walk", 1e9 / walk_ns.max(1e-3)),
        ("zipf_draw", 1e9 / draw_ns.max(1e-3)),
    ]
}

/// Resolves `--out` / `--baseline` paths: `cargo bench` runs this
/// binary with CWD = `crates/bench`, so a relative path would silently
/// land (or fail to resolve) under the package directory. Relative
/// paths are therefore anchored at the workspace root, where `ci.sh`,
/// `results/` and `target/` live.
fn workspace_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

/// The value of flag `args[i]`, or exit 2 — a typo must not silently
/// benchmark at an unintended configuration.
fn value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i).map(String::as_str).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

/// Same, parsed; garbage exits 2 (mirrors the odb-experiments CLI).
fn parsed<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let raw = value(args, i, flag);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick_only = false;
    let mut jobs: Option<usize> = None;
    let mut out = String::from("BENCH_sweep.json");
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.25f64;
    let mut min_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick-only" => quick_only = true,
            "--jobs" => {
                i += 1;
                match parsed::<usize>(&args, i, "--jobs") {
                    0 => {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    }
                    n => jobs = Some(n),
                }
            }
            "--out" => {
                i += 1;
                out = value(&args, i, "--out").to_owned();
            }
            "--baseline" => {
                i += 1;
                baseline = Some(value(&args, i, "--baseline").to_owned());
            }
            "--max-regress" => {
                i += 1;
                max_regress = parsed(&args, i, "--max-regress");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(parsed(&args, i, "--min-speedup"));
            }
            // `cargo bench` forwards its own harness flags; ignore them.
            "--bench" => {}
            arg => {
                eprintln!("unknown argument `{arg}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let jobs_n = jobs.unwrap_or(host_cores).max(1);
    let out_path = workspace_path(&out);
    // A baseline recorded on a 1-core host is worse than none: jobs=N
    // can only tie jobs=1, so the checked-in `--min-speedup` ratchet
    // becomes vacuous (the seed baseline showed speedup 0.818). Refuse
    // to record one into `results/` — the ratchet's home — unless the
    // operator explicitly insists; checked before the minutes-long
    // sweep so the refusal is cheap. `target/` scratch output (what
    // `ci.sh` writes) is unaffected.
    if host_cores == 1
        && out_path.starts_with(workspace_path("results"))
        && std::env::var("ODB_BENCH_ALLOW_1CORE").as_deref() != Ok("1")
    {
        eprintln!(
            "refusing to record a host_cores=1 baseline at {}: \
             the parallel-speedup ratchet would be vacuous. \
             Rerun on a multi-core host, or set ODB_BENCH_ALLOW_1CORE=1 \
             to record it anyway.",
            out_path.display()
        );
        std::process::exit(1);
    }

    let system = SystemConfig::xeon_quad();
    let mut entries: Vec<Entry> = Vec::new();
    let fidelities: &[(&'static str, SweepOptions)] = &if quick_only {
        vec![("quick", SweepOptions::quick())]
    } else {
        vec![
            ("quick", SweepOptions::quick()),
            ("standard", SweepOptions::standard()),
        ]
    };

    for (name, options) in fidelities {
        let mut csv_sequential = None;
        for &j in &[1usize, jobs_n] {
            eprintln!("timing the {name} sweep at jobs={j}...");
            let started = Instant::now();
            let sweep = Sweep::run(&system, &options.clone().with_jobs(j));
            sweep.ensure_complete().expect("sweep failed");
            let seconds = started.elapsed().as_secs_f64();
            eprintln!("  {:.1}s for {} points", seconds, sweep.len());
            let csv = sweep_to_csv(&sweep);
            match &csv_sequential {
                None => csv_sequential = Some(csv),
                Some(reference) => assert_eq!(
                    reference, &csv,
                    "jobs={j} {name} sweep is not byte-identical to jobs=1"
                ),
            }
            let mut phase = PhaseSeconds::default();
            for row in sweep.iter() {
                phase.accumulate(&row.phase_seconds);
            }
            entries.push(Entry {
                sweep: name,
                jobs: j,
                points: sweep.len(),
                seconds,
                phase,
            });
            if jobs_n == 1 {
                break; // jobs=N would repeat the jobs=1 measurement
            }
        }
    }

    eprintln!("timing the refs_per_sec microbenches...");
    let rates = refs_per_sec();
    for (name, rate) in &rates {
        eprintln!("  {name}: {rate:.0} refs/s");
    }

    let json = render_json(host_cores, jobs_n, &entries, &rates);
    if let Some(parent) = out_path.parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    eprintln!("wrote {}", out_path.display());
    print!("{json}");

    // Host-relative gate: computed entirely within this run, so it is
    // meaningful on any machine (unlike the absolute baseline below).
    if let Some(min) = min_speedup {
        if jobs_n == 1 {
            eprintln!("--min-speedup ignored: jobs=1 measures no parallel sweep");
        }
        let mut failed = false;
        for (name, _) in fidelities {
            let time_at = |jobs: usize| {
                entries
                    .iter()
                    .find(|e| e.sweep == *name && e.jobs == jobs)
                    .map(|e| e.seconds)
            };
            if let (Some(seq), Some(par)) = (time_at(1), time_at(jobs_n)) {
                if jobs_n > 1 && par > 0.0 {
                    let speedup = seq / par;
                    let verdict = if speedup < min { "TOO SLOW" } else { "ok" };
                    eprintln!(
                        "{name}: jobs={jobs_n} speedup {speedup:.2}x (floor {min:.2}x) — {verdict}"
                    );
                    failed |= speedup < min;
                }
            }
        }
        if failed {
            eprintln!("parallel sweep speedup fell below the {min:.2}x floor");
            std::process::exit(1);
        }
    }

    if let Some(path) = baseline {
        let path = workspace_path(&path);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let mut failed = false;
        for entry in &entries {
            let Some(base) = baseline_seconds(&text, entry.sweep, entry.jobs) else {
                eprintln!(
                    "baseline has no entry for {} jobs={}; skipping",
                    entry.sweep, entry.jobs
                );
                continue;
            };
            let limit = base * (1.0 + max_regress);
            let verdict = if entry.seconds > limit { "REGRESSED" } else { "ok" };
            eprintln!(
                "{} jobs={}: {:.1}s vs baseline {:.1}s (limit {:.1}s) — {verdict}",
                entry.sweep, entry.jobs, entry.seconds, base, limit
            );
            failed |= entry.seconds > limit;
        }
        if failed {
            eprintln!(
                "sweep wall-clock regressed by more than {:.0}% against {}",
                max_regress * 100.0,
                path.display()
            );
            std::process::exit(1);
        }
    }
}

/// Renders the artifact: one entry object per line so the parser below
/// (and humans diffing the checked-in baseline) can work line-by-line.
fn render_json(
    host_cores: usize,
    jobs_n: usize,
    entries: &[Entry],
    rates: &[(&'static str, f64)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"odb-bench-sweep-v1\",\n");
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!("  \"jobs_n\": {jobs_n},\n"));
    if host_cores == 1 {
        // On a 1-core host jobs=N can only tie jobs=1, so the recorded
        // speedups verify nothing. Stamp the artifact so downstream
        // readers (and ci.sh) can tell a vacuous baseline from a real one.
        s.push_str("  \"parallel_unverified\": true,\n");
    }
    s.push_str("  \"refs_per_sec\": {");
    for (i, (name, rate)) in rates.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{name}\": {rate:.0}"));
    }
    s.push_str("},\n");
    for (fidelity, key) in [("quick", "speedup_quick"), ("standard", "speedup_standard")] {
        let time_at = |jobs: usize| {
            entries
                .iter()
                .find(|e| e.sweep == fidelity && e.jobs == jobs)
                .map(|e| e.seconds)
        };
        if let (Some(seq), Some(par)) = (time_at(1), time_at(jobs_n)) {
            if jobs_n > 1 && par > 0.0 {
                s.push_str(&format!("  \"{key}\": {:.3},\n", seq / par));
            }
        }
    }
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"sweep\": \"{}\", \"jobs\": {}, \"points\": {}, \"seconds\": {:.3}, \
             \"phase_seconds\": {{\"characterize\": {:.3}, \"engine\": {:.3}}}}}{}\n",
            e.sweep,
            e.jobs,
            e.points,
            e.seconds,
            e.phase.characterize,
            e.phase.engine,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `seconds` for an `(sweep, jobs)` entry out of a baseline file
/// written by [`render_json`] (one entry per line — no JSON dependency
/// in this no-network workspace).
fn baseline_seconds(text: &str, sweep: &str, jobs: usize) -> Option<f64> {
    let sweep_tag = format!("\"sweep\": \"{sweep}\"");
    let jobs_tag = format!("\"jobs\": {jobs},");
    for line in text.lines() {
        if line.contains(&sweep_tag) && line.contains(&jobs_tag) {
            let rest = line.split("\"seconds\":").nth(1)?;
            let num: String = rest
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return num.parse().ok();
        }
    }
    None
}
