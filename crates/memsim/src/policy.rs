//! Replacement policies for the set-associative caches.
//!
//! The paper's closing research agenda (§7) calls for "more efficient use
//! of the limited L3 capacity, through more judicious and specialized
//! caching schemes". This module provides the mechanism to explore that
//! agenda: pluggable victim selection for [`crate::cache::SetAssocCache`],
//! from the baseline true-LRU up to the kind of scheme the paper hints
//! at — protecting a slice of each set for high-reuse lines so that the
//! streaming database-buffer traffic cannot flush the hot metadata and
//! code that would have been reused.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Victim-selection policy for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the baseline everywhere).
    Lru,
    /// First-in-first-out by fill time: ignores reuse entirely.
    Fifo,
    /// Uniform-random victim (cheap hardware, used by several real L2s).
    Random,
    /// Not-recently-used with a single reference bit per line: the
    /// classic clock-style approximation of LRU.
    Nru,
    /// LRU insertion-policy hybrid (LIP/BIP-style "judicious caching"):
    /// new lines are inserted at the *LRU* position except for an
    /// occasional promotion, so a streaming scan evicts itself instead of
    /// flushing the reused working set — the §7 "specialized caching
    /// scheme" direction.
    StreamResistant,
}

impl ReplacementPolicy {
    /// Every policy, baseline first.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::Nru,
        ReplacementPolicy::StreamResistant,
    ];

    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::Nru => "NRU",
            ReplacementPolicy::StreamResistant => "stream-resistant",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cache policy state (victim selection + metadata updates).
///
/// The cache stores one logical timestamp per line (its `stamp`); the
/// policy decides how stamps are assigned so that "evict the minimum
/// stamp" implements each strategy with the same mechanics:
///
/// * LRU — stamp = access clock on every touch;
/// * FIFO — stamp = fill clock, never refreshed;
/// * Random — stamp = random draw on fill, never refreshed;
/// * NRU — stamp ∈ {0, 1}: set on touch, periodically cleared;
/// * StreamResistant — fills get stamp 0 (immediate victim candidates),
///   hits promote to the access clock; 1/32 of fills are promoted
///   immediately (BIP's thermal escape so a new working set can take
///   over).
#[derive(Debug, Clone)]
pub struct PolicyState {
    policy: ReplacementPolicy,
    rng: SmallRng,
    /// NRU clear interval bookkeeping.
    accesses_since_clear: u64,
}

/// NRU reference bits are cleared every this many accesses.
const NRU_CLEAR_INTERVAL: u64 = 4_096;
/// StreamResistant promotes one in this many fills to MRU.
const BIP_PROMOTE_ONE_IN: u32 = 32;

impl PolicyState {
    /// State for `policy`, seeded deterministically.
    pub fn new(policy: ReplacementPolicy) -> Self {
        Self {
            policy,
            // The policy stream is fixed by design so a given geometry
            // replays identically across points; rekeying it would change
            // every checked-in artifact.
            // odb-analyzer: allow(rng_discipline)
            rng: SmallRng::seed_from_u64(0x9E37_79B9),
            accesses_since_clear: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The stamp a *newly filled* line receives at logical time `clock`.
    pub fn fill_stamp(&mut self, clock: u64) -> u64 {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => clock,
            ReplacementPolicy::Random => self.rng.gen(),
            ReplacementPolicy::Nru => 1,
            ReplacementPolicy::StreamResistant => {
                if self.rng.gen_ratio(1, BIP_PROMOTE_ONE_IN) {
                    clock
                } else {
                    0
                }
            }
        }
    }

    /// The stamp a line receives when *touched* (hit) at `clock`;
    /// `None` leaves the stamp unchanged.
    pub fn touch_stamp(&mut self, clock: u64) -> Option<u64> {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::StreamResistant => Some(clock),
            ReplacementPolicy::Fifo | ReplacementPolicy::Random => None,
            ReplacementPolicy::Nru => Some(1),
        }
    }

    /// Called once per access: `true` when all reference stamps should be
    /// cleared to zero (NRU's periodic reset).
    pub fn should_clear_stamps(&mut self) -> bool {
        if self.policy != ReplacementPolicy::Nru {
            return false;
        }
        self.accesses_since_clear += 1;
        if self.accesses_since_clear >= NRU_CLEAR_INTERVAL {
            self.accesses_since_clear = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_display_works() {
        let mut names: Vec<&str> = ReplacementPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ReplacementPolicy::ALL.len());
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
    }

    #[test]
    fn lru_refreshes_fifo_does_not() {
        let mut lru = PolicyState::new(ReplacementPolicy::Lru);
        assert_eq!(lru.fill_stamp(7), 7);
        assert_eq!(lru.touch_stamp(9), Some(9));
        let mut fifo = PolicyState::new(ReplacementPolicy::Fifo);
        assert_eq!(fifo.fill_stamp(7), 7);
        assert_eq!(fifo.touch_stamp(9), None);
    }

    #[test]
    fn nru_clears_periodically() {
        let mut nru = PolicyState::new(ReplacementPolicy::Nru);
        assert_eq!(nru.touch_stamp(123), Some(1));
        let mut clears = 0;
        for _ in 0..(3 * NRU_CLEAR_INTERVAL) {
            if nru.should_clear_stamps() {
                clears += 1;
            }
        }
        assert_eq!(clears, 3);
        // Other policies never request a clear.
        let mut lru = PolicyState::new(ReplacementPolicy::Lru);
        assert!((0..10_000).all(|_| !lru.should_clear_stamps()));
    }

    #[test]
    fn stream_resistant_inserts_cold_with_rare_promotions() {
        let mut p = PolicyState::new(ReplacementPolicy::StreamResistant);
        let mut promoted = 0;
        let n = 10_000;
        for _ in 0..n {
            if p.fill_stamp(1_000) != 0 {
                promoted += 1;
            }
        }
        let rate = promoted as f64 / n as f64;
        let expected = 1.0 / BIP_PROMOTE_ONE_IN as f64;
        assert!(
            (rate - expected).abs() < expected,
            "promotion rate {rate} vs expected {expected}"
        );
        // Hits still promote to MRU (that is the LIP part).
        assert_eq!(p.touch_stamp(555), Some(555));
    }

    #[test]
    fn random_fill_stamps_vary() {
        let mut p = PolicyState::new(ReplacementPolicy::Random);
        let a = p.fill_stamp(1);
        let b = p.fill_stamp(1);
        let c = p.fill_stamp(1);
        assert!(a != b || b != c, "random stamps should differ");
        assert_eq!(p.touch_stamp(9), None);
    }
}
