//! The panic-site burn-down baseline.
//!
//! `crates/analyzer/baseline.toml` records how many non-test panic sites
//! each audited crate is *allowed* to have. The gate fails when a crate
//! grows beyond its entry (ratchet up is forbidden); shrinking below it
//! produces a friendly notice to re-run `--update-baseline` so the
//! ratchet tightens. The file is a single `[panic_sites]` table of
//! `crate = count` pairs, parsed here without a TOML dependency.

use crate::report::Violation;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Allowed panic-site counts per audited crate.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// Why a baseline could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file does not exist (first run).
    Missing,
    /// The file exists but is not a valid baseline.
    Malformed(String),
}

impl Baseline {
    /// Reads and parses the baseline file.
    ///
    /// # Errors
    ///
    /// [`LoadError::Missing`] when the file is absent;
    /// [`LoadError::Malformed`] on unreadable or unparsable content.
    pub fn load(path: &Path) -> Result<Baseline, LoadError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
            Err(e) => return Err(LoadError::Malformed(format!("read error: {e}"))),
        };
        Self::parse(&text)
    }

    /// Parses baseline text: comments, blank lines, a `[panic_sites]`
    /// header, then `name = count` pairs.
    pub fn parse(text: &str) -> Result<Baseline, LoadError> {
        let mut counts = BTreeMap::new();
        let mut in_section = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[panic_sites]";
                if !in_section {
                    return Err(LoadError::Malformed(format!(
                        "line {}: unknown section {line}",
                        n + 1
                    )));
                }
                continue;
            }
            if !in_section {
                return Err(LoadError::Malformed(format!(
                    "line {}: entry before [panic_sites] header",
                    n + 1
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(LoadError::Malformed(format!(
                    "line {}: expected `crate = count`, got {line:?}",
                    n + 1
                )));
            };
            let key = key.trim().trim_matches('"').to_owned();
            let count: usize = value.trim().parse().map_err(|e| {
                LoadError::Malformed(format!("line {}: bad count {:?}: {e}", n + 1, value.trim()))
            })?;
            if counts.insert(key.clone(), count).is_some() {
                return Err(LoadError::Malformed(format!(
                    "line {}: duplicate entry for `{key}`",
                    n + 1
                )));
            }
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline from freshly measured counts.
    pub fn from_counts(counts: &[(String, usize)]) -> Baseline {
        Baseline {
            counts: counts.iter().cloned().collect(),
        }
    }

    /// The allowed count for `krate` (0 when the crate has no entry).
    pub fn allowed(&self, krate: &str) -> usize {
        self.counts.get(krate).copied().unwrap_or(0)
    }

    /// Holds measured `counts` against the baseline: growth is a
    /// violation, shrinkage a notice suggesting `--update-baseline`.
    pub fn check(
        &self,
        counts: &[(String, usize)],
        violations: &mut Vec<Violation>,
        notices: &mut Vec<String>,
    ) {
        for (krate, actual) in counts {
            let allowed = self.allowed(krate);
            if *actual > allowed {
                violations.push(Violation::baseline(format!(
                    "crate `{krate}` has {actual} non-test panic site(s), baseline allows \
                     {allowed}; remove the new unwrap()/expect()/panic! (run with \
                     --verbose to list every counted site) or annotate a justified one \
                     with `// analyzer:allow(panic)`"
                )));
            } else if *actual < allowed {
                notices.push(format!(
                    "crate `{krate}` is down to {actual} panic site(s) (baseline {allowed}); \
                     run `cargo run -p odb-analyzer -- --update-baseline` to ratchet down"
                ));
            }
        }
    }

    /// Serialises to the on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-site burn-down baseline. Maintained by `odb-analyzer`:\n\
             # counts may only go DOWN; regenerate with\n\
             #   cargo run -p odb-analyzer -- --update-baseline\n\
             \n[panic_sites]\n",
        );
        for (krate, count) in &self.counts {
            out.push_str(&format!("{krate} = {count}\n"));
        }
        out
    }

    /// Writes the baseline file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let base = Baseline::from_counts(&[("core".into(), 0), ("engine".into(), 12)]);
        let text = base.render();
        let again = Baseline::parse(&text).expect("roundtrip parses");
        assert_eq!(again.allowed("core"), 0);
        assert_eq!(again.allowed("engine"), 12);
        assert_eq!(again.allowed("absent"), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Baseline::parse("core = 1"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[other]\ncore = 1"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[panic_sites]\ncore = banana"),
            Err(LoadError::Malformed(_))
        ));
        assert!(matches!(
            Baseline::parse("[panic_sites]\ncore = 1\ncore = 2"),
            Err(LoadError::Malformed(_))
        ));
    }

    #[test]
    fn check_flags_growth_and_notices_shrinkage() {
        let base = Baseline::parse("[panic_sites]\ncore = 2\nengine = 5\n").expect("parses");
        let mut violations = Vec::new();
        let mut notices = Vec::new();
        base.check(
            &[("core".into(), 3), ("engine".into(), 4)],
            &mut violations,
            &mut notices,
        );
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("`core`"));
        assert_eq!(notices.len(), 1);
        assert!(notices[0].contains("`engine`"));
    }
}
