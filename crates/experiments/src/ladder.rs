//! The configuration ladders of the paper's evaluation.

/// Warehouse counts the paper sweeps (Figs 2–16 use 10–800 with the
/// 1200 W point shown only as the I/O-bound exemplar of Fig 2).
pub const WAREHOUSES: [u32; 9] = [10, 25, 50, 100, 200, 300, 500, 800, 1200];

/// Warehouse counts used for trend analysis (≥90% utilization region —
/// the paper excludes 1200 W from everything after Fig 2).
pub const TREND_WAREHOUSES: [u32; 8] = [10, 25, 50, 100, 200, 300, 500, 800];

/// Processor counts of the study.
pub const PROCESSORS: [u32; 3] = [1, 2, 4];

/// Table 1's client search space: 1..=64 concurrent clients.
pub const MAX_CLIENTS: u32 = 64;

/// Candidate client counts tried by the utilization search, ascending.
pub const CLIENT_GRID: [u32; 16] = [1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64];

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigPoint {
    /// Warehouses.
    pub warehouses: u32,
    /// Processors.
    pub processors: u32,
}

/// The full `(W, P)` grid in deterministic order.
pub fn paper_ladder() -> Vec<ConfigPoint> {
    let mut points = Vec::with_capacity(WAREHOUSES.len() * PROCESSORS.len());
    for &p in &PROCESSORS {
        for &w in &WAREHOUSES {
            points.push(ConfigPoint {
                warehouses: w,
                processors: p,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_grid_in_order() {
        let l = paper_ladder();
        assert_eq!(l.len(), 27);
        assert_eq!(
            l[0],
            ConfigPoint {
                warehouses: 10,
                processors: 1
            }
        );
        assert_eq!(
            l[26],
            ConfigPoint {
                warehouses: 1200,
                processors: 4
            }
        );
        // Strictly increasing W within each P block.
        for block in l.chunks(WAREHOUSES.len()) {
            assert!(block.windows(2).all(|w| w[0].warehouses < w[1].warehouses));
        }
    }

    #[test]
    fn client_grid_is_ascending_and_bounded() {
        assert!(CLIENT_GRID.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*CLIENT_GRID.last().unwrap(), MAX_CLIENTS);
        assert!(TREND_WAREHOUSES.iter().all(|w| WAREHOUSES.contains(w)));
    }
}
