//! Measurement vocabulary: the quantities the paper reports per
//! configuration (TPS, IPX, CPI, MPI, utilization, I/O and context-switch
//! rates), split into user and OS space where the paper splits them.

use serde::{Deserialize, Serialize};

/// Raw event counts attributed to one execution space (user or OS).
///
/// Ratios such as CPI and MPI are always *derived* from counts rather than
/// stored, so that aggregating spaces (user + OS) remains exact: the total
/// CPI is total cycles over total instructions, **not** the sum of the
/// per-space CPIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceCounts {
    /// Instructions retired.
    pub instructions: u64,
    /// Unhalted clock cycles consumed.
    pub cycles: u64,
    /// Misses in the third-level cache.
    pub l3_misses: u64,
    /// Misses in the second-level cache (includes those that also miss L3).
    pub l2_misses: u64,
    /// Misses in the trace cache (first-level instruction store).
    pub tc_misses: u64,
    /// Data-TLB misses (page walks).
    pub tlb_misses: u64,
    /// Mispredicted retired branches.
    pub branch_mispredictions: u64,
}

impl SpaceCounts {
    /// Cycles per instruction; `None` when no instructions retired.
    pub fn cpi(&self) -> Option<f64> {
        (self.instructions > 0).then(|| self.cycles as f64 / self.instructions as f64)
    }

    /// L3 misses per instruction; `None` when no instructions retired.
    pub fn mpi(&self) -> Option<f64> {
        (self.instructions > 0).then(|| self.l3_misses as f64 / self.instructions as f64)
    }

    /// Element-wise sum of two spaces' counts.
    ///
    /// Saturates on overflow: counter hardware saturates rather than wraps,
    /// and a saturated total is preferable to a panic deep in an analysis
    /// pipeline.
    #[must_use]
    pub fn merged(&self, other: &SpaceCounts) -> SpaceCounts {
        SpaceCounts {
            instructions: self.instructions.saturating_add(other.instructions),
            cycles: self.cycles.saturating_add(other.cycles),
            l3_misses: self.l3_misses.saturating_add(other.l3_misses),
            l2_misses: self.l2_misses.saturating_add(other.l2_misses),
            tc_misses: self.tc_misses.saturating_add(other.tc_misses),
            tlb_misses: self.tlb_misses.saturating_add(other.tlb_misses),
            branch_mispredictions: self
                .branch_mispredictions
                .saturating_add(other.branch_mispredictions),
        }
    }
}

/// Disk-traffic rates per committed transaction, in units of 1 KB blocks
/// (the paper's Fig 7 unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IoPerTxn {
    /// Database blocks read from disk, in KB.
    pub read_kb: f64,
    /// Redo-log bytes written, in KB (≈6 KB/txn in the paper, independent
    /// of `W` and `P`).
    pub log_write_kb: f64,
    /// Dirty database pages written back by the DB writer, in KB.
    pub page_write_kb: f64,
}

impl IoPerTxn {
    /// Total disk traffic per transaction in KB (reads + all writes).
    pub fn total_kb(&self) -> f64 {
        self.read_kb + self.log_write_kb + self.page_write_kb
    }

    /// Total write traffic per transaction in KB.
    pub fn write_kb(&self) -> f64 {
        self.log_write_kb + self.page_write_kb
    }
}

/// Everything the paper measures for one `(W, C, P)` configuration:
/// the row of data behind every figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Number of warehouses (`W`).
    pub warehouses: u32,
    /// Number of concurrent clients (`C`).
    pub clients: u32,
    /// Number of processors (`P`).
    pub processors: u32,
    /// Wall-clock length of the measurement window, in seconds.
    pub elapsed_seconds: f64,
    /// Transactions committed during the window.
    pub transactions: u64,
    /// Event counts attributed to user space.
    pub user: SpaceCounts,
    /// Event counts attributed to OS space.
    pub os: SpaceCounts,
    /// Fraction of CPU capacity not idle, in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Fraction of *busy* CPU time spent in OS code, in `[0, 1]`.
    pub os_busy_fraction: f64,
    /// Disk traffic per transaction.
    pub io_per_txn: IoPerTxn,
    /// Disk read *requests* per transaction (for correlation with context
    /// switches, §4.3).
    pub disk_reads_per_txn: f64,
    /// Context switches per committed transaction (Fig 8).
    pub context_switches_per_txn: f64,
    /// Fraction of time the front-side bus is transferring data, `[0, 1]`.
    pub bus_utilization: f64,
    /// Mean cycles for a bus transaction to complete once in the IOQ
    /// (Fig 16; 102 cycles unloaded on the paper's machine).
    pub bus_transaction_cycles: f64,
}

impl Measurement {
    /// Transactions per second over the measurement window.
    pub fn tps(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.transactions as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// Combined user+OS counts.
    pub fn total(&self) -> SpaceCounts {
        self.user.merged(&self.os)
    }

    /// Total instructions per transaction (Fig 4).
    pub fn ipx(&self) -> f64 {
        per_txn(self.total().instructions, self.transactions)
    }

    /// User-space instructions per transaction (Fig 5).
    pub fn ipx_user(&self) -> f64 {
        per_txn(self.user.instructions, self.transactions)
    }

    /// OS-space instructions per transaction (Fig 6).
    pub fn ipx_os(&self) -> f64 {
        per_txn(self.os.instructions, self.transactions)
    }

    /// Overall cycles per instruction (Fig 9); 0 when nothing retired.
    pub fn cpi(&self) -> f64 {
        self.total().cpi().unwrap_or(0.0)
    }

    /// User-space CPI (Fig 10).
    pub fn cpi_user(&self) -> f64 {
        self.user.cpi().unwrap_or(0.0)
    }

    /// OS-space CPI (Fig 11).
    pub fn cpi_os(&self) -> f64 {
        self.os.cpi().unwrap_or(0.0)
    }

    /// Overall L3 misses per instruction (Fig 13).
    pub fn mpi(&self) -> f64 {
        self.total().mpi().unwrap_or(0.0)
    }

    /// User-space MPI (Fig 14).
    pub fn mpi_user(&self) -> f64 {
        self.user.mpi().unwrap_or(0.0)
    }

    /// OS-space MPI (Fig 15).
    pub fn mpi_os(&self) -> f64 {
        self.os.mpi().unwrap_or(0.0)
    }

    /// The throughput the iron law predicts from this measurement's own
    /// IPX, CPI and utilization:
    /// `util × P × F / (IPX × CPI)`.
    ///
    /// For a self-consistent measurement this matches [`Measurement::tps`]
    /// closely; the integration tests assert it.
    pub fn iron_law_tps(&self, frequency_hz: f64) -> f64 {
        let ipx = self.ipx();
        let cpi = self.cpi();
        if ipx <= 0.0 || cpi <= 0.0 {
            return 0.0;
        }
        self.cpu_utilization * crate::ironlaw::tps(self.processors, frequency_hz, ipx, cpi)
    }
}

fn per_txn(count: u64, transactions: u64) -> f64 {
    if transactions > 0 {
        count as f64 / transactions as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            warehouses: 100,
            clients: 48,
            processors: 4,
            elapsed_seconds: 10.0,
            transactions: 10_000,
            user: SpaceCounts {
                instructions: 10_000_000_000,
                cycles: 40_000_000_000,
                l3_misses: 80_000_000,
                l2_misses: 300_000_000,
                tc_misses: 50_000_000,
                tlb_misses: 20_000_000,
                branch_mispredictions: 40_000_000,
            },
            os: SpaceCounts {
                instructions: 2_000_000_000,
                cycles: 4_000_000_000,
                l3_misses: 10_000_000,
                l2_misses: 40_000_000,
                tc_misses: 5_000_000,
                tlb_misses: 4_000_000,
                branch_mispredictions: 10_000_000,
            },
            cpu_utilization: 0.95,
            os_busy_fraction: 0.12,
            io_per_txn: IoPerTxn {
                read_kb: 20.0,
                log_write_kb: 6.0,
                page_write_kb: 10.0,
            },
            disk_reads_per_txn: 2.5,
            context_switches_per_txn: 6.0,
            bus_utilization: 0.40,
            bus_transaction_cycles: 140.0,
        }
    }

    #[test]
    fn tps_is_transactions_over_time() {
        assert!((sample().tps() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn ipx_splits_sum_to_total() {
        let m = sample();
        assert!((m.ipx_user() + m.ipx_os() - m.ipx()).abs() < 1e-6);
        assert!((m.ipx() - 1_200_000.0).abs() < 1e-6);
    }

    #[test]
    fn total_cpi_is_count_weighted_not_sum_of_ratios() {
        let m = sample();
        // user CPI 4.0, os CPI 2.0; total = 44e9 / 12e9 ≈ 3.667.
        assert!((m.cpi_user() - 4.0).abs() < 1e-12);
        assert!((m.cpi_os() - 2.0).abs() < 1e-12);
        assert!((m.cpi() - 44.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn mpi_derivations() {
        let m = sample();
        assert!((m.mpi_user() - 0.008).abs() < 1e-12);
        assert!((m.mpi_os() - 0.005).abs() < 1e-12);
        assert!((m.mpi() - 90.0e6 / 12.0e9).abs() < 1e-12);
    }

    #[test]
    fn io_totals() {
        let io = sample().io_per_txn;
        assert!((io.total_kb() - 36.0).abs() < 1e-12);
        assert!((io.write_kb() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn iron_law_self_consistency_bound() {
        let m = sample();
        // With these numbers: util × P × F / (IPX × CPI)
        // = 0.95 × 4 × 1.6e9 / (1.2e6 × 3.667) = 1381.8.
        let predicted = m.iron_law_tps(1.6e9);
        assert!((predicted - 1381.8).abs() < 1.0, "predicted {predicted}");
    }

    #[test]
    fn zero_transactions_and_instructions_are_safe() {
        let mut m = sample();
        m.transactions = 0;
        m.user = SpaceCounts::default();
        m.os = SpaceCounts::default();
        m.elapsed_seconds = 0.0;
        assert_eq!(m.tps(), 0.0);
        assert_eq!(m.ipx(), 0.0);
        assert_eq!(m.cpi(), 0.0);
        assert_eq!(m.mpi(), 0.0);
        assert_eq!(m.iron_law_tps(1.6e9), 0.0);
    }

    #[test]
    fn merged_saturates() {
        let a = SpaceCounts {
            instructions: u64::MAX - 1,
            ..Default::default()
        };
        let b = SpaceCounts {
            instructions: 10,
            ..Default::default()
        };
        assert_eq!(a.merged(&b).instructions, u64::MAX);
    }
}
