//! Violation types and rendering.

use std::fmt;

/// Which lint produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Panic-site count exceeded (or missing) the checked-in baseline.
    PanicBaseline,
    /// `.acquire(` without canonical-order sorting.
    LockOrder,
    /// Floating-point simulated-time construction outside `des/src/time.rs`.
    RawTime,
    /// Observer-hook emission hidden inside a `#[cfg(feature = …)]` block.
    ObserverSeam,
    /// Stray file or orphan module.
    StrayFile,
    /// Heap allocation in an audited per-reference hot-path function.
    HotPathAlloc,
}

impl Lint {
    /// The short name used in output and in `analyzer:allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::PanicBaseline => "panic",
            Lint::LockOrder => "lock_order",
            Lint::RawTime => "raw_time",
            Lint::ObserverSeam => "observer_seam",
            Lint::StrayFile => "stray_file",
            Lint::HotPathAlloc => "hot_path_alloc",
        }
    }
}

/// One gate-failing finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The lint that fired.
    pub lint: Lint,
    /// Repo-relative path (empty for workspace-level findings).
    pub path: String,
    /// 1-based line number; 0 when the finding is about a whole file.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Violation {
    /// A finding anchored at `path:line`.
    pub fn new(lint: Lint, path: &str, line: usize, message: String) -> Self {
        Violation {
            lint,
            path: path.to_owned(),
            line,
            message,
        }
    }

    /// A workspace-level panic-baseline finding (no single anchor line).
    pub fn baseline(message: String) -> Self {
        Violation {
            lint: Lint::PanicBaseline,
            path: String::new(),
            line: 0,
            message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.lint.name())?;
        if !self.path.is_empty() {
            write!(f, "{}", self.path)?;
            if self.line > 0 {
                write!(f, ":{}", self.line)?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_and_without_anchor() {
        let v = Violation::new(Lint::RawTime, "crates/x/src/a.rs", 7, "msg".into());
        assert_eq!(v.to_string(), "[raw_time] crates/x/src/a.rs:7: msg");
        let w = Violation::new(Lint::StrayFile, "junk.tmp", 0, "msg".into());
        assert_eq!(w.to_string(), "[stray_file] junk.tmp: msg");
        let b = Violation::baseline("over".into());
        assert_eq!(b.to_string(), "[panic] over");
    }
}
