//! The fault-injection harness: deliberately corrupt live simulator
//! state and prove each corruption surfaces as a typed
//! [`odb_core::Error::CorruptState`] — never as a process abort.
//!
//! Each test drives a healthy simulation in short slices, injects one
//! [`Fault`] as soon as the state it targets exists (a held lock, an
//! in-flight flush, a busy CPU), then keeps driving until the event
//! loop reports the corruption. The assertions pin down *which*
//! component detected it, so a refactor that silently widens a check
//! fails here, not in production sweeps.

#![cfg(feature = "invariants")]
// Tests use unwrap() freely; the workspace-level `clippy::unwrap_used`
// deny applies to shipped code only.
#![allow(clippy::unwrap_used)]

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::Error;
use odb_des::SimTime;
use odb_engine::system::{Fault, SystemParams, SystemSim};
use odb_memsim::rates::{EventRates, SpaceRates};

fn flat_rates() -> EventRates {
    let user = SpaceRates {
        tc_miss: 0.004,
        l2_miss: 0.015,
        l3_miss: 0.006,
        l3_coherence_miss: 0.0001,
        l3_writeback: 0.0015,
        tlb_miss: 0.002,
        branch_mispred: 0.004,
        other_stall_cpi: 0.3,
    };
    let os = SpaceRates {
        l3_miss: 0.004,
        l2_miss: 0.010,
        ..user
    };
    EventRates { user, os }
}

fn sim(warehouses: u32, clients: u32, processors: u32) -> SystemSim {
    let config = OltpConfig::new(
        WorkloadConfig::new(warehouses, clients).unwrap(),
        SystemConfig::xeon_quad().with_processors(processors),
    )
    .unwrap();
    SystemSim::new(config, SystemParams::default(), flat_rates(), 42).unwrap()
}

/// Advances `s` in 5 ms slices until `fault` applies; panics if the
/// targeted state never materialises within the budget.
fn drive_until_injected(s: &mut SystemSim, fault: Fault) {
    for _ in 0..400 {
        if s.inject_fault(fault) {
            return;
        }
        s.run_for(SimTime::from_millis(5))
            .expect("simulation must be healthy before the injection");
    }
    panic!("{fault:?} never found state to corrupt");
}

/// Keeps the event loop running until it reports an error; panics if
/// the injected corruption never surfaces within the budget.
fn drive_until_error(s: &mut SystemSim) -> Error {
    for _ in 0..2_000 {
        if let Err(e) = s.run_for(SimTime::from_millis(5)) {
            return e;
        }
    }
    panic!("injected corruption never surfaced as an error");
}

/// Dropping a held lock from the table makes the eventual release a
/// release-of-never-acquired, detected by the lock manager.
#[test]
fn dropped_lock_surfaces_as_corrupt_state() {
    // High contention (10 W) keeps locks held long enough to catch.
    let mut s = sim(10, 12, 2);
    drive_until_injected(&mut s, Fault::DropHeldLock);
    let err = drive_until_error(&mut s);
    assert!(
        matches!(
            err,
            Error::CorruptState {
                component: "engine::locks",
                ..
            }
        ),
        "expected a lock-manager corruption, got: {err}"
    );
}

/// Discarding an in-flight log flush leaves an orphaned completion
/// event; the group-commit state machine reports the imbalance.
#[test]
fn truncated_commit_batch_surfaces_as_corrupt_state() {
    let mut s = sim(10, 12, 2);
    drive_until_injected(&mut s, Fault::TruncateCommitBatch);
    let err = drive_until_error(&mut s);
    assert!(
        matches!(
            err,
            Error::CorruptState {
                component: "engine::writers",
                ..
            }
        ),
        "expected a log-writer corruption, got: {err}"
    );
}

/// A NaN-poisoned sampling CDF does not abort sampling (draws clamp
/// into the domain), so the event loop keeps running — the corruption
/// is caught by the explicit invariant check instead.
#[test]
fn poisoned_cdf_is_caught_by_verify_invariants() {
    let mut s = sim(10, 12, 2);
    s.verify_invariants()
        .expect("fresh simulator must pass its invariant checks");
    assert!(
        s.inject_fault(Fault::PoisonCdf),
        "the customer CDF is always available to poison"
    );
    // Sampling tolerates the poison: the loop must not abort or error.
    s.run_for(SimTime::from_millis(50))
        .expect("a poisoned CDF must not abort the event loop");
    let err = s
        .verify_invariants()
        .expect_err("the poisoned CDF must fail the invariant check");
    assert!(
        matches!(
            err,
            Error::CorruptState {
                component: "memsim::dist",
                ..
            }
        ),
        "expected a distribution corruption, got: {err}"
    );
}

/// Clearing a busy CPU's running slot desynchronises the run queue
/// from the event calendar; the scheduler reports the orphaned burst.
#[test]
fn desynced_run_queue_surfaces_as_corrupt_state() {
    // Few clients per CPU so the ready queue drains and the orphaned
    // burst completion lands on an idle CPU.
    let mut s = sim(10, 3, 2);
    drive_until_injected(&mut s, Fault::DesyncRunQueue);
    let err = drive_until_error(&mut s);
    assert!(
        matches!(
            err,
            Error::CorruptState {
                component: "engine::system",
                ..
            }
        ),
        "expected a scheduler corruption, got: {err}"
    );
}
