//! Quickstart: measure one OLTP configuration and check it against the
//! iron law of database performance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::ironlaw;
use odb_engine::{OdbSimulator, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's machine: a 4-way 1.6 GHz Xeon MP with a 1 MB L3,
    // 2.8 GB buffer cache and 26 disks — at 100 warehouses with the 48
    // clients Table 1 lists for that point.
    let config = OltpConfig::new(
        WorkloadConfig::new(100, 48)?,
        SystemConfig::xeon_quad(),
    )?;
    let frequency = config.system.frequency_hz;
    let processors = config.system.processors;

    println!("simulating 100 warehouses, 48 clients, 4 processors...");
    let m = OdbSimulator::new(config, SimOptions::standard())?.run()?;

    println!("\nmeasured over {:.1} simulated seconds:", m.elapsed_seconds);
    println!("  TPS                 {:>10.0}", m.tps());
    println!("  CPU utilization     {:>10.1}%", m.cpu_utilization * 100.0);
    println!("  IPX (user / OS)     {:>6.2}M / {:.2}M", m.ipx_user() / 1e6, m.ipx_os() / 1e6);
    println!("  CPI (user / OS)     {:>6.2} / {:.2}", m.cpi_user(), m.cpi_os());
    println!("  L3 MPI              {:>10.4}", m.mpi());
    println!("  disk reads per txn  {:>10.2}", m.disk_reads_per_txn);
    println!("  context switches    {:>10.2} per txn", m.context_switches_per_txn);
    println!("  bus utilization     {:>10.1}%", m.bus_utilization * 100.0);

    // The iron law: TPS = util × P × F / (IPX × CPI).
    let predicted = m.cpu_utilization * ironlaw::tps(processors, frequency, m.ipx(), m.cpi());
    let error = 100.0 * (predicted - m.tps()).abs() / m.tps();
    println!("\niron law check: predicted {predicted:.0} TPS vs measured {:.0} ({error:.1}% apart)", m.tps());
    Ok(())
}
