//! A write-invalidate coherence directory over the per-processor caches.
//!
//! The Xeon MP keeps per-processor L3 caches coherent over the shared
//! front-side bus with a MESI protocol. This module models the part that
//! matters for the paper's analysis: a write by one processor invalidates
//! the line in every other processor's cache, and the victim's next miss
//! on that line is classified as a *coherence miss*. The paper's
//! (initially surprising) finding is that these are negligible next to
//! capacity misses on a 1 MB L3 — an outcome the simulation reproduces
//! rather than assumes, and which the `coherence` ablation experiment
//! toggles.

use crate::cache::SetAssocCache;
use std::collections::HashMap;

/// Something that can drop a line on request from the coherence directory.
///
/// Implemented by a bare [`SetAssocCache`] (L3-only coherence, used in
/// unit tests) and by a full [`crate::hierarchy::CpuHierarchy`] (which
/// also flushes its inner levels, as real inclusive hierarchies do).
pub trait Invalidate {
    /// Invalidates the line containing `addr`; returns `true` when the
    /// line was resident at the coherence point (L3).
    fn invalidate_line(&mut self, addr: u64) -> bool;
}

impl Invalidate for SetAssocCache {
    fn invalidate_line(&mut self, addr: u64) -> bool {
        self.invalidate(addr)
    }
}

/// Mutable references forward, so `Directory::write_slice` accepts both
/// owned slices (`&mut [CpuHierarchy]`) and slices of references
/// (`&mut [&mut T]`) without the caller collecting a reference `Vec`.
impl<T: Invalidate + ?Sized> Invalidate for &mut T {
    fn invalidate_line(&mut self, addr: u64) -> bool {
        (**self).invalidate_line(addr)
    }
}

/// Tracks which processors hold which lines and broadcasts invalidations.
#[derive(Debug, Default)]
pub struct Directory {
    /// Line address → bitmask of holders (bit per CPU, up to 64).
    // Point-access only (entry/get/get_mut/remove, never iterated) on the
    // per-reference hot path, so hash order can never leak into sim state.
    // odb-analyzer: allow(unordered_iteration)
    holders: HashMap<u64, u64>,
    /// Total invalidation broadcasts performed.
    invalidations_sent: u64,
    /// When `false`, writes do not invalidate (ablation mode).
    enabled: bool,
}

impl Directory {
    /// Creates an enabled directory.
    pub fn new() -> Self {
        Self {
            // odb-analyzer: allow(unordered_iteration) — see field above
            holders: HashMap::new(),
            invalidations_sent: 0,
            enabled: true,
        }
    }

    /// Creates a directory with coherence disabled — an ablation that
    /// quantifies how much of the miss rate coherence is responsible for.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// Whether invalidations are being performed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total invalidation messages sent so far.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Records that `cpu` now holds `line_addr` (after a fill).
    pub fn record_fill(&mut self, cpu: usize, line_addr: u64) {
        *self.holders.entry(line_addr).or_insert(0) |= 1 << cpu;
    }

    /// Records that `cpu` evicted `line_addr`.
    pub fn record_evict(&mut self, cpu: usize, line_addr: u64) {
        if let Some(mask) = self.holders.get_mut(&line_addr) {
            *mask &= !(1 << cpu);
            if *mask == 0 {
                self.holders.remove(&line_addr);
            }
        }
    }

    /// `true` when any processor other than `writer` holds `line_addr`.
    /// Cheap pre-check that lets callers skip assembling cache references
    /// for the overwhelmingly common unshared-write case.
    pub fn has_remote_holders(&self, writer: usize, line_addr: u64) -> bool {
        if !self.enabled {
            return false;
        }
        self.holders
            .get(&line_addr)
            .is_some_and(|mask| mask & !(1 << writer) != 0)
    }

    /// Handles a write by `writer` to `line_addr`: invalidates the line in
    /// every other holder's L3 (and implicitly its inner levels, which the
    /// caller flushes via the same call). Returns the number of remote
    /// copies invalidated.
    pub fn write<T: Invalidate>(
        &mut self,
        writer: usize,
        line_addr: u64,
        caches: &mut [&mut T],
    ) -> u32 {
        self.write_slice(writer, line_addr, caches)
    }

    /// [`Directory::write`] over a plain slice of caches. The hot path in
    /// `trace.rs` passes its hierarchies directly, avoiding the per-write
    /// `Vec<&mut _>` collect that `write`'s reference-slice shape forces.
    pub fn write_slice<T: Invalidate>(
        &mut self,
        writer: usize,
        line_addr: u64,
        caches: &mut [T],
    ) -> u32 {
        if !self.enabled {
            return 0;
        }
        let Some(mask) = self.holders.get_mut(&line_addr) else {
            return 0;
        };
        let others = *mask & !(1 << writer);
        if others == 0 {
            return 0;
        }
        let mut invalidated = 0;
        for (cpu, cache) in caches.iter_mut().enumerate() {
            if cpu != writer && others & (1 << cpu) != 0 && cache.invalidate_line(line_addr) {
                invalidated += 1;
                self.invalidations_sent += 1;
            }
        }
        *mask &= 1 << writer;
        if *mask == 0 {
            self.holders.remove(&line_addr);
        }
        invalidated
    }

    /// Number of lines with at least one holder (for tests/diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::CacheGeometry;

    fn caches(n: usize) -> Vec<SetAssocCache> {
        (0..n)
            .map(|_| SetAssocCache::new(CacheGeometry::new(4096, 64, 2).unwrap()))
            .collect()
    }

    #[test]
    fn remote_write_invalidates_and_classifies() {
        let mut cs = caches(2);
        let mut dir = Directory::new();
        // CPU 0 reads line 0x1000.
        cs[0].access(0x1000, false);
        dir.record_fill(0, 0x1000);
        // CPU 1 writes the same line.
        cs[1].access(0x1000, true);
        dir.record_fill(1, 0x1000);
        let (a, b) = cs.split_at_mut(1);
        let inv = dir.write(1, 0x1000, &mut [&mut a[0], &mut b[0]]);
        assert_eq!(inv, 1);
        assert_eq!(dir.invalidations_sent(), 1);
        // CPU 0's next access is a coherence miss.
        match cs[0].access(0x1000, false) {
            crate::cache::Access::Miss {
                coherence: true, ..
            } => {}
            other => panic!("expected coherence miss, got {other:?}"),
        }
    }

    #[test]
    fn writer_keeps_its_own_copy() {
        let mut cs = caches(2);
        let mut dir = Directory::new();
        cs[0].access(0x2000, true);
        dir.record_fill(0, 0x2000);
        let (a, b) = cs.split_at_mut(1);
        let inv = dir.write(0, 0x2000, &mut [&mut a[0], &mut b[0]]);
        assert_eq!(inv, 0, "no remote holders");
        assert!(cs[0].contains(0x2000));
    }

    #[test]
    fn eviction_clears_directory_state() {
        let mut dir = Directory::new();
        dir.record_fill(0, 0x1000);
        dir.record_fill(1, 0x1000);
        assert_eq!(dir.tracked_lines(), 1);
        dir.record_evict(0, 0x1000);
        assert_eq!(dir.tracked_lines(), 1, "cpu1 still holds it");
        dir.record_evict(1, 0x1000);
        assert_eq!(dir.tracked_lines(), 0);
        // Evicting an untracked line is a no-op.
        dir.record_evict(1, 0xDEAD);
    }

    #[test]
    fn disabled_directory_never_invalidates() {
        let mut cs = caches(2);
        let mut dir = Directory::disabled();
        assert!(!dir.is_enabled());
        cs[0].access(0x1000, false);
        dir.record_fill(0, 0x1000);
        dir.record_fill(1, 0x1000);
        let (a, b) = cs.split_at_mut(1);
        let inv = dir.write(1, 0x1000, &mut [&mut a[0], &mut b[0]]);
        assert_eq!(inv, 0);
        assert!(cs[0].contains(0x1000), "line survives remote write");
        assert_eq!(dir.invalidations_sent(), 0);
    }

    #[test]
    fn four_way_sharing_invalidates_all_others() {
        let mut cs = caches(4);
        let mut dir = Directory::new();
        for (cpu, c) in cs.iter_mut().enumerate() {
            c.access(0x4000, false);
            dir.record_fill(cpu, 0x4000);
        }
        let mut refs: Vec<&mut SetAssocCache> = cs.iter_mut().collect();
        let inv = dir.write(2, 0x4000, &mut refs);
        assert_eq!(inv, 3);
        assert!(cs[2].contains(0x4000));
        for cpu in [0usize, 1, 3] {
            assert!(!cs[cpu].contains(0x4000), "cpu {cpu} invalidated");
        }
    }
}
