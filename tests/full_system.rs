//! Cross-crate integration: one full pipeline run exercises every
//! substrate (core → des → memsim → iosim → ossim → emon → engine) and
//! the measurements must agree across module boundaries.

use odb_core::breakdown::{Component, CpiBreakdown, StallCosts};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::{OdbSimulator, SimOptions};

fn config(w: u32, c: u32, p: u32) -> OltpConfig {
    OltpConfig::new(
        WorkloadConfig::new(w, c).unwrap(),
        SystemConfig::xeon_quad().with_processors(p),
    )
    .unwrap()
}

#[test]
fn pipeline_produces_internally_consistent_measurement() {
    let art = OdbSimulator::new(config(100, 48, 4), SimOptions::quick())
        .unwrap()
        .run_detailed()
        .unwrap();
    let m = &art.measurement;

    // Space split sums.
    assert!((m.ipx_user() + m.ipx_os() - m.ipx()).abs() < 1.0);
    // Rates and counts agree: MPI computed from counters equals the
    // characterized rate blended by instruction mix (within rounding).
    let rates = art.characterization.rates;
    let user_mpi = m.mpi_user();
    assert!(
        (user_mpi - rates.user.l3_miss).abs() / rates.user.l3_miss < 0.01,
        "counter-derived MPI {user_mpi} vs characterized {}",
        rates.user.l3_miss
    );
    // Utilization is a fraction; OS share is a fraction of busy time.
    assert!((0.0..=1.0).contains(&m.cpu_utilization));
    assert!((0.0..=1.0).contains(&m.os_busy_fraction));
    // I/O accounting: reads per txn in KB equals 8 KB per read request.
    assert!(
        (m.io_per_txn.read_kb - 8.0 * m.disk_reads_per_txn).abs() < 0.2,
        "read KB {} vs 8KB x {} reads",
        m.io_per_txn.read_kb,
        m.disk_reads_per_txn
    );
    // Log volume is the ~5-6 KB/txn the transaction mix implies.
    assert!((4.0..8.0).contains(&m.io_per_txn.log_write_kb));
}

#[test]
fn cpi_breakdown_explains_measured_cpi() {
    let art = OdbSimulator::new(config(200, 56, 4), SimOptions::quick())
        .unwrap()
        .run_detailed()
        .unwrap();
    let m = &art.measurement;
    let b = CpiBreakdown::compute(&m.total(), &StallCosts::xeon(), m.bus_transaction_cycles)
        .unwrap();
    // Components reconstruct the measured CPI by construction of Other.
    let total: f64 = Component::ALL.iter().map(|&c| b.component(c)).sum();
    assert!((total - m.cpi()).abs() < 1e-6);
    // L3 is the dominant component at scale (the paper's ~60% claim);
    // allow a broad band since this is a reduced-fidelity run.
    let l3_share = b.fraction(Component::L3);
    assert!(
        (0.35..0.8).contains(&l3_share),
        "L3 share of CPI was {l3_share:.2}"
    );
    // Other is a minor residual, not a dumping ground.
    assert!(b.fraction(Component::Other).abs() < 0.25);
}

#[test]
fn emon_noise_stays_calibrated() {
    let sim = OdbSimulator::new(
        config(50, 32, 4),
        SimOptions::quick().with_emon_noise(),
    )
    .unwrap();
    let art = sim.run_detailed().unwrap();
    // Sampling noise perturbs counters but must not distort headline
    // metrics at these count magnitudes.
    let rel = (art.measurement.cpi() - art.true_measurement.cpi()).abs()
        / art.true_measurement.cpi();
    assert!(rel < 0.05, "EMON noise moved CPI by {:.1}%", rel * 100.0);
    assert_ne!(art.measurement.user, art.true_measurement.user);
}

#[test]
fn saturating_the_array_caps_utilization() {
    // A deliberately under-provisioned disk array pins CPU utilization
    // well below the target no matter how many clients are offered —
    // the paper's I/O-bound region.
    let mut system = SystemConfig::xeon_quad();
    system.disk_array.disks = 6;
    let config = OltpConfig::new(WorkloadConfig::new(800, 64).unwrap(), system).unwrap();
    let m = OdbSimulator::new(config, SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    assert!(
        m.cpu_utilization < 0.75,
        "6 disks at 800W must be I/O bound, got util {:.2}",
        m.cpu_utilization
    );
}

#[test]
fn results_are_deterministic_end_to_end() {
    let a = OdbSimulator::new(config(50, 16, 2), SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    let b = OdbSimulator::new(config(50, 16, 2), SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(a, b, "identical seeds must replay identically");
}
