//! The §6.3 what-if: how do a 3x larger L3, 50% more bus bandwidth and a
//! bigger disk array change the scaling picture? The paper validated its
//! conjectures on a quad Itanium2; here the same comparison is one
//! configuration swap.
//!
//! ```sh
//! cargo run --release --example itanium_whatif
//! ```

use odb_core::config::SystemConfig;
use odb_core::pivot::TwoSegmentFit;
use odb_experiments::ladder::ConfigPoint;
use odb_experiments::runner::{Sweep, SweepOptions};

fn cpi_curve(
    system: &SystemConfig,
    options: &SweepOptions,
) -> Result<(Vec<f64>, Vec<f64>), odb_core::Error> {
    let points: Vec<ConfigPoint> = [10u32, 25, 50, 100, 200, 300, 500, 800]
        .iter()
        .map(|&w| ConfigPoint {
            warehouses: w,
            processors: 4,
        })
        .collect();
    let sweep = Sweep::run_points(system, options, &points);
    sweep.ensure_complete()?;
    let xs: Vec<f64> = points.iter().map(|p| p.warehouses as f64).collect();
    let ys: Vec<f64> = points
        .iter()
        .map(|p| sweep.row(4, p.warehouses).expect("measured").measurement.cpi())
        .collect();
    Ok((xs, ys))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = SweepOptions::standard();
    println!("sweeping the Xeon quad (1 MB L3, 26 disks)...");
    let (xs, xeon) = cpi_curve(&SystemConfig::xeon_quad(), &options)?;
    println!("sweeping the Itanium2 quad (3 MB L3, +50% bus, 34 disks)...");
    let (_, itanium) = cpi_curve(&SystemConfig::itanium2_quad(), &options)?;

    println!("\n  {:>6}  {:>10}  {:>10}", "W", "Xeon CPI", "Itanium2 CPI");
    for ((x, a), b) in xs.iter().zip(&xeon).zip(&itanium) {
        println!("  {x:>6.0}  {a:>10.3}  {b:>10.3}");
    }

    let fx = TwoSegmentFit::fit(&xs, &xeon)?;
    let fi = TwoSegmentFit::fit(&xs, &itanium)?;
    println!("\ncached-region slope: Xeon {:.5}, Itanium2 {:.5}", fx.cached.slope, fi.cached.slope);
    println!("scaled-region slope: Xeon {:.5}, Itanium2 {:.5}", fx.scaled.slope, fi.scaled.slope);
    match (fx.pivot(), fi.pivot()) {
        (Some(px), Some(pi)) => {
            println!("CPI pivot: Xeon {:.0} W, Itanium2 {:.0} W", px.x, pi.x);
            println!(
                "\nthe paper's §6.3 finding: the larger L3 flattens the cached region,\n\
                 the extra bus and disk bandwidth flatten the scaled region, and the\n\
                 pivot stays near ~100 warehouses (it reports 118 W on Itanium2)."
            );
        }
        _ => println!("a fit produced parallel segments; increase fidelity"),
    }
    Ok(())
}
