//! One processor's cache stack: trace cache, L1D, unified L2, unified L3
//! and the data TLB, with per-space (user/OS) event counting.

use crate::cache::{Access, Evicted, SetAssocCache};
use crate::coherence::Invalidate;
use crate::tlb::Tlb;
use odb_core::config::{CacheGeometry, SystemConfig};
use odb_core::Error;

/// Execution space an event is attributed to (the paper splits every
/// metric into user and OS components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Database/user code.
    User,
    /// Kernel code (I/O path, scheduler).
    Os,
}

impl Space {
    /// Both spaces, user first.
    pub const ALL: [Space; 2] = [Space::User, Space::Os];

    fn index(self) -> usize {
        match self {
            Space::User => 0,
            Space::Os => 1,
        }
    }
}

/// Event counts attributed to one space on one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyCounts {
    /// Instructions retired.
    pub instructions: u64,
    /// Instruction-fetch line references issued to the trace cache.
    pub code_refs: u64,
    /// Data references issued to L1D.
    pub data_refs: u64,
    /// Data references that were writes.
    pub data_writes: u64,
    /// Trace-cache misses.
    pub tc_misses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 lookups (TC misses + L1D misses).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 lookups (== L2 misses).
    pub l3_accesses: u64,
    /// L3 misses (memory accesses over the bus).
    pub l3_misses: u64,
    /// L3 misses classified as coherence misses.
    pub l3_coherence_misses: u64,
    /// Dirty L3 victims written back over the bus.
    pub l3_writebacks: u64,
    /// TLB translations requested.
    pub tlb_accesses: u64,
    /// TLB misses (page walks).
    pub tlb_misses: u64,
    /// Next-line prefetches issued by the L2 prefetcher.
    pub prefetches_issued: u64,
    /// Prefetches that had to fill from memory (bus transactions that are
    /// not demand misses).
    pub prefetch_l3_fills: u64,
}

impl HierarchyCounts {
    /// Merges another processor's / space's counts into this one.
    pub fn accumulate(&mut self, other: &HierarchyCounts) {
        self.instructions += other.instructions;
        self.code_refs += other.code_refs;
        self.data_refs += other.data_refs;
        self.data_writes += other.data_writes;
        self.tc_misses += other.tc_misses;
        self.l1d_misses += other.l1d_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.l3_accesses += other.l3_accesses;
        self.l3_misses += other.l3_misses;
        self.l3_coherence_misses += other.l3_coherence_misses;
        self.l3_writebacks += other.l3_writebacks;
        self.tlb_accesses += other.tlb_accesses;
        self.tlb_misses += other.tlb_misses;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_l3_fills += other.prefetch_l3_fills;
    }
}

/// Result of an access that reached the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Fill {
    /// Line-aligned address now resident in L3 (for directory tracking).
    pub filled: u64,
    /// Victim displaced from L3, if any (directory must drop the holder;
    /// dirty victims also cost a bus transaction).
    pub evicted: Option<Evicted>,
    /// `true` when this miss was caused by a coherence invalidation.
    pub coherence: bool,
}

/// Outcome of one reference as seen by the bus/coherence layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefOutcome {
    /// Populated when the reference missed all levels and filled the L3.
    pub l3_fill: Option<L3Fill>,
    /// `true` when the reference wrote a line that is (now) resident in
    /// L3 — the caller must notify the coherence directory.
    pub wrote_line: Option<u64>,
}

/// One processor's TC/L1D/L2/L3/TLB stack.
///
/// The hierarchy is modelled as inclusive: anything resident in an inner
/// level is also in L3, so a directory invalidation at L3 flushes inner
/// levels too.
///
/// The L3 is held behind `Rc<RefCell<…>>` so that several cores can share
/// one last-level cache (a CMP organization); SMP construction gives each
/// core a private instance.
#[derive(Debug)]
pub struct CpuHierarchy {
    tc: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    l3: std::rc::Rc<std::cell::RefCell<SetAssocCache>>,
    /// L3 line shift copied out at construction: the per-reference paths
    /// compute line-aligned addresses without touching the `RefCell`
    /// (a borrow per access is measurable in the characterization loop).
    l3_line_shift: u32,
    tlb: Tlb,
    counts: [HierarchyCounts; 2],
    /// Next-line prefetch into L2 on every L2 demand miss (a §7-style
    /// "more efficient use of limited capacity" mechanism to study).
    l2_prefetch: bool,
}

/// Xeon MP's L1 data cache: 8 KB, 4-way, 64 B lines. Fixed because the
/// paper's analysis never varies it (the L1D is invisible in Tables 2–4;
/// its effect is folded into the 0.5 base CPI).
fn l1d_geometry() -> Result<CacheGeometry, Error> {
    CacheGeometry::new(8 << 10, 64, 4)
}

impl CpuHierarchy {
    /// Builds the stack described by a [`SystemConfig`] (true-LRU L3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration describes an
    /// unbuildable stack (e.g. zero TLB entries).
    pub fn new(config: &SystemConfig) -> Result<Self, Error> {
        Self::with_l3_policy(config, crate::policy::ReplacementPolicy::Lru)
    }

    /// Builds the stack with an explicit L3 replacement policy — the §7
    /// "judicious caching schemes" exploration hook. Inner levels stay
    /// LRU (they are small and reuse-dominated).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] as for [`CpuHierarchy::new`].
    pub fn with_l3_policy(
        config: &SystemConfig,
        policy: crate::policy::ReplacementPolicy,
    ) -> Result<Self, Error> {
        let l3 = std::rc::Rc::new(std::cell::RefCell::new(SetAssocCache::with_policy(
            config.l3, policy,
        )));
        Self::with_shared_l3(config, l3)
    }

    /// Builds the stack around an externally owned L3 — pass the same
    /// handle to several cores to model a CMP's shared last-level cache.
    /// Inner-level coherence between the sharers is not simulated (their
    /// interaction happens at the shared L3, where capacity and reuse
    /// effects dominate).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] as for [`CpuHierarchy::new`].
    pub fn with_shared_l3(
        config: &SystemConfig,
        l3: std::rc::Rc<std::cell::RefCell<SetAssocCache>>,
    ) -> Result<Self, Error> {
        let l3_line_shift = l3.borrow().geometry().line_bytes().trailing_zeros();
        Ok(Self {
            tc: SetAssocCache::new(config.trace_cache),
            l1d: SetAssocCache::new(l1d_geometry()?),
            l2: SetAssocCache::new(config.l2),
            l3,
            l3_line_shift,
            tlb: Tlb::new(config.tlb_entries as usize)?,
            counts: [HierarchyCounts::default(); 2],
            l2_prefetch: false,
        })
    }

    /// Line-aligned address as the L3 (and the coherence directory) sees
    /// it, computed without borrowing the shared cache.
    #[inline]
    fn l3_line_addr(&self, addr: u64) -> u64 {
        addr >> self.l3_line_shift << self.l3_line_shift
    }

    /// Enables next-line prefetching into L2 on demand misses. Prefetch
    /// fills are counted separately from demand misses (they consume bus
    /// bandwidth but do not stall the pipeline).
    pub fn enable_l2_prefetch(&mut self) {
        self.l2_prefetch = true;
    }

    /// Records `n` retired instructions in `space`.
    pub fn retire_instructions(&mut self, n: u64, space: Space) {
        self.counts[space.index()].instructions += n;
    }

    /// Counts for one space.
    pub fn counts(&self, space: Space) -> &HierarchyCounts {
        &self.counts[space.index()]
    }

    /// Zeroes the per-space counters (after warm-up) without disturbing
    /// cache contents.
    pub fn reset_counts(&mut self) {
        self.counts = [HierarchyCounts::default(); 2];
    }

    /// Issues an instruction-fetch line reference.
    #[inline]
    pub fn fetch_code(&mut self, addr: u64, space: Space) -> RefOutcome {
        let c = &mut self.counts[space.index()];
        c.code_refs += 1;
        if self.tc.access(addr, false).is_hit() {
            return RefOutcome::default();
        }
        self.counts[space.index()].tc_misses += 1;
        self.descend(addr, false, space)
    }

    /// Issues a data reference (`write` dirties the line).
    #[inline]
    pub fn access_data(&mut self, addr: u64, write: bool, space: Space) -> RefOutcome {
        {
            let c = &mut self.counts[space.index()];
            c.data_refs += 1;
            if write {
                c.data_writes += 1;
            }
            c.tlb_accesses += 1;
        }
        if !self.tlb.access(addr) {
            self.counts[space.index()].tlb_misses += 1;
        }
        let line = self.l3_line_addr(addr);
        if self.l1d.access(addr, write).is_hit() {
            return RefOutcome {
                l3_fill: None,
                wrote_line: write.then_some(line),
            };
        }
        self.counts[space.index()].l1d_misses += 1;
        let mut outcome = self.descend(addr, write, space);
        if write {
            outcome.wrote_line = Some(line);
        }
        outcome
    }

    /// L2→L3 path shared by code and data misses.
    #[inline]
    fn descend(&mut self, addr: u64, write: bool, space: Space) -> RefOutcome {
        let c = &mut self.counts[space.index()];
        c.l2_accesses += 1;
        if self.l2.access(addr, write).is_hit() {
            return RefOutcome::default();
        }
        if self.l2_prefetch {
            self.prefetch_next_line(addr, space);
        }
        let c = &mut self.counts[space.index()];
        c.l2_misses += 1;
        c.l3_accesses += 1;
        match self.l3.borrow_mut().access(addr, write) {
            Access::Hit => RefOutcome::default(),
            Access::Miss { evicted, coherence } => {
                let c = &mut self.counts[space.index()];
                c.l3_misses += 1;
                if coherence {
                    c.l3_coherence_misses += 1;
                }
                if evicted.is_some_and(|e| e.dirty) {
                    c.l3_writebacks += 1;
                }
                RefOutcome {
                    l3_fill: Some(L3Fill {
                        filled: self.l3_line_addr(addr),
                        evicted,
                        coherence,
                    }),
                    wrote_line: None,
                }
            }
        }
    }

    /// Fetches `addr`'s successor line into L2 (and L3 if absent),
    /// counting it as prefetch traffic rather than a demand miss.
    fn prefetch_next_line(&mut self, addr: u64, space: Space) {
        let line_bytes = self.l2.geometry().line_bytes() as u64;
        let next = self.l2.line_addr(addr).saturating_add(line_bytes);
        let c = &mut self.counts[space.index()];
        c.prefetches_issued += 1;
        if self.l2.access(next, false).is_hit() {
            return;
        }
        let filled_from_memory = !matches!(
            self.l3.borrow_mut().access(next, false),
            Access::Hit
        );
        if filled_from_memory {
            self.counts[space.index()].prefetch_l3_fills += 1;
        }
    }

    /// Direct access to L3 statistics (for tests and diagnostics).
    /// Shared-L3 cores report the shared cache's combined statistics.
    pub fn l3_stats(&self) -> crate::cache::CacheStats {
        self.l3.borrow().stats()
    }
}

impl Invalidate for CpuHierarchy {
    /// Invalidates the line in every level (inclusive hierarchy).
    fn invalidate_line(&mut self, addr: u64) -> bool {
        self.l1d.invalidate(addr);
        self.l2.invalidate(addr);
        self.tc.invalidate(addr);
        self.l3.borrow_mut().invalidate(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::SystemConfig;

    fn hier() -> CpuHierarchy {
        CpuHierarchy::new(&SystemConfig::xeon_quad()).unwrap()
    }

    #[test]
    fn cold_data_ref_misses_all_levels() {
        let mut h = hier();
        let out = h.access_data(0x10_0000, false, Space::User);
        let fill = out.l3_fill.expect("cold miss reaches memory");
        assert_eq!(fill.filled, 0x10_0000);
        assert!(!fill.coherence);
        let c = h.counts(Space::User);
        assert_eq!(c.data_refs, 1);
        assert_eq!(c.l1d_misses, 1);
        assert_eq!(c.l2_misses, 1);
        assert_eq!(c.l3_misses, 1);
        assert_eq!(c.tlb_misses, 1);
        assert_eq!(h.counts(Space::Os).data_refs, 0, "space attribution");
    }

    #[test]
    fn warm_data_ref_hits_l1_and_goes_no_further() {
        let mut h = hier();
        h.access_data(0x10_0000, false, Space::User);
        let out = h.access_data(0x10_0008, false, Space::User);
        assert!(out.l3_fill.is_none());
        let c = h.counts(Space::User);
        assert_eq!(c.l1d_misses, 1);
        assert_eq!(c.l2_accesses, 1, "second ref never reached L2");
    }

    #[test]
    fn code_fetch_path_counts_tc() {
        let mut h = hier();
        h.fetch_code(0x40_0000, Space::Os);
        h.fetch_code(0x40_0000, Space::Os);
        let c = h.counts(Space::Os);
        assert_eq!(c.code_refs, 2);
        assert_eq!(c.tc_misses, 1);
        assert_eq!(c.l3_misses, 1);
        assert_eq!(c.tlb_accesses, 0, "code fetches skip the D-TLB");
    }

    #[test]
    fn writes_surface_for_coherence() {
        let mut h = hier();
        let out = h.access_data(0x20_0000, true, Space::User);
        assert_eq!(out.wrote_line, Some(0x20_0000));
        assert!(out.l3_fill.is_some());
        // A hit-write also surfaces.
        let out2 = h.access_data(0x20_0000, true, Space::User);
        assert_eq!(out2.wrote_line, Some(0x20_0000));
        assert!(out2.l3_fill.is_none());
        assert_eq!(h.counts(Space::User).data_writes, 2);
    }

    #[test]
    fn invalidation_flushes_inner_levels() {
        let mut h = hier();
        h.access_data(0x30_0000, false, Space::User);
        assert!(h.invalidate_line(0x30_0000));
        // The next reference misses L1D (not silently hits) and is a
        // coherence miss at L3.
        let out = h.access_data(0x30_0000, false, Space::User);
        let fill = out.l3_fill.expect("invalidated line re-fetched");
        assert!(fill.coherence);
        assert_eq!(h.counts(Space::User).l3_coherence_misses, 1);
        assert_eq!(h.counts(Space::User).l1d_misses, 2);
    }

    #[test]
    fn retire_and_reset() {
        let mut h = hier();
        h.retire_instructions(1000, Space::User);
        h.retire_instructions(50, Space::Os);
        assert_eq!(h.counts(Space::User).instructions, 1000);
        assert_eq!(h.counts(Space::Os).instructions, 50);
        h.access_data(0x1000, false, Space::User);
        h.reset_counts();
        assert_eq!(h.counts(Space::User).instructions, 0);
        assert_eq!(h.counts(Space::User).data_refs, 0);
        // Contents survive the reset: same line now hits.
        let out = h.access_data(0x1000, false, Space::User);
        assert!(out.l3_fill.is_none());
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = HierarchyCounts {
            instructions: 10,
            l3_misses: 2,
            ..Default::default()
        };
        let b = HierarchyCounts {
            instructions: 5,
            l3_misses: 1,
            tlb_misses: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.l3_misses, 3);
        assert_eq!(a.tlb_misses, 7);
    }

    #[test]
    fn next_line_prefetch_converts_sequential_misses_to_hits() {
        let config = SystemConfig::xeon_quad();
        let run = |prefetch: bool| {
            let mut h = CpuHierarchy::new(&config).unwrap();
            if prefetch {
                h.enable_l2_prefetch();
            }
            // A sequential scan: each line follows its predecessor.
            for i in 0..2_000u64 {
                h.access_data(0x100_0000 + i * 64, false, Space::User);
            }
            (h.counts(Space::User).l2_misses, h.counts(Space::User).prefetches_issued)
        };
        let (base_misses, base_prefetches) = run(false);
        let (pf_misses, pf_prefetches) = run(true);
        assert_eq!(base_prefetches, 0);
        assert!(pf_prefetches > 0);
        assert!(
            pf_misses * 3 < base_misses * 2,
            "sequential scan: prefetch cuts L2 demand misses {base_misses} -> {pf_misses}"
        );
    }

    #[test]
    fn shared_l3_dedups_across_cores() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let config = SystemConfig::xeon_quad();
        let l3 = Rc::new(RefCell::new(SetAssocCache::new(config.l3)));
        let mut core0 = CpuHierarchy::with_shared_l3(&config, l3.clone()).unwrap();
        let mut core1 = CpuHierarchy::with_shared_l3(&config, l3.clone()).unwrap();
        // Core 0 fetches a line into the shared L3.
        let out0 = core0.access_data(0x70_0000, false, Space::User);
        assert!(out0.l3_fill.is_some(), "cold fill through core 0");
        // Core 1 misses its private L1/L2 but hits the shared L3.
        let out1 = core1.access_data(0x70_0000, false, Space::User);
        assert!(out1.l3_fill.is_none(), "shared L3 already holds the line");
        assert_eq!(core1.counts(Space::User).l2_misses, 1);
        assert_eq!(core1.counts(Space::User).l3_misses, 0);
        // The shared statistics reflect both cores' traffic.
        assert_eq!(core0.l3_stats().accesses, 2);
        assert_eq!(core0.l3_stats().misses, 1);
        assert_eq!(core1.l3_stats(), core0.l3_stats());
    }

    #[test]
    fn dirty_l3_victim_counts_writeback() {
        // Walk enough distinct written lines to force dirty L3 evictions.
        let mut h = hier();
        let l3_lines = SystemConfig::xeon_quad().l3.lines();
        for i in 0..(l3_lines * 2) {
            h.access_data(i * 64, true, Space::User);
        }
        assert!(h.counts(Space::User).l3_writebacks > 0);
    }
}
