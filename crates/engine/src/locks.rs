//! Block-granularity lock manager.
//!
//! The paper attributes the context-switch spike at 10 warehouses to
//! "database block contention that results from multiple processes
//! sharing a very small data set" (§4.3). The contended blocks are the
//! per-warehouse district and warehouse blocks: at 10 W the whole
//! database has only ten of each, and nearly every transaction writes
//! one. This manager provides exclusive block locks with FIFO wait
//! queues; waiters block (costing two context switches), and lock hold
//! times extend through commit, so contention falls off as `1/W`.

use crate::txn::LockTarget;
use odb_core::Error;
use odb_ossim::ProcessId;
use std::collections::{BTreeMap, VecDeque};

/// Outcome of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// The caller now holds the lock.
    Granted,
    /// The lock is held; the caller has been queued and must block. It
    /// will own the lock when a release hands it over.
    Queued,
}

/// Contention counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful acquisitions (immediate or after queueing).
    pub acquisitions: u64,
    /// Acquisitions that had to queue — each costs a block + wake.
    pub conflicts: u64,
}

impl LockStats {
    /// Fraction of acquisitions that conflicted.
    pub fn conflict_ratio(&self) -> f64 {
        if self.acquisitions > 0 {
            self.conflicts as f64 / self.acquisitions as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ProcessId>,
    waiters: VecDeque<ProcessId>,
}

/// Exclusive block locks with FIFO handover.
///
/// Deadlock freedom is by ordered acquisition: callers must acquire
/// multiple targets in [`canonical_order`] — enforced in debug builds.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: BTreeMap<LockTarget, LockState>,
    stats: LockStats,
    /// Deadlock-freedom witness: every target each process has acquired
    /// (held or queued) and not yet released, in acquisition order. The
    /// `invariants` feature asserts this stays strictly increasing in
    /// [`canonical_order`], which rules out wait cycles.
    #[cfg(feature = "invariants")]
    acquired: BTreeMap<ProcessId, Vec<LockTarget>>,
}

/// The global acquisition order: warehouse blocks before district blocks,
/// then by warehouse number.
pub fn canonical_order(target: &LockTarget) -> (u8, u32) {
    match *target {
        LockTarget::WarehouseBlock(w) => (0, w),
        LockTarget::DistrictBlock(w) => (1, w),
    }
}

impl LockManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Resets statistics; held locks and queues are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = LockStats::default();
    }

    /// Attempts to take `target` exclusively for `pid`.
    ///
    /// On [`AcquireResult::Queued`] the caller must block; a later
    /// [`LockManager::release`] by the holder transfers ownership and
    /// returns this `pid` so the engine can wake it.
    pub fn acquire(&mut self, pid: ProcessId, target: LockTarget) -> AcquireResult {
        #[cfg(feature = "invariants")]
        {
            let prior = self.acquired.entry(pid).or_default();
            debug_assert!(
                prior
                    .last()
                    .is_none_or(|last| canonical_order(last) < canonical_order(&target)),
                "process {pid:?} acquiring {target:?} out of canonical order \
                 (already holds/waits on {prior:?}) — deadlock-freedom violated"
            );
            prior.push(target);
        }
        self.stats.acquisitions += 1;
        let state = self.locks.entry(target).or_default();
        match state.holder {
            None => {
                state.holder = Some(pid);
                AcquireResult::Granted
            }
            Some(holder) => {
                debug_assert_ne!(holder, pid, "re-entrant acquisition is a bug");
                state.waiters.push_back(pid);
                self.stats.conflicts += 1;
                AcquireResult::Queued
            }
        }
    }

    /// Releases `target` held by `pid`. If a waiter was queued, ownership
    /// transfers to it and its id is returned (the engine wakes it).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptState`] — in every build profile — if
    /// `target` was never acquired or `pid` is not its holder. Both mean
    /// the lock table and the caller's idea of it have diverged; the
    /// simulation point cannot be trusted past this moment.
    pub fn release(
        &mut self,
        pid: ProcessId,
        target: LockTarget,
    ) -> Result<Option<ProcessId>, Error> {
        #[cfg(feature = "invariants")]
        if let Some(prior) = self.acquired.get_mut(&pid) {
            prior.retain(|t| *t != target);
            if prior.is_empty() {
                self.acquired.remove(&pid);
            }
        }
        let Some(state) = self.locks.get_mut(&target) else {
            return Err(Error::corrupt(
                "engine::locks",
                format!("{pid:?} released {target:?}, which was never acquired"),
            ));
        };
        if state.holder != Some(pid) {
            return Err(Error::corrupt(
                "engine::locks",
                format!(
                    "{pid:?} released {target:?}, which is held by {:?}",
                    state.holder
                ),
            ));
        }
        Ok(match state.waiters.pop_front() {
            Some(next) => {
                state.holder = Some(next);
                Some(next)
            }
            None => {
                state.holder = None;
                None
            }
        })
    }

    /// Releases several locks, returning every process that got woken.
    ///
    /// # Errors
    ///
    /// Returns the first [`Error::CorruptState`] from
    /// [`LockManager::release`]; earlier targets in the slice stay
    /// released.
    pub fn release_all(
        &mut self,
        pid: ProcessId,
        targets: &[LockTarget],
    ) -> Result<Vec<ProcessId>, Error> {
        let mut woken = Vec::new();
        for &t in targets {
            if let Some(next) = self.release(pid, t)? {
                woken.push(next);
            }
        }
        Ok(woken)
    }

    /// Fault injection: forgets the holder of `target` (waiters keep
    /// waiting), simulating a lost lock grant. Returns `true` if a holder
    /// was dropped. The true holder's eventual release then surfaces as
    /// [`Error::CorruptState`].
    #[cfg(feature = "invariants")]
    pub fn inject_drop_lock(&mut self, target: LockTarget) -> bool {
        match self.locks.get_mut(&target) {
            Some(state) if state.holder.is_some() => {
                state.holder = None;
                true
            }
            _ => false,
        }
    }

    /// Fault injection: drops the holder of *some* currently held lock
    /// (the first in [`canonical_order`]), returning its target, or `None`
    /// when nothing is held.
    #[cfg(feature = "invariants")]
    pub fn inject_drop_any_held(&mut self) -> Option<LockTarget> {
        let target = self
            .locks
            .iter()
            .filter(|(_, s)| s.holder.is_some())
            .map(|(t, _)| *t)
            .min_by_key(canonical_order)?;
        self.inject_drop_lock(target).then_some(target)
    }

    /// The current holder of `target`, if locked.
    pub fn holder(&self, target: LockTarget) -> Option<ProcessId> {
        self.locks.get(&target).and_then(|s| s.holder)
    }

    /// Number of processes waiting on `target`.
    pub fn queue_len(&self, target: LockTarget) -> usize {
        self.locks.get(&target).map_or(0, |s| s.waiters.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: LockTarget = LockTarget::DistrictBlock(0);
    const W0: LockTarget = LockTarget::WarehouseBlock(0);

    fn pid(n: u32) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn uncontended_grant_and_release() {
        let mut m = LockManager::new();
        assert_eq!(m.acquire(pid(1), D0), AcquireResult::Granted);
        assert_eq!(m.holder(D0), Some(pid(1)));
        assert_eq!(m.release(pid(1), D0).unwrap(), None);
        assert_eq!(m.holder(D0), None);
        assert_eq!(m.stats().conflicts, 0);
        assert_eq!(m.stats().acquisitions, 1);
    }

    #[test]
    fn contended_fifo_handover() {
        let mut m = LockManager::new();
        assert_eq!(m.acquire(pid(1), D0), AcquireResult::Granted);
        assert_eq!(m.acquire(pid(2), D0), AcquireResult::Queued);
        assert_eq!(m.acquire(pid(3), D0), AcquireResult::Queued);
        assert_eq!(m.queue_len(D0), 2);
        // Release hands over to pid 2 first.
        assert_eq!(m.release(pid(1), D0).unwrap(), Some(pid(2)));
        assert_eq!(m.holder(D0), Some(pid(2)));
        assert_eq!(m.release(pid(2), D0).unwrap(), Some(pid(3)));
        assert_eq!(m.release(pid(3), D0).unwrap(), None);
        assert!((m.stats().conflict_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn independent_targets_do_not_conflict() {
        let mut m = LockManager::new();
        // Acquisitions follow canonical order (warehouse before district)
        // so the `invariants` lock-order witness accepts them.
        assert_eq!(m.acquire(pid(1), W0), AcquireResult::Granted);
        assert_eq!(
            m.acquire(pid(2), LockTarget::DistrictBlock(1)),
            AcquireResult::Granted
        );
        assert_eq!(m.acquire(pid(1), D0), AcquireResult::Granted);
        assert_eq!(m.stats().conflicts, 0);
    }

    #[test]
    fn release_all_wakes_every_handover() {
        let mut m = LockManager::new();
        m.acquire(pid(1), W0);
        m.acquire(pid(1), D0);
        m.acquire(pid(2), W0);
        m.acquire(pid(3), D0);
        let woken = m.release_all(pid(1), &[W0, D0]).unwrap();
        assert_eq!(woken, vec![pid(2), pid(3)]);
        assert_eq!(m.holder(W0), Some(pid(2)));
        assert_eq!(m.holder(D0), Some(pid(3)));
    }

    #[test]
    fn canonical_order_sorts_warehouse_before_district() {
        let mut targets = vec![D0, W0, LockTarget::WarehouseBlock(5)];
        targets.sort_by_key(canonical_order);
        assert_eq!(
            targets,
            vec![W0, LockTarget::WarehouseBlock(5), D0]
        );
    }

    #[test]
    fn releasing_unknown_lock_is_corrupt_state() {
        let mut m = LockManager::new();
        assert!(matches!(
            m.release(pid(1), D0),
            Err(Error::CorruptState { component: "engine::locks", .. })
        ));
    }

    #[test]
    fn releasing_by_non_holder_is_corrupt_state() {
        let mut m = LockManager::new();
        m.acquire(pid(1), D0);
        // Release by a process that never held the lock must not transfer
        // or clear ownership.
        assert!(matches!(
            m.release(pid(2), D0),
            Err(Error::CorruptState { component: "engine::locks", .. })
        ));
        assert_eq!(m.holder(D0), Some(pid(1)));
    }

    #[test]
    fn reset_stats_keeps_holders() {
        let mut m = LockManager::new();
        m.acquire(pid(1), D0);
        m.acquire(pid(2), D0);
        m.reset_stats();
        assert_eq!(m.stats(), LockStats::default());
        assert_eq!(m.holder(D0), Some(pid(1)));
        assert_eq!(m.queue_len(D0), 1);
    }
}
