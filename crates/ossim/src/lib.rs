//! Operating-system model for the ODB workload-scaling study.
//!
//! The paper attributes the growth of OS-space path length (Fig 6) to two
//! kernel activities: servicing disk I/O and context switching between the
//! database's many server processes (§4.2–4.3). This crate models exactly
//! that surface:
//!
//! * [`RunQueue`] — a Linux-2.4-style single ready queue feeding `P`
//!   processors, with context-switch counting;
//! * [`OsCosts`] — the instruction price list for kernel work (I/O
//!   submission, completion interrupt, context switch, timeslice tick),
//!   which the engine converts into OS-space IPX;
//! * [`CpuAccounting`] — per-processor user/OS/idle time, from which CPU
//!   utilization (Table 1's 90% criterion) and the OS/user split (Fig 3)
//!   are reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use odb_des::{ObserverHub, SimEvent, SimTime};
use std::collections::VecDeque;

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Kernel instruction costs, in instructions per event.
///
/// These are workload constants, not measured quantities: the paper's
/// observation is that OS IPX ≈ Σ (event rate × path length), with the
/// event *rates* varying across configurations while the path lengths
/// stay fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsCosts {
    /// Submitting one disk I/O (syscall entry, buffer setup, driver).
    pub io_submit_instructions: u64,
    /// Taking one disk-completion interrupt and waking the sleeper.
    pub io_complete_instructions: u64,
    /// One context switch (scheduler selection + register/AS switch).
    pub context_switch_instructions: u64,
    /// One lock acquire/release round trip through the kernel (semop).
    pub ipc_instructions: u64,
    /// Per-transaction fixed syscall overhead (network send/recv with the
    /// client, timer reads).
    pub per_txn_syscall_instructions: u64,
}

impl Default for OsCosts {
    /// Values representative of Linux 2.4 on IA-32 (tens of microseconds
    /// of kernel work per I/O at 1.6 GHz).
    fn default() -> Self {
        Self {
            io_submit_instructions: 28_000,
            io_complete_instructions: 35_000,
            context_switch_instructions: 15_000,
            ipc_instructions: 7_000,
            per_txn_syscall_instructions: 30_000,
        }
    }
}

/// Why a process stopped running (for switch accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Blocked on I/O or a lock: involuntary wait.
    Blocked,
    /// Used up its timeslice with others waiting.
    Preempted,
    /// Exited or has nothing to do.
    Finished,
}

/// A single global ready queue feeding `P` processors (Linux 2.4 had one
/// runqueue protected by one lock; per-CPU runqueues arrived in 2.6).
///
/// The engine drives it: [`RunQueue::make_ready`] when a process becomes
/// runnable, [`RunQueue::dispatch`] when a CPU needs work,
/// [`RunQueue::stop`] when the running process blocks or is preempted.
#[derive(Debug, Clone)]
pub struct RunQueue {
    ready: VecDeque<ProcessId>,
    running: Vec<Option<ProcessId>>,
    context_switches: u64,
    /// Switches that occurred because the outgoing process blocked (the
    /// paper correlates these with disk reads).
    blocking_switches: u64,
}

impl RunQueue {
    /// A queue feeding `processors` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero.
    pub fn new(processors: usize) -> Self {
        assert!(processors > 0, "need at least one processor");
        Self {
            ready: VecDeque::new(),
            running: vec![None; processors],
            context_switches: 0,
            blocking_switches: 0,
        }
    }

    /// Number of processors being fed.
    pub fn processors(&self) -> usize {
        self.running.len()
    }

    /// Marks a process runnable. Double-queueing is the caller's bug and
    /// is tolerated (first dispatch wins); blocked/new processes only.
    pub fn make_ready(&mut self, pid: ProcessId) {
        self.ready.push_back(pid);
    }

    /// Number of runnable-but-waiting processes.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The process currently on `cpu`, if any.
    pub fn running_on(&self, cpu: usize) -> Option<ProcessId> {
        self.running[cpu]
    }

    /// Gives `cpu` the next ready process, recording a context switch when
    /// the CPU changes occupant and announcing it on the observer seam
    /// (`now` stamps the emitted [`SimEvent::ContextSwitch`]). Returns the
    /// dispatched process, or `None` when the queue is empty (the CPU
    /// idles).
    pub fn dispatch(
        &mut self,
        cpu: usize,
        now: SimTime,
        hub: &mut ObserverHub,
    ) -> Option<ProcessId> {
        debug_assert!(self.running[cpu].is_none(), "stop before dispatching");
        let next = self.ready.pop_front()?;
        self.running[cpu] = Some(next);
        self.context_switches += 1;
        hub.emit_with(now, || SimEvent::ContextSwitch { cpu, pid: next.0 });
        Some(next)
    }

    /// Takes the running process off `cpu`, requeueing it when preempted.
    /// Returns the process that was running.
    pub fn stop(&mut self, cpu: usize, reason: StopReason) -> Option<ProcessId> {
        let pid = self.running[cpu].take()?;
        match reason {
            StopReason::Blocked => self.blocking_switches += 1,
            StopReason::Preempted => self.ready.push_back(pid),
            StopReason::Finished => {}
        }
        Some(pid)
    }

    /// Context switches recorded so far (dispatches onto a CPU).
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// The subset of switches caused by the previous occupant blocking.
    pub fn blocking_switches(&self) -> u64 {
        self.blocking_switches
    }

    /// Resets counters (after warm-up) without touching queue state.
    pub fn reset_stats(&mut self) {
        self.context_switches = 0;
        self.blocking_switches = 0;
    }

    /// Fault injection: clears `cpu`'s running slot without requeueing
    /// the occupant, desynchronising the queue from whoever scheduled
    /// the process. Returns the abandoned process, or `None` if the CPU
    /// was idle. Only available with the `invariants` feature; exists so
    /// the fault-injection harness can prove the engine reports this
    /// corruption as a typed error instead of aborting.
    #[cfg(feature = "invariants")]
    pub fn inject_clear_running(&mut self, cpu: usize) -> Option<ProcessId> {
        self.running[cpu].take()
    }
}

/// Per-processor time accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpuAccounting {
    user_ns: Vec<u64>,
    os_ns: Vec<u64>,
}

impl CpuAccounting {
    /// Accounting for `processors` CPUs.
    pub fn new(processors: usize) -> Self {
        Self {
            user_ns: vec![0; processors],
            os_ns: vec![0; processors],
        }
    }

    /// Charges user-mode execution to `cpu`.
    pub fn charge_user(&mut self, cpu: usize, span: SimTime) {
        self.user_ns[cpu] += span.as_nanos();
    }

    /// Charges kernel-mode execution to `cpu`.
    pub fn charge_os(&mut self, cpu: usize, span: SimTime) {
        self.os_ns[cpu] += span.as_nanos();
    }

    /// Total busy time across CPUs.
    pub fn busy(&self) -> SimTime {
        let total: u64 = self.user_ns.iter().sum::<u64>() + self.os_ns.iter().sum::<u64>();
        SimTime::from_nanos(total)
    }

    /// CPU utilization over a window: busy time over `P × window`.
    pub fn utilization(&self, window: SimTime) -> f64 {
        let capacity = window.as_nanos() as f64 * self.user_ns.len() as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.busy().as_nanos() as f64 / capacity).min(1.0)
    }

    /// Fraction of *busy* time spent in the kernel (Fig 3's split).
    pub fn os_busy_fraction(&self) -> f64 {
        let os: u64 = self.os_ns.iter().sum();
        let busy = self.busy().as_nanos();
        if busy == 0 {
            return 0.0;
        }
        os as f64 / busy as f64
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        self.user_ns.iter_mut().for_each(|v| *v = 0);
        self.os_ns.iter_mut().for_each(|v| *v = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dispatch with no observers listening (most tests don't care).
    fn dispatch(q: &mut RunQueue, cpu: usize) -> Option<ProcessId> {
        q.dispatch(cpu, SimTime::ZERO, &mut ObserverHub::new())
    }

    #[test]
    fn dispatch_is_fifo_and_counts_switches() {
        let mut q = RunQueue::new(2);
        q.make_ready(ProcessId(1));
        q.make_ready(ProcessId(2));
        q.make_ready(ProcessId(3));
        assert_eq!(q.ready_len(), 3);
        assert_eq!(dispatch(&mut q, 0), Some(ProcessId(1)));
        assert_eq!(dispatch(&mut q, 1), Some(ProcessId(2)));
        assert_eq!(q.running_on(0), Some(ProcessId(1)));
        assert_eq!(q.context_switches(), 2);
        assert_eq!(q.ready_len(), 1);
    }

    #[test]
    fn blocked_process_leaves_queue_preempted_returns() {
        let mut q = RunQueue::new(1);
        q.make_ready(ProcessId(1));
        q.make_ready(ProcessId(2));
        dispatch(&mut q, 0);
        assert_eq!(q.stop(0, StopReason::Blocked), Some(ProcessId(1)));
        assert_eq!(q.blocking_switches(), 1);
        assert_eq!(q.ready_len(), 1, "blocked pid is NOT requeued");
        dispatch(&mut q, 0);
        assert_eq!(q.stop(0, StopReason::Preempted), Some(ProcessId(2)));
        assert_eq!(q.ready_len(), 1, "preempted pid IS requeued");
        // Finishing removes without requeue.
        dispatch(&mut q, 0);
        assert_eq!(q.stop(0, StopReason::Finished), Some(ProcessId(2)));
        assert_eq!(q.ready_len(), 0);
        assert_eq!(dispatch(&mut q, 0), None, "idle CPU");
        assert_eq!(q.stop(0, StopReason::Blocked), None);
    }

    #[test]
    fn dispatch_announces_context_switches() {
        struct Switches(Vec<(usize, u32)>);
        impl odb_des::SimObserver for Switches {
            fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
                if let SimEvent::ContextSwitch { cpu, pid } = *event {
                    self.0.push((cpu, pid));
                }
            }
        }
        let mut hub = ObserverHub::new();
        hub.register(Box::new(Switches(Vec::new())));
        let mut q = RunQueue::new(2);
        q.make_ready(ProcessId(7));
        q.make_ready(ProcessId(8));
        q.dispatch(1, SimTime::from_micros(3), &mut hub);
        q.dispatch(0, SimTime::from_micros(4), &mut hub);
        // An empty queue dispatches nothing and must not emit.
        q.stop(0, StopReason::Finished);
        assert_eq!(q.dispatch(0, SimTime::from_micros(5), &mut hub), None);
        assert_eq!(
            hub.get::<Switches>().map(|s| s.0.as_slice()),
            Some(&[(1usize, 7u32), (0, 8)][..])
        );
    }

    #[test]
    fn reset_stats_keeps_processes() {
        let mut q = RunQueue::new(1);
        q.make_ready(ProcessId(9));
        dispatch(&mut q, 0);
        q.reset_stats();
        assert_eq!(q.context_switches(), 0);
        assert_eq!(q.blocking_switches(), 0);
        assert_eq!(q.running_on(0), Some(ProcessId(9)));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = RunQueue::new(0);
    }

    #[test]
    fn accounting_utilization_and_split() {
        let mut acc = CpuAccounting::new(2);
        // CPU0: 600 ms user + 200 ms OS. CPU1: 400 ms user, rest idle.
        acc.charge_user(0, SimTime::from_millis(600));
        acc.charge_os(0, SimTime::from_millis(200));
        acc.charge_user(1, SimTime::from_millis(400));
        let window = SimTime::from_secs(1);
        // busy = 1.2 s of 2 s capacity.
        assert!((acc.utilization(window) - 0.6).abs() < 1e-12);
        assert!((acc.os_busy_fraction() - 200.0 / 1200.0).abs() < 1e-12);
        acc.reset();
        assert_eq!(acc.utilization(window), 0.0);
        assert_eq!(acc.os_busy_fraction(), 0.0);
    }

    #[test]
    fn utilization_clamps_and_handles_zero_window() {
        let mut acc = CpuAccounting::new(1);
        acc.charge_user(0, SimTime::from_secs(5));
        assert_eq!(acc.utilization(SimTime::from_secs(1)), 1.0);
        assert_eq!(acc.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn default_costs_are_plausible() {
        let c = OsCosts::default();
        // One blocked read costs submit + complete + 2 switches of kernel
        // work; at 1.6 GHz / CPI 2 that is ~40 us — the right ballpark.
        let per_read = c.io_submit_instructions
            + c.io_complete_instructions
            + 2 * c.context_switch_instructions;
        assert!((40_000..=120_000).contains(&per_read));
    }
}
