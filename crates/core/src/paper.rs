//! Published reference values from the paper, for scoring a reproduction.
//!
//! These are the quantitative anchors the paper prints (its figures carry
//! no absolute axes in several cases, so only the printed numbers are
//! recorded). EXPERIMENTS.md compares each regenerated artifact against
//! them; the integration tests assert the coarse bands.

/// Table 5 of the paper: warehouses at the CPI and MPI pivot points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishedPivots {
    /// Processor count.
    pub processors: u32,
    /// CPI pivot, warehouses.
    pub cpi: u32,
    /// MPI pivot, warehouses.
    pub mpi: u32,
}

/// The paper's Table 5 rows.
pub const TABLE5: [PublishedPivots; 3] = [
    PublishedPivots {
        processors: 1,
        cpi: 119,
        mpi: 102,
    },
    PublishedPivots {
        processors: 2,
        cpi: 142,
        mpi: 147,
    },
    PublishedPivots {
        processors: 4,
        cpi: 130,
        mpi: 144,
    },
];

/// §6.3: the CPI pivot measured on the quad Itanium2 validation machine.
pub const ITANIUM2_CPI_PIVOT: u32 = 118;

/// §5.2: L3 misses contribute "nearly 60%" of the overall CPI.
pub const L3_CPI_SHARE: f64 = 0.60;

/// §4.3: ODB generates about 6 KB of redo per transaction, independent
/// of `W` and `P`.
pub const LOG_BYTES_PER_TXN: f64 = 6.0 * 1024.0;

/// Table 3: the unloaded bus-transaction time measured at 1P.
pub const BUS_TRANSACTION_1P_CYCLES: f64 = 102.0;

/// §5.2 / §7: bus utilization approaches 45% on 4P and stays under 30%
/// on 2P.
pub const BUS_UTILIZATION_4P: f64 = 0.45;
/// Upper bound the paper reports for 2P bus utilization.
pub const BUS_UTILIZATION_2P_MAX: f64 = 0.30;

/// §4.1: OS share of CPU time grows from under 10% to just above 20% at
/// 800 warehouses.
pub const OS_SHARE_RANGE: (f64, f64) = (0.10, 0.20);

/// Table 1: the client counts the paper used, `(W, 1P, 2P, 4P)`.
pub const TABLE1: [(u32, u32, u32, u32); 5] = [
    (10, 8, 10, 10),
    (50, 8, 16, 32),
    (100, 6, 16, 48),
    (500, 12, 25, 56),
    (800, 13, 36, 64),
];

/// §4.1: region boundaries on the paper's machine — CPU bound below this
/// many warehouses…
pub const CPU_BOUND_MAX_W: u32 = 50;
/// …balanced below this many…
pub const BALANCED_MAX_W: u32 = 800;
/// …and I/O bound at this point, where 4P utilization pinned at 63%.
pub const IO_BOUND_W: u32 = 1200;
/// The stuck utilization the paper reports at 1200 W on 4P.
pub const IO_BOUND_UTILIZATION_4P: f64 = 0.63;

/// Relative error of a measured value against a published one
/// (`|m − p| / p`); infinite when the published value is zero.
///
/// ```
/// use odb_core::paper::relative_error;
///
/// assert!((relative_error(121.0, 130.0) - 0.0692).abs() < 1e-3);
/// ```
pub fn relative_error(measured: f64, published: f64) -> f64 {
    if published == 0.0 {
        return f64::INFINITY;
    }
    (measured - published).abs() / published.abs()
}

/// `true` when `measured` is within `band` relative error of `published`.
pub fn within_band(measured: f64, published: f64, band: f64) -> bool {
    relative_error(measured, published) <= band
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_covers_all_processor_counts() {
        let ps: Vec<u32> = TABLE5.iter().map(|r| r.processors).collect();
        assert_eq!(ps, vec![1, 2, 4]);
        // Every published pivot sits in the 100-150 W band the paper
        // highlights ("All the pivot points are below 150 warehouses").
        for row in TABLE5 {
            assert!(row.cpi <= 150 && row.cpi >= 100);
            assert!(row.mpi <= 150 && row.mpi >= 100);
        }
    }

    #[test]
    fn table1_clients_grow_with_p_and_broadly_with_w() {
        for (_, c1, c2, c4) in TABLE1 {
            assert!(c1 <= c2 && c2 <= c4, "clients grow with P");
        }
        let first = TABLE1.first().unwrap();
        let last = TABLE1.last().unwrap();
        assert!(last.3 > first.3, "4P clients grow with W");
    }

    #[test]
    fn error_helpers() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!(within_band(121.0, 130.0, 0.10));
        assert!(!within_band(68.0, 130.0, 0.10));
    }
}
