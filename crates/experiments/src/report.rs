//! Rendering: aligned text tables and CSV emission.

use odb_core::series::Series;
use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// ```
/// use odb_experiments::report::TextTable;
///
/// let mut t = TextTable::new(vec!["W".into(), "TPS".into()]);
/// t.row(vec!["10".into(), "1998".into()]);
/// let s = t.render();
/// assert!(s.contains("W"));
/// assert!(s.contains("1998"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns separated by two spaces.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>width$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.header, &mut out);
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }
}

/// Renders several series sharing an x-axis as one table: first column
/// `x_label`, one column per series.
///
/// Series may have different x sets; missing points render empty.
pub fn series_table(x_label: &str, series: &[Series], precision: usize) -> TextTable {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.xs())
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite xs"));
    xs.dedup();
    let mut header = vec![x_label.to_owned()];
    header.extend(series.iter().map(|s| s.label().to_owned()));
    let mut table = TextTable::new(header);
    for &x in &xs {
        let mut cells = vec![format_num(x, 0)];
        for s in series {
            cells.push(
                s.y_at(x)
                    .map(|y| format_num(y, precision))
                    .unwrap_or_default(),
            );
        }
        table.row(cells);
    }
    table
}

/// Formats a number with fixed decimals, dropping trailing noise.
pub fn format_num(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Warehouses".into(), "TPS".into()]);
        t.row(vec!["10".into(), "1998".into()]);
        t.row(vec!["800".into(), "920".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header, rule, two rows");
        assert!(lines[0].ends_with("TPS"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned: the shorter number is padded.
        assert!(lines[2].contains("        10"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = TextTable::new(vec!["a".into(), "b,c".into()]);
        t.row(vec!["1".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,\"b,c\"");
        assert_eq!(csv.lines().nth(1).unwrap(), "1,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn series_table_merges_x_axes() {
        let a = Series::from_xy("1P", [10.0, 100.0], [1.0, 2.0]);
        let b = Series::from_xy("4P", [10.0, 50.0], [3.0, 4.0]);
        let t = series_table("W", &[a, b], 1);
        let s = t.render();
        assert!(s.contains("1P"));
        assert!(s.contains("4P"));
        assert_eq!(t.len(), 3, "x in {{10, 50, 100}}");
        // Missing cell renders empty: row for 100 has no 4P value.
        let csv = t.to_csv();
        assert!(csv.contains("100,2.0,"));
        assert!(csv.contains("50,,4.0"));
    }

    #[test]
    fn ragged_rows_pad() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "extra".into()]);
        let s = t.render();
        assert!(s.contains("extra"));
    }
}
