//! The iron law of database performance (§3.4).
//!
//! The paper adapts the classic iron law of processor performance
//! (`S = F / (PL × CPI)`) to transaction throughput on a multiprocessor:
//!
//! ```text
//! TPS_mp = (P × F) / (IPX × CPI)
//! ```
//!
//! where `P` is the processor count, `F` the clock frequency, `IPX` the
//! average instructions executed per transaction, and `CPI` the average
//! cycles per instruction measured at each processor (including the effects
//! of inter-processor communication).

/// Transactions per second predicted by the iron law.
///
/// Non-positive or non-finite `ipx`/`cpi` yield `0.0` rather than an
/// infinity, so the function is safe to call on unvalidated measurements.
///
/// ```
/// use odb_core::ironlaw::tps;
///
/// // One 1.6 GHz processor, 1M instructions/txn at CPI 2 -> 800 TPS.
/// assert_eq!(tps(1, 1.6e9, 1.0e6, 2.0), 800.0);
/// // Four processors quadruple it.
/// assert_eq!(tps(4, 1.6e9, 1.0e6, 2.0), 3200.0);
/// ```
pub fn tps(processors: u32, frequency_hz: f64, ipx: f64, cpi: f64) -> f64 {
    if !ipx.is_finite() || !cpi.is_finite() || ipx <= 0.0 || cpi <= 0.0 || frequency_hz <= 0.0 {
        return 0.0;
    }
    processors as f64 * frequency_hz / (ipx * cpi)
}

/// Single-processor throughput, `TPS_cpu = F / (IPX × CPI)`.
pub fn tps_per_cpu(frequency_hz: f64, ipx: f64, cpi: f64) -> f64 {
    tps(1, frequency_hz, ipx, cpi)
}

/// The CPI a system must achieve to reach `target_tps`, holding the other
/// iron-law terms fixed; `None` if the target is unreachable (zero or
/// negative inputs).
///
/// ```
/// use odb_core::ironlaw::cpi_for;
///
/// let cpi = cpi_for(3200.0, 4, 1.6e9, 1.0e6).unwrap();
/// assert_eq!(cpi, 2.0);
/// ```
pub fn cpi_for(target_tps: f64, processors: u32, frequency_hz: f64, ipx: f64) -> Option<f64> {
    if target_tps <= 0.0 || ipx <= 0.0 || frequency_hz <= 0.0 || processors == 0 {
        return None;
    }
    let cpi = processors as f64 * frequency_hz / (target_tps * ipx);
    cpi.is_finite().then_some(cpi)
}

/// The IPX a workload must shrink to in order to reach `target_tps`,
/// holding the other iron-law terms fixed; `None` if unreachable.
pub fn ipx_for(target_tps: f64, processors: u32, frequency_hz: f64, cpi: f64) -> Option<f64> {
    if target_tps <= 0.0 || cpi <= 0.0 || frequency_hz <= 0.0 || processors == 0 {
        return None;
    }
    let ipx = processors as f64 * frequency_hz / (target_tps * cpi);
    ipx.is_finite().then_some(ipx)
}

/// Relative throughput of configuration `b` over configuration `a`, each
/// given as `(processors, frequency_hz, ipx, cpi)`.
///
/// The paper's central observation is that a larger `W` *degrades*
/// throughput through both IPX growth and CPI growth; this helper
/// quantifies the combined effect.
///
/// ```
/// use odb_core::ironlaw::speedup;
///
/// // Doubling IPX and raising CPI 50% costs 3x in throughput.
/// let s = speedup((4, 1.6e9, 1.0e6, 2.0), (4, 1.6e9, 2.0e6, 3.0));
/// assert!((s - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn speedup(a: (u32, f64, f64, f64), b: (u32, f64, f64, f64)) -> f64 {
    let ta = tps(a.0, a.1, a.2, a.3);
    let tb = tps(b.0, b.1, b.2, b.3);
    if ta <= 0.0 {
        return 0.0;
    }
    tb / ta
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 1.6e9;

    #[test]
    fn tps_scales_linearly_in_p_and_f() {
        let base = tps(1, F, 1.2e6, 4.0);
        assert!((tps(2, F, 1.2e6, 4.0) - 2.0 * base).abs() < 1e-9);
        assert!((tps(4, F, 1.2e6, 4.0) - 4.0 * base).abs() < 1e-9);
        assert!((tps(1, 2.0 * F, 1.2e6, 4.0) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn tps_inverse_in_ipx_and_cpi() {
        let base = tps(4, F, 1.0e6, 2.0);
        assert!((tps(4, F, 2.0e6, 2.0) - base / 2.0).abs() < 1e-9);
        assert!((tps(4, F, 1.0e6, 4.0) - base / 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_give_zero() {
        assert_eq!(tps(4, F, 0.0, 2.0), 0.0);
        assert_eq!(tps(4, F, 1.0e6, 0.0), 0.0);
        assert_eq!(tps(4, F, -1.0, 2.0), 0.0);
        assert_eq!(tps(4, 0.0, 1.0e6, 2.0), 0.0);
        assert_eq!(tps(4, F, f64::NAN, 2.0), 0.0);
        assert_eq!(tps(0, F, 1.0e6, 2.0), 0.0);
    }

    #[test]
    fn solvers_round_trip() {
        let t = tps(4, F, 1.3e6, 3.7);
        let cpi = cpi_for(t, 4, F, 1.3e6).unwrap();
        assert!((cpi - 3.7).abs() < 1e-9);
        let ipx = ipx_for(t, 4, F, 3.7).unwrap();
        assert!((ipx - 1.3e6).abs() < 1e-3);
    }

    #[test]
    fn solvers_reject_degenerate_targets() {
        assert!(cpi_for(0.0, 4, F, 1.0e6).is_none());
        assert!(cpi_for(100.0, 0, F, 1.0e6).is_none());
        assert!(ipx_for(-5.0, 4, F, 2.0).is_none());
        assert!(ipx_for(100.0, 4, F, 0.0).is_none());
    }

    #[test]
    fn per_cpu_matches_p1() {
        assert_eq!(tps_per_cpu(F, 1.0e6, 2.0), tps(1, F, 1.0e6, 2.0));
    }

    #[test]
    fn speedup_of_identical_configs_is_one() {
        let c = (4, F, 1.2e6, 4.0);
        assert!((speedup(c, c) - 1.0).abs() < 1e-12);
        assert_eq!(speedup((4, F, 0.0, 4.0), c), 0.0);
    }
}
