//! The sweep runner: client search plus measurement for every `(W, P)`.
//!
//! # Execution model
//!
//! The paper's evaluation is an embarrassingly parallel grid: each
//! `(W, P)` point is an independent client search followed by an
//! independent measurement-grade run. [`Sweep::run_points`] therefore
//! executes the grid on a bounded pool of [`SweepOptions::jobs`] scoped
//! worker threads. Workers pull the next pending point from a shared
//! atomic cursor, run the utilization search, pipeline straight into the
//! measurement for that point (no barrier between the two stages), and
//! feed the finished [`SweepRow`] into a shared `BTreeMap` keyed by
//! `(P, W)` — so collection order is always the deterministic grid
//! order no matter which worker finished first.
//!
//! # Determinism
//!
//! Every stochastic component of a point derives from a seed computed by
//! [`SimOptions::for_point`] from `(base seed, W, P)` alone. Combined
//! with the ordered collection above, a `jobs = N` sweep is
//! **bit-identical** to a `jobs = 1` sweep (asserted by the
//! `parallel_sweep_matches_sequential` test).
//!
//! # Failure isolation
//!
//! One bad point fails that point, not the ladder: a point whose
//! configuration is rejected or whose simulation reports corrupt state
//! lands in [`Sweep::failures`] while every other point still runs and
//! is measured. Callers that need an all-or-nothing sweep gate on
//! [`Sweep::ensure_complete`].

use crate::ladder::{paper_ladder, ConfigPoint, CLIENT_GRID};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::metrics::Measurement;
use odb_engine::{OdbSimulator, PhaseSeconds, SimOptions};
use odb_memsim::trace::Characterization;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The paper's utilization floor for comparable configurations (§3.2.1).
pub const UTILIZATION_TARGET: f64 = 0.90;

/// Controls sweep fidelity and parallelism.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Fast options used while searching for the client count.
    pub probe: SimOptions,
    /// Measurement-grade options for the final run per point.
    pub measure: SimOptions,
    /// Utilization floor the client search aims for.
    pub utilization_target: f64,
    /// Worker threads running grid points concurrently (clamped to ≥ 1).
    /// Output is bit-identical for every value; see the module docs.
    pub jobs: usize,
}

impl SweepOptions {
    /// Experiment-grade settings (used by the CLI and benches).
    pub fn standard() -> Self {
        let mut probe = SimOptions::quick();
        probe.char_warmup_instructions = 1_200_000;
        probe.char_measure_instructions = 600_000;
        probe.warmup = odb_des::SimTime::from_millis(1_500);
        probe.measure = odb_des::SimTime::from_millis(2_500);
        let measure = SimOptions::standard();
        Self {
            probe: align_probe_load_mix(probe, &measure),
            measure,
            utilization_target: UTILIZATION_TARGET,
            jobs: 1,
        }
    }

    /// Reduced settings for tests: quick probes and quick measurement.
    pub fn quick() -> Self {
        let measure = SimOptions::quick();
        Self {
            probe: align_probe_load_mix(SimOptions::quick(), &measure),
            measure,
            utilization_target: UTILIZATION_TARGET,
            jobs: 1,
        }
    }

    /// Returns a copy that runs grid points on `jobs` worker threads
    /// (values below 1 are clamped to sequential execution).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// The one home of the probe/measure load-mix contract (§3.2.1):
/// configurations are only comparable when the client search judges CPU
/// utilization under the same load mix the measurement run sees. Disk
/// write traffic (dirty-page writeback) is the mix component that lags,
/// so the probe's writeback delay is pulled inside the (shorter) probe
/// window in the same proportion the measurement delay occupies the
/// measurement window — and never beyond the measurement's own delay.
fn align_probe_load_mix(
    mut probe: odb_engine::SimOptions,
    measure: &odb_engine::SimOptions,
) -> odb_engine::SimOptions {
    let measure_window = measure.measure.as_secs_f64();
    if measure_window > 0.0 {
        let occupancy = measure.system.writeback_delay.as_secs_f64() / measure_window;
        let scaled = probe.measure.mul_f64(occupancy);
        probe.system.writeback_delay = scaled.min(measure.system.writeback_delay);
    }
    probe
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The grid point.
    pub point: ConfigPoint,
    /// Client count chosen by the utilization search.
    pub clients: u32,
    /// `true` when even the maximum client count missed the utilization
    /// target — the I/O-bound region (1200 W in the paper).
    pub saturated: bool,
    /// The measurement-grade run.
    pub measurement: Measurement,
    /// The final cache characterization (for coherence analyses).
    pub characterization: Characterization,
    /// Wall-clock spent in each simulation phase for this point, summed
    /// over the probe runs of the client search and the measurement-grade
    /// run. Diagnostic only — never persisted to `sweep.csv`, so the
    /// results drift gate is blind to it — but surfaced by `odb-bench` so
    /// perf work can ratchet the phase that actually dominates.
    pub phase_seconds: PhaseSeconds,
}

/// Outcome of the client-count utilization search for one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSearch {
    /// Chosen client count (minimal qualifying count plus one grid step
    /// of headroom, or the grid maximum when saturated).
    pub clients: u32,
    /// `true` when even [`CLIENT_GRID`]'s maximum missed the target.
    pub saturated: bool,
    /// Wall-clock the probe runs of this search spent per phase.
    pub phase_seconds: PhaseSeconds,
}

/// All measured points, keyed by `(P, W)`.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    rows: BTreeMap<(u32, u32), SweepRow>,
    failures: BTreeMap<(u32, u32), odb_core::Error>,
}

impl Sweep {
    /// Runs the full paper ladder on `system` (pass
    /// [`SystemConfig::xeon_quad`] or [`SystemConfig::itanium2_quad`];
    /// the `processors` field is overridden per point).
    ///
    /// Infallible by design: a point that errors is recorded in
    /// [`Sweep::failures`] and the remaining points still run. Callers
    /// that need every point measured gate on [`Sweep::ensure_complete`].
    pub fn run(system: &SystemConfig, options: &SweepOptions) -> Self {
        Self::run_points(system, options, &paper_ladder())
    }

    /// Runs specific grid points (tests and partial regenerations) on
    /// [`SweepOptions::jobs`] worker threads. Output is independent of
    /// the worker count; see the module docs for why.
    ///
    /// A point whose configuration or simulation errors is recorded in
    /// [`Sweep::failures`] keyed by `(P, W)`; the other points are
    /// unaffected.
    pub fn run_points(
        system: &SystemConfig,
        options: &SweepOptions,
        points: &[ConfigPoint],
    ) -> Self {
        let jobs = options.jobs.clamp(1, points.len().max(1));
        if jobs == 1 {
            let mut sweep = Self::default();
            for &point in points {
                let key = (point.processors, point.warehouses);
                match Self::run_point(system, options, point) {
                    Ok(row) => {
                        sweep.rows.insert(key, row);
                    }
                    Err(e) => {
                        sweep.failures.insert(key, e);
                    }
                }
            }
            return sweep;
        }

        // Work distribution: a shared atomic cursor hands each worker the
        // next pending point, so a slow point (the saturated 1200 W
        // search) never stalls the rest of the grid behind a static
        // partition. Finished rows and failures land in shared maps keyed
        // by (P, W), so collection order is grid order regardless of
        // completion order — and a failed point never aborts its peers.
        let rows = Mutex::new(BTreeMap::new());
        let failures = Mutex::new(BTreeMap::new());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&point) = points.get(index) else { break };
                    let key = (point.processors, point.warehouses);
                    match Self::run_point(system, options, point) {
                        Ok(row) => {
                            lock_clean(&rows).insert(key, row);
                        }
                        Err(e) => {
                            lock_clean(&failures).insert(key, e);
                        }
                    }
                });
            }
        });
        Self {
            rows: rows.into_inner().unwrap_or_else(|p| p.into_inner()),
            failures: failures.into_inner().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Points that failed to measure, keyed by `(P, W)` in grid order.
    pub fn failures(&self) -> &BTreeMap<(u32, u32), odb_core::Error> {
        &self.failures
    }

    /// Errors if any point failed, returning the first failure in grid
    /// order annotated with its `(P, W)` coordinates. Use after
    /// [`Sweep::run`]/[`Sweep::run_points`] when partial ladders are not
    /// acceptable (persistence, figure regeneration, benchmarks).
    ///
    /// # Errors
    ///
    /// The first failed point's error, annotated with its coordinates
    /// where the variant carries a message (the variant itself is
    /// preserved, so `InvalidConfig` stays distinguishable from
    /// `CorruptState`).
    pub fn ensure_complete(&self) -> Result<(), odb_core::Error> {
        let Some(((p, w), e)) = self.failures.iter().next() else {
            return Ok(());
        };
        Err(match e.clone() {
            odb_core::Error::InvalidConfig { field, reason } => {
                odb_core::Error::InvalidConfig {
                    field,
                    reason: format!("sweep point (W={w}, P={p}): {reason}"),
                }
            }
            odb_core::Error::CorruptState { component, detail } => {
                odb_core::Error::CorruptState {
                    component,
                    detail: format!("sweep point (W={w}, P={p}): {detail}"),
                }
            }
            other => other,
        })
    }

    /// Probe-fidelity CPU utilization of `point` at `clients` clients —
    /// the quantity the client search thresholds. Deterministic: the
    /// probe seed comes from [`SimOptions::for_point`].
    ///
    /// # Errors
    ///
    /// Propagates configuration/simulation errors.
    pub fn probe_utilization(
        system: &SystemConfig,
        options: &SweepOptions,
        point: ConfigPoint,
        clients: u32,
    ) -> Result<f64, odb_core::Error> {
        Self::probe_utilization_timed(system, options, point, clients).map(|(u, _)| u)
    }

    /// [`Sweep::probe_utilization`] plus the probe run's per-phase
    /// wall-clock, so the client search can charge its cost to the right
    /// phase in the point's [`SweepRow::phase_seconds`].
    fn probe_utilization_timed(
        system: &SystemConfig,
        options: &SweepOptions,
        point: ConfigPoint,
        clients: u32,
    ) -> Result<(f64, PhaseSeconds), odb_core::Error> {
        let sys = system.clone().with_processors(point.processors);
        let probe = options.probe.for_point(point.warehouses, point.processors);
        let config = OltpConfig::new(WorkloadConfig::new(point.warehouses, clients)?, sys)?;
        let artifacts = OdbSimulator::new(config, probe)?.run_detailed()?;
        Ok((
            artifacts.measurement.cpu_utilization,
            artifacts.phase_seconds,
        ))
    }

    /// The client-count utilization search for one point: binary-search
    /// [`CLIENT_GRID`] for the first count reaching the target (the grid
    /// is ascending and utilization is monotone in clients to within
    /// noise), then add one grid step of headroom. The headroom absorbs
    /// the fidelity gap between the fast probe and the measurement-grade
    /// run — and mirrors how the paper's operators provision clients:
    /// comfortably above, not at, the 90% knife edge.
    ///
    /// # Errors
    ///
    /// Propagates configuration/simulation errors.
    pub fn search_clients(
        system: &SystemConfig,
        options: &SweepOptions,
        point: ConfigPoint,
    ) -> Result<ClientSearch, odb_core::Error> {
        let mut phase = PhaseSeconds::default();
        let mut probe = |clients: u32| -> Result<f64, odb_core::Error> {
            let (utilization, p) = Self::probe_utilization_timed(system, options, point, clients)?;
            phase.accumulate(&p);
            Ok(utilization)
        };
        let mut lo = 0usize;
        let mut hi = CLIENT_GRID.len() - 1;
        if probe(CLIENT_GRID[hi])? < options.utilization_target {
            return Ok(ClientSearch {
                clients: CLIENT_GRID[hi],
                saturated: true,
                phase_seconds: phase,
            });
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if probe(CLIENT_GRID[mid])? >= options.utilization_target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(ClientSearch {
            clients: CLIENT_GRID[(hi + 1).min(CLIENT_GRID.len() - 1)],
            saturated: false,
            phase_seconds: phase,
        })
    }

    /// Client search pipelined into measurement for one point.
    fn run_point(
        system: &SystemConfig,
        options: &SweepOptions,
        point: ConfigPoint,
    ) -> Result<SweepRow, odb_core::Error> {
        let ClientSearch {
            clients,
            saturated,
            phase_seconds: mut phase,
        } = Self::search_clients(system, options, point)?;
        let sys = system.clone().with_processors(point.processors);
        let measure = options.measure.for_point(point.warehouses, point.processors);
        let config = OltpConfig::new(WorkloadConfig::new(point.warehouses, clients)?, sys)?;
        let artifacts = OdbSimulator::new(config, measure)?.run_detailed()?;
        phase.accumulate(&artifacts.phase_seconds);
        Ok(SweepRow {
            point,
            clients,
            saturated,
            measurement: artifacts.measurement,
            characterization: artifacts.characterization,
            phase_seconds: phase,
        })
    }

    /// Assembles a sweep from pre-computed rows (testing, replaying saved
    /// results).
    pub fn from_rows(rows: Vec<SweepRow>) -> Self {
        Self {
            rows: rows
                .into_iter()
                .map(|r| ((r.point.processors, r.point.warehouses), r))
                .collect(),
            failures: BTreeMap::new(),
        }
    }

    /// The row for `(processors, warehouses)`, if measured.
    pub fn row(&self, processors: u32, warehouses: u32) -> Option<&SweepRow> {
        self.rows.get(&(processors, warehouses))
    }

    /// Rows for one processor count, ascending in `W`.
    pub fn rows_for(&self, processors: u32) -> Vec<&SweepRow> {
        self.rows
            .range((processors, 0)..(processors + 1, 0))
            .map(|(_, row)| row)
            .collect()
    }

    /// All rows in `(P, W)` order.
    pub fn iter(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows.values()
    }

    /// Number of measured points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Locks a mutex, discarding poisoning: sweep workers hold these locks
/// only around infallible map/option operations, so a poisoned lock can
/// only mean a panic in *another* worker's simulation code, and the data
/// under this lock is still consistent.
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end sweep exercises the search and projections.
    /// Kept tiny: full-ladder sweeps live in the CLI and benches.
    #[test]
    fn mini_sweep_finds_clients_and_measures() {
        let points = [
            ConfigPoint {
                warehouses: 10,
                processors: 1,
            },
            ConfigPoint {
                warehouses: 10,
                processors: 2,
            },
        ];
        let sweep =
            Sweep::run_points(&SystemConfig::xeon_quad(), &SweepOptions::quick(), &points);
        sweep.ensure_complete().unwrap();
        assert_eq!(sweep.len(), 2);
        assert!(!sweep.is_empty());
        let row = sweep.row(1, 10).expect("measured");
        assert!(row.clients >= 1);
        assert!(!row.saturated, "10 W is CPU-bound, not I/O-bound");
        assert!(row.measurement.cpu_utilization >= 0.90);
        assert!(row.measurement.transactions > 0);
        // rows_for returns the P=1 block only.
        assert_eq!(sweep.rows_for(1).len(), 1);
        assert_eq!(sweep.rows_for(2).len(), 1);
        assert_eq!(sweep.rows_for(4).len(), 0);
        // 2P needs at least as many clients as 1P (Table 1's trend).
        let row2 = sweep.row(2, 10).unwrap();
        assert!(row2.clients >= row.clients);
    }

    /// The tentpole guarantee: a parallel sweep is bit-identical to a
    /// sequential sweep, row for row.
    #[test]
    fn parallel_sweep_matches_sequential() {
        let points: Vec<ConfigPoint> = [1u32, 2, 4]
            .iter()
            .flat_map(|&p| {
                [10u32, 25].iter().map(move |&w| ConfigPoint {
                    warehouses: w,
                    processors: p,
                })
            })
            .collect();
        let system = SystemConfig::xeon_quad();
        let sequential = Sweep::run_points(&system, &SweepOptions::quick(), &points);
        let parallel =
            Sweep::run_points(&system, &SweepOptions::quick().with_jobs(4), &points);
        sequential.ensure_complete().unwrap();
        parallel.ensure_complete().unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(a.point, b.point, "collection order must be grid order");
            assert_eq!(a.clients, b.clients);
            assert_eq!(a.saturated, b.saturated);
            assert_eq!(a.measurement, b.measurement, "bit-identical rows at {:?}", a.point);
        }
    }

    /// The binary search must agree with a brute-force linear scan of
    /// CLIENT_GRID — i.e. still return the *minimal* qualifying count
    /// (plus the documented one-step headroom) when points run
    /// concurrently.
    #[test]
    fn client_search_is_minimal_under_concurrency() {
        let system = SystemConfig::xeon_quad();
        let options = SweepOptions::quick().with_jobs(4);
        let points = [
            ConfigPoint {
                warehouses: 10,
                processors: 1,
            },
            ConfigPoint {
                warehouses: 25,
                processors: 2,
            },
        ];
        let sweep = Sweep::run_points(&system, &options, &points);
        sweep.ensure_complete().unwrap();
        for &point in &points {
            // Reference: first qualifying count by exhaustive ascent.
            let minimal_index = CLIENT_GRID.iter().position(|&c| {
                Sweep::probe_utilization(&system, &options, point, c).unwrap()
                    >= options.utilization_target
            });
            let expected = match minimal_index {
                Some(i) => CLIENT_GRID[(i + 1).min(CLIENT_GRID.len() - 1)],
                None => *CLIENT_GRID.last().unwrap(),
            };
            let row = sweep.row(point.processors, point.warehouses).unwrap();
            assert_eq!(row.clients, expected, "point {point:?}");
            assert_eq!(row.saturated, minimal_index.is_none());
        }
    }

    /// Failure isolation: a bad point is recorded in `failures` while the
    /// good points still run and are measured — one bad point fails that
    /// point, not the ladder. `ensure_complete` then surfaces the failure
    /// with its coordinates, preserving the error variant.
    #[test]
    fn bad_point_fails_alone_and_gates_completion() {
        let points = [
            ConfigPoint {
                warehouses: 10,
                processors: 1,
            },
            ConfigPoint {
                warehouses: 0, // invalid: WorkloadConfig rejects 0 W
                processors: 2,
            },
        ];
        let sweep = Sweep::run_points(
            &SystemConfig::xeon_quad(),
            &SweepOptions::quick().with_jobs(2),
            &points,
        );
        // The good point was measured despite its neighbour failing.
        assert_eq!(sweep.len(), 1);
        let row = sweep.row(1, 10).expect("good point measured");
        assert!(row.measurement.transactions > 0);
        // The bad point is recorded under its (P, W) key.
        assert_eq!(sweep.failures().len(), 1);
        assert!(matches!(
            sweep.failures().get(&(2, 0)),
            Some(odb_core::Error::InvalidConfig { .. })
        ));
        // The all-or-nothing gate names the point and keeps the variant.
        let err = sweep.ensure_complete().unwrap_err();
        assert!(matches!(err, odb_core::Error::InvalidConfig { .. }));
        assert!(
            err.to_string().contains("(W=0, P=2)"),
            "gate error must name the point: {err}"
        );
    }

    /// The probe/measure comparability contract: quick options leave the
    /// writeback delay untouched (it already fits the window proportion),
    /// and the probe delay never exceeds the measurement delay.
    #[test]
    fn probe_load_mix_alignment() {
        let quick = SweepOptions::quick();
        assert_eq!(
            quick.probe.system.writeback_delay,
            quick.measure.system.writeback_delay
        );
        let standard = SweepOptions::standard();
        assert!(
            standard.probe.system.writeback_delay <= standard.measure.system.writeback_delay
        );
        // The delay lands inside the probe window so writeback traffic is
        // visible to the utilization judgment.
        assert!(standard.probe.system.writeback_delay <= standard.probe.measure);
    }
}
