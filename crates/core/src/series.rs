//! Labelled `(x, y)` series — the data behind every figure in the paper.

use serde::{Deserialize, Serialize};

/// One labelled data series (e.g. "4P CPI vs warehouses").
///
/// ```
/// use odb_core::series::Series;
///
/// let mut s = Series::new("4P");
/// s.push(10.0, 3.1);
/// s.push(100.0, 4.8);
/// assert_eq!(s.xs(), vec![10.0, 100.0]);
/// assert!(s.is_sorted_by_x());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a display label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from parallel `x`/`y` iterators.
    pub fn from_xy<X, Y>(label: impl Into<String>, xs: X, ys: Y) -> Self
    where
        X: IntoIterator<Item = f64>,
        Y: IntoIterator<Item = f64>,
    {
        Self {
            label: label.into(),
            points: xs.into_iter().zip(ys).collect(),
        }
    }

    /// The display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The `x` coordinates, copied.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|&(x, _)| x).collect()
    }

    /// The `y` coordinates, copied.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when `x` values are strictly increasing (a prerequisite for
    /// the two-segment fit).
    pub fn is_sorted_by_x(&self) -> bool {
        self.points.windows(2).all(|w| w[0].0 < w[1].0)
    }

    /// The `y` value at a given `x`, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|&&(px, _)| px == x).map(|&(_, y)| y)
    }

    /// Maximum `y` value; `None` for an empty series.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| {
            Some(acc.map_or(y, |m: f64| m.max(y)))
        })
    }

    /// Minimum `y` value; `None` for an empty series.
    pub fn min_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| {
            Some(acc.map_or(y, |m: f64| m.min(y)))
        })
    }

    /// Iterates over `(x, y)` points.
    pub fn iter(&self) -> std::slice::Iter<'_, (f64, f64)> {
        self.points.iter()
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Series {
    type Item = &'a (f64, f64);
    type IntoIter = std::slice::Iter<'a, (f64, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Series::from_xy("1P", [10.0, 50.0, 100.0], [1.0, 2.0, 3.0]);
        assert_eq!(s.label(), "1P");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.xs(), vec![10.0, 50.0, 100.0]);
        assert_eq!(s.ys(), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.y_at(50.0), Some(2.0));
        assert_eq!(s.y_at(51.0), None);
    }

    #[test]
    fn sortedness_check() {
        let sorted = Series::from_xy("a", [1.0, 2.0, 3.0], [0.0; 3]);
        assert!(sorted.is_sorted_by_x());
        let unsorted = Series::from_xy("b", [1.0, 3.0, 2.0], [0.0; 3]);
        assert!(!unsorted.is_sorted_by_x());
        let dup = Series::from_xy("c", [1.0, 1.0], [0.0; 2]);
        assert!(!dup.is_sorted_by_x());
        assert!(Series::new("empty").is_sorted_by_x());
    }

    #[test]
    fn extrema() {
        let s = Series::from_xy("a", [1.0, 2.0, 3.0], [5.0, -1.0, 4.0]);
        assert_eq!(s.max_y(), Some(5.0));
        assert_eq!(s.min_y(), Some(-1.0));
        assert_eq!(Series::new("e").max_y(), None);
        assert_eq!(Series::new("e").min_y(), None);
    }

    #[test]
    fn extend_and_iterate() {
        let mut s = Series::new("x");
        s.extend([(1.0, 1.0), (2.0, 4.0)]);
        let sum_y: f64 = (&s).into_iter().map(|&(_, y)| y).sum();
        assert_eq!(sum_y, 5.0);
        assert_eq!(s.iter().count(), 2);
        assert_eq!(s.points(), &[(1.0, 1.0), (2.0, 4.0)]);
    }

    #[test]
    fn default_is_empty_with_empty_label() {
        let s = Series::default();
        assert!(s.is_empty());
        assert_eq!(s.label(), "");
        assert_eq!(s.len(), 0);
    }
}
