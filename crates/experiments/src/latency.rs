//! Commit-latency artifacts from the observer seam.
//!
//! The paper's published metrics are all *throughput-shaped* (TPS, IPX,
//! CPI); the observer seam makes the latency dimension measurable without
//! touching the simulation. This module re-runs the trend configurations
//! with an [`odb_engine::LatencyObserver`] registered and reduces its
//! per-transaction-type log₂ histograms to a table (`latency.csv`) and a
//! latency-vs-`W` figure across the cached/scaled pivot.
//!
//! It also hosts [`TraceObserver`], the JSONL trace sink behind the CLI's
//! `--trace` flag: every seam event (except the high-rate `Charged`
//! ticks) as one JSON object per line, for offline timeline tooling.

use crate::ladder::TREND_WAREHOUSES;
use crate::report::TextTable;
use crate::runner::{Sweep, SweepOptions};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::series::Series;
use odb_des::{SimEvent, SimObserver, SimTime};
use odb_engine::txn::TxnType;
use odb_engine::{LatencyObserver, LatencyStats, OdbSimulator};
use std::sync::{Arc, Mutex};

/// The latency study runs the 4-processor trend column (the paper's
/// headline scaling axis).
const PROCESSORS: u32 = 4;

/// Quantiles reported per histogram: (label, numerator, denominator).
const QUANTILES: [(&str, u64, u64); 3] = [("p50", 1, 2), ("p95", 19, 20), ("p99", 99, 100)];

/// One observed configuration's latency histograms.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Warehouses of the configuration.
    pub warehouses: u32,
    /// Client count, taken from the sweep's utilization search.
    pub clients: u32,
    /// Snapshot of the per-transaction-type histograms.
    pub stats: LatencyStats,
}

/// Re-runs every trend `(W, 4P)` configuration with a latency observer
/// registered, reusing each point's searched client count from `sweep`.
///
/// Deterministic: the run uses the same per-point derived seed as the
/// sweep's measurement run, so regenerated artifacts are byte-identical
/// run to run (the sweep drift gate relies on this).
///
/// # Errors
///
/// Propagates configuration and simulation errors, and reports corrupt
/// state if an observed run commits nothing or the observer's shared
/// histogram handle is poisoned.
pub fn measure(
    system: &SystemConfig,
    sweep: &Sweep,
    options: &SweepOptions,
) -> Result<Vec<LatencyPoint>, odb_core::Error> {
    let mut points = Vec::new();
    for &w in &TREND_WAREHOUSES {
        let Some(row) = sweep.row(PROCESSORS, w) else {
            // A partial sweep (tests, replays of subsets) simply yields a
            // partial latency study.
            continue;
        };
        let config = OltpConfig::new(
            WorkloadConfig::new(w, row.clients)?,
            system.clone().with_processors(PROCESSORS),
        )?;
        let opts = options.measure.for_point(w, PROCESSORS);
        let observer = LatencyObserver::new();
        let handle = observer.stats();
        OdbSimulator::new(config, opts)?.run_observed(vec![Box::new(observer)])?;
        let stats = handle
            .lock()
            .map_err(|_| {
                odb_core::Error::corrupt("experiments::latency", "latency handle poisoned")
            })?
            .clone();
        if stats.all().total() == 0 {
            return Err(odb_core::Error::corrupt(
                "experiments::latency",
                format!("observed run at {w} warehouses committed nothing"),
            ));
        }
        points.push(LatencyPoint {
            warehouses: w,
            clients: row.clients,
            stats,
        });
    }
    Ok(points)
}

/// Converts a log₂-bucket nanosecond upper bound to milliseconds.
fn bucket_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the study as a table: one row per `(W, transaction type)`
/// plus an `all` aggregate per `W`. Latencies are the histogram buckets'
/// upper bounds in milliseconds.
pub fn table(points: &[LatencyPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "Clients".into(),
        "Txn type".into(),
        "Commits".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
    ]);
    for point in points {
        let mut row = |label: &str, h: &odb_engine::LogHistogram| {
            let mut cells = vec![
                point.warehouses.to_string(),
                point.clients.to_string(),
                label.to_owned(),
                h.total().to_string(),
            ];
            for (_, num, den) in QUANTILES {
                cells.push(format!("{:.3}", bucket_ms(h.quantile_ns(num, den))));
            }
            t.row(cells);
        };
        for ty in TxnType::ALL {
            if let Some(h) = point.stats.kind(ty.index()) {
                row(&format!("{ty:?}"), h);
            }
        }
        row("all", point.stats.all());
    }
    t
}

/// Aggregate latency quantiles as chart series (x = warehouses,
/// y = milliseconds), one series per quantile — the latency-vs-`W`
/// figure across the cached/scaled pivot.
pub fn series(points: &[LatencyPoint]) -> Vec<Series> {
    QUANTILES
        .iter()
        .map(|&(label, num, den)| {
            let mut s = Series::new(label);
            for point in points {
                s.push(
                    f64::from(point.warehouses),
                    bucket_ms(point.stats.all().quantile_ns(num, den)),
                );
            }
            s
        })
        .collect()
}

/// Default line cap for [`TraceObserver`]: enough for several simulated
/// seconds of non-`Charged` events while bounding the file size.
pub const TRACE_LINE_CAP: usize = 200_000;

/// A JSONL trace sink: one JSON object per seam event.
///
/// `Charged` events are skipped (they fire per instruction segment and
/// would dwarf everything else); the buffer stops growing at the
/// configured cap. Lines are reachable through [`TraceObserver::lines`]
/// after the simulation is done with the observer.
#[derive(Debug)]
pub struct TraceObserver {
    lines: Arc<Mutex<Vec<String>>>,
    cap: usize,
}

impl TraceObserver {
    /// A sink buffering at most `cap` lines.
    pub fn new(cap: usize) -> Self {
        Self {
            lines: Arc::new(Mutex::new(Vec::new())),
            cap,
        }
    }

    /// Shared handle to the buffered lines.
    pub fn lines(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl SimObserver for TraceObserver {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        if matches!(event, SimEvent::Charged { .. }) {
            return;
        }
        let Ok(mut lines) = self.lines.lock() else {
            return;
        };
        if lines.len() >= self.cap {
            return;
        }
        lines.push(json_line(now, event));
    }
}

/// Formats one event as a JSON object. Hand-rolled: every field is a
/// number, a bool, or an enum tag from a fixed set, so no escaping is
/// ever needed.
fn json_line(now: SimTime, event: &SimEvent) -> String {
    let t = now.as_nanos();
    match *event {
        SimEvent::TxnStarted { pid, kind } => {
            format!(r#"{{"t_ns":{t},"event":"txn_started","pid":{pid},"kind":{kind}}}"#)
        }
        SimEvent::TxnCommitted { pid, kind, latency } => format!(
            r#"{{"t_ns":{t},"event":"txn_committed","pid":{pid},"kind":{kind},"latency_ns":{}}}"#,
            latency.as_nanos()
        ),
        SimEvent::LockWait { pid } => {
            format!(r#"{{"t_ns":{t},"event":"lock_wait","pid":{pid}}}"#)
        }
        SimEvent::BufferMiss { page, write } => {
            format!(r#"{{"t_ns":{t},"event":"buffer_miss","page":{page},"write":{write}}}"#)
        }
        SimEvent::FlushBegin { bytes } => {
            format!(r#"{{"t_ns":{t},"event":"flush_begin","bytes":{bytes}}}"#)
        }
        SimEvent::FlushEnd { woken } => {
            format!(r#"{{"t_ns":{t},"event":"flush_end","woken":{woken}}}"#)
        }
        SimEvent::ContextSwitch { cpu, pid } => {
            format!(r#"{{"t_ns":{t},"event":"context_switch","cpu":{cpu},"pid":{pid}}}"#)
        }
        SimEvent::IoComplete {
            kind,
            locator,
            bytes,
            done,
        } => format!(
            r#"{{"t_ns":{t},"event":"io_complete","kind":"{kind}","locator":{locator},"bytes":{bytes},"done_ns":{}}}"#,
            done.as_nanos()
        ),
        SimEvent::Charged { os, instructions } => {
            format!(r#"{{"t_ns":{t},"event":"charged","os":{os},"instructions":{instructions}}}"#)
        }
        SimEvent::BusObserved {
            utilization,
            ioq_latency_cycles,
        } => format!(
            r#"{{"t_ns":{t},"event":"bus_observed","utilization":{utilization},"ioq_latency_cycles":{ioq_latency_cycles}}}"#
        ),
    }
}

/// Runs the demonstration configuration (100 W, 48 clients, 4 P — the
/// paper's representative workload) with a [`TraceObserver`] registered
/// and returns the buffered JSONL lines.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn trace_demo(
    system: &SystemConfig,
    options: &SweepOptions,
) -> Result<Vec<String>, odb_core::Error> {
    let config = OltpConfig::new(
        WorkloadConfig::new(100, 48)?,
        system.clone().with_processors(PROCESSORS),
    )?;
    let observer = TraceObserver::new(TRACE_LINE_CAP);
    let handle = observer.lines();
    OdbSimulator::new(config, options.measure.clone())?
        .run_observed(vec![Box::new(observer)])?;
    let lines = handle
        .lock()
        .map_err(|_| odb_core::Error::corrupt("experiments::latency", "trace handle poisoned"))?
        .clone();
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::ConfigPoint;

    #[test]
    fn latency_study_runs_on_a_mini_sweep() {
        let system = SystemConfig::xeon_quad();
        let options = SweepOptions::quick();
        let points = [ConfigPoint {
            warehouses: 10,
            processors: 4,
        }];
        let sweep = Sweep::run_points(&system, &options, &points);
        sweep.ensure_complete().unwrap();
        let study = measure(&system, &sweep, &options).unwrap();
        assert_eq!(study.len(), 1, "only the measured trend point appears");
        let point = &study[0];
        assert_eq!(point.warehouses, 10);
        assert!(point.stats.all().total() > 0);
        // Quantiles are monotone by construction.
        let all = point.stats.all();
        assert!(all.quantile_ns(1, 2) <= all.quantile_ns(99, 100));
        let t = table(&study);
        let csv = t.to_csv();
        assert!(csv.contains("NewOrder"), "per-type rows present: {csv}");
        assert!(csv.lines().any(|l| l.contains(",all,")), "aggregate row");
        let s = series(&study);
        assert_eq!(s.len(), QUANTILES.len());
        assert!(s.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let mut obs = TraceObserver::new(3);
        let handle = obs.lines();
        obs.on_event(
            SimTime::from_micros(5),
            &SimEvent::TxnCommitted {
                pid: 7,
                kind: 1,
                latency: SimTime::from_micros(5),
            },
        );
        // Charged is filtered even below the cap.
        obs.on_event(
            SimTime::from_micros(6),
            &SimEvent::Charged {
                os: false,
                instructions: 100,
            },
        );
        obs.on_event(SimTime::from_micros(7), &SimEvent::LockWait { pid: 2 });
        obs.on_event(SimTime::from_micros(8), &SimEvent::FlushBegin { bytes: 6144 });
        // Cap: a fourth non-charged event is dropped.
        obs.on_event(SimTime::from_micros(9), &SimEvent::FlushEnd { woken: 1 });
        let lines = handle.lock().unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"t_ns":5000,"event":"txn_committed","pid":7,"kind":1,"latency_ns":5000}"#
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(!lines.iter().any(|l| l.contains("charged")));
    }
}
