//! The observer-seam pass: hook emissions must fire in every build
//! flavour.

use super::{mark_cfg_feature, Pass, PassContext};
use crate::report::{Lint, Violation};
use crate::source::WorkspaceModel;

/// Crates whose observer-hub emissions are audited: hook calls must not
/// hide inside `#[cfg(feature = …)]` blocks.
pub const OBSERVER_AUDITED: &[&str] = &["des", "engine", "iosim", "ossim"];

/// Observer-hub emission call tokens.
const EMIT_TOKENS: &[&str] = &[".emit(", ".emit_with("];

/// Keeps the observer seam unconditional: an `.emit(`/`.emit_with(` call
/// inside a `#[cfg(feature = …)]` block means the event stream differs by
/// build flavour, so an observer registered in one flavour silently sees
/// fewer events in another. Consumers may be feature-gated (registration
/// is cheap and invisible when absent); the *emissions* may not. Escape:
/// `// odb-analyzer: allow(observer_seam)` with a justification.
pub struct ObserverSeamPass;

impl Pass for ObserverSeamPass {
    fn lint(&self) -> Lint {
        Lint::ObserverSeam
    }

    fn description(&self) -> &'static str {
        "observer-hook emissions hidden inside #[cfg(feature = ...)] blocks"
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        for name in OBSERVER_AUDITED {
            let Some(krate) = model.get(name) else { continue };
            for file in &krate.src_files {
                let code_lines: Vec<&str> =
                    file.lines.iter().map(|l| l.code.as_str()).collect();
                let in_feature = mark_cfg_feature(&code_lines);
                for (i, line) in file.lines.iter().enumerate() {
                    if !in_feature[i] || line.in_test || line.allows("observer_seam") {
                        continue;
                    }
                    if EMIT_TOKENS.iter().any(|t| line.code.contains(t)) {
                        ctx.push(Violation::new(
                            Lint::ObserverSeam,
                            &file.rel_path,
                            i + 1,
                            "observer-hook emission inside a `#[cfg(feature = …)]` block; \
                             hooks must fire in every build flavour so registered observers \
                             see the same event stream — gate the *observer registration* \
                             instead (or annotate with `// odb-analyzer: allow(observer_seam)` \
                             and justify)"
                                .to_owned(),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateModel, SourceFile};
    use crate::passes::PassContext;

    #[test]
    fn emit_inside_cfg_feature_is_flagged_and_escapable() {
        let gated = SourceFile::parse(
            "crates/engine/src/x.rs".to_owned(),
            "#[cfg(feature = \"invariants\")]\n\
             fn gated(hub: &mut H) {\n    hub.emit(now, &e);\n}\n",
        );
        let clean = SourceFile::parse(
            "crates/engine/src/y.rs".to_owned(),
            "fn open(hub: &mut H) { hub.emit(now, &e); }\n\
             #[cfg(feature = \"invariants\")]\n\
             fn gated(hub: &mut H) {\n\
             \x20   // odb-analyzer: allow(observer_seam) — justified\n\
             \x20   hub.emit(now, &e);\n}\n",
        );
        let model = WorkspaceModel {
            root: std::path::PathBuf::new(),
            crates: vec![CrateModel {
                name: "engine".to_owned(),
                src_files: vec![gated, clean],
                src_rs_paths: Vec::new(),
            }],
            all_files: Vec::new(),
        };
        let mut ctx = PassContext::default();
        ObserverSeamPass.run(&model, &mut ctx);
        assert_eq!(ctx.violations.len(), 1, "{:?}", ctx.violations);
        assert_eq!(ctx.violations[0].lint, Lint::ObserverSeam);
        assert_eq!(ctx.violations[0].path, "crates/engine/src/x.rs");
        assert_eq!(ctx.violations[0].line, 3);
    }
}
