//! Fixture: diagnostics-only wall clock with a justified escape
//! (negative — `ambient_nondeterminism` must stay quiet).
pub fn phase_timer() -> std::time::Instant {
    // odb-analyzer: allow(ambient_nondeterminism) — stderr diagnostics only
    std::time::Instant::now()
}
