// A demo driver, not shipped simulation code: panicking on a bad point
// is the right behaviour here.
#![allow(clippy::unwrap_used)]

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_engine::system::{SystemParams, SystemSim};
use odb_des::SimTime;
use odb_memsim::rates::{EventRates, SpaceRates};

fn flat_rates() -> EventRates {
    let user = SpaceRates { tc_miss: 0.004, l2_miss: 0.015, l3_miss: 0.006, l3_coherence_miss: 0.0001,
        l3_writeback: 0.0015, tlb_miss: 0.002, branch_mispred: 0.004, other_stall_cpi: 0.3 };
    let os = SpaceRates { l3_miss: 0.004, l2_miss: 0.010, ..user };
    EventRates { user, os }
}

fn main() {
    for (w, c, p) in [(10u32, 10u32, 4u32), (10, 24, 4), (10, 8, 1), (2, 24, 4), (100, 24, 4), (100, 48, 4), (400, 56, 4)] {
        let config = OltpConfig::new(WorkloadConfig::new(w, c).unwrap(),
            SystemConfig::xeon_quad().with_processors(p)).unwrap();
        let mut s = SystemSim::new(config, SystemParams::default(), flat_rates(), 42).unwrap();
        s.run_for(SimTime::from_secs(1)).unwrap();
        s.reset_stats();
        s.run_for(SimTime::from_secs(3)).unwrap();
        let m = s.collect();
        println!("W={w:4} C={c:2} P={p}  TPS={:6.0} util={:.2} os%={:.2} cs/txn={:5.2} reads/txn={:5.2} logKB={:4.1} pwKB={:4.1} cpi={:.2} ipx={:.2}M conflicts={:.3} busutil={:.3} ioq={:.0}",
            m.tps(), m.cpu_utilization, m.os_busy_fraction, m.context_switches_per_txn,
            m.disk_reads_per_txn, m.io_per_txn.log_write_kb, m.io_per_txn.page_write_kb,
            m.cpi(), m.ipx()/1e6, s.lock_stats().conflict_ratio(), m.bus_utilization, m.bus_transaction_cycles);
    }
}
