//! Offline stub for `serde_derive`: the derive macros expand to nothing.
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as inert
//! annotations (nothing actually serializes at runtime), so empty
//! expansions are sufficient and keep the build fully offline.
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
