//! `odb-analyzer` — the workspace static-analysis gate.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/internal error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
odb-analyzer — static-analysis gate for the odb-scaling workspace

USAGE:
    cargo run -p odb-analyzer [-- OPTIONS]

OPTIONS:
    --root <DIR>         workspace root (default: autodetected)
    --json               print a machine-readable report (odb-analyzer-report-v1)
    --list-lints         print one line per registered lint (id first) and exit
    --update-baseline    re-count ratcheted sites and rewrite crates/analyzer/baseline.toml
    --verbose            list every counted (baseline-ratcheted) site
    --help               show this help

Run `--list-lints` for the pass catalog.
Escape hatch: `// odb-analyzer: allow(<lint>)` on the offending line or
the line directly above it.";

struct Options {
    root: Option<PathBuf>,
    update_baseline: bool,
    verbose: bool,
    json: bool,
    list_lints: bool,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        update_baseline: false,
        verbose: false,
        json: false,
        list_lints: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--json" => opts.json = true,
            "--list-lints" => opts.list_lints = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(Some(opts))
}

/// The workspace root: `--root` if given, else the manifest-relative
/// location this binary was built from, else the current directory.
fn find_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    // When run via `cargo run -p odb-analyzer`, the manifest dir is
    // <root>/crates/analyzer at compile time and the workspace layout is
    // fixed, so ../../ is the root — but only trust it if it still looks
    // like this workspace (the binary may have been copied elsewhere, or
    // built outside cargo, where the env var is absent).
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let compiled = std::path::Path::new(manifest).join("..").join("..");
        if compiled.join("Cargo.toml").is_file() && compiled.join("crates").is_dir() {
            return compiled;
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };

    if opts.list_lints {
        // One line per pass: the stable id first (machine-parsed by the
        // ci drift check against the README catalog), then the
        // description and baseline section.
        for pass in odb_analyzer::passes::registry() {
            let section = pass
                .baseline_section()
                .map(|s| format!("  [baseline: {s}]"))
                .unwrap_or_default();
            println!("{:<24} {}{section}", pass.lint().name(), pass.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = find_root(&opts);

    if opts.update_baseline {
        return match odb_analyzer::update_baseline(&root) {
            Ok(counts) => {
                println!(
                    "baseline written to {}",
                    odb_analyzer::baseline_path(&root).display()
                );
                let mut last_section = String::new();
                for (section, krate, count) in counts {
                    if section != last_section {
                        println!("  [{section}]");
                        last_section = section;
                    }
                    println!("    {krate} = {count}");
                }
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("error: {why}");
                ExitCode::from(2)
            }
        };
    }

    let analysis = match odb_analyzer::analyze(&root) {
        Ok(a) => a,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        let lints: Vec<(odb_analyzer::report::Lint, &str)> = odb_analyzer::passes::registry()
            .iter()
            .map(|p| (p.lint(), p.description()))
            .collect();
        print!("{}", odb_analyzer::report::render_json(&analysis, &lints));
        return if analysis.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.verbose {
        for ((section, krate), sites) in &analysis.counted {
            println!(
                "[{section}] crate `{krate}`: {} counted site(s)",
                sites.len()
            );
            for site in sites {
                println!("  {}:{}: [{}]", site.path, site.line, site.lint.name());
            }
        }
    }

    for notice in &analysis.notices {
        println!("note: {notice}");
    }
    if analysis.is_clean() {
        println!(
            "odb-analyzer: clean ({} baselined site(s) across {} (section, crate) entr{})",
            analysis.total_counted(),
            analysis.counted.len(),
            if analysis.counted.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        for v in &analysis.violations {
            println!("{v}");
        }
        println!(
            "odb-analyzer: {} violation(s) — see above",
            analysis.violations.len()
        );
        ExitCode::FAILURE
    }
}
