#!/usr/bin/env bash
# The whole gate in one command: build, tests, invariant-armed tests,
# and the workspace static-analysis pass.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q --workspace --features invariants
cargo run -p odb-analyzer
