//! Saving and replaying sweeps.
//!
//! A full-fidelity sweep costs minutes of simulation; the figures built
//! from it cost milliseconds. Persisting the sweep as CSV lets the
//! artifact generators (and readers of `results/sweep.csv`) work from
//! the exact measured rows without re-simulating — and archives the data
//! behind EXPERIMENTS.md in a diff-friendly form.

use crate::ladder::ConfigPoint;
use crate::runner::{Sweep, SweepRow};
use odb_core::metrics::{IoPerTxn, Measurement, SpaceCounts};
use odb_core::Error;
use odb_memsim::hierarchy::HierarchyCounts;
use odb_memsim::rates::{EventRates, SpaceRates};
use odb_memsim::trace::Characterization;

/// The CSV header, one column per persisted field.
const HEADER: &str = "processors,warehouses,clients,saturated,elapsed_seconds,transactions,\
user_instructions,user_cycles,user_l3,user_l2,user_tc,user_tlb,user_branch,\
os_instructions,os_cycles,os_l3,os_l2,os_tc,os_tlb,os_branch,\
cpu_utilization,os_busy_fraction,read_kb,log_kb,page_kb,reads_per_txn,cs_per_txn,\
bus_utilization,bus_transaction_cycles";

/// Serializes every sweep row to CSV (stable column order, header first).
pub fn sweep_to_csv(sweep: &Sweep) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for row in sweep.iter() {
        let m = &row.measurement;
        let u = &m.user;
        let o = &m.os;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            m.processors,
            m.warehouses,
            row.clients,
            row.saturated,
            m.elapsed_seconds,
            m.transactions,
            u.instructions,
            u.cycles,
            u.l3_misses,
            u.l2_misses,
            u.tc_misses,
            u.tlb_misses,
            u.branch_mispredictions,
            o.instructions,
            o.cycles,
            o.l3_misses,
            o.l2_misses,
            o.tc_misses,
            o.tlb_misses,
            o.branch_mispredictions,
            m.cpu_utilization,
            m.os_busy_fraction,
            m.io_per_txn.read_kb,
            m.io_per_txn.log_write_kb,
            m.io_per_txn.page_write_kb,
            m.disk_reads_per_txn,
            m.context_switches_per_txn,
            m.bus_utilization,
            m.bus_transaction_cycles,
        ));
    }
    out
}

/// Parses a sweep previously written by [`sweep_to_csv`].
///
/// The cache characterization is not round-tripped (it is derivable by
/// re-running and only the coherence ablation consumes it); replayed
/// rows carry an empty one.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] describing the first malformed line.
pub fn sweep_from_csv(csv: &str) -> Result<Sweep, Error> {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or_default();
    if header != HEADER {
        return Err(Error::InvalidConfig {
            field: "csv",
            reason: "unrecognized header (wrong file or version?)".to_owned(),
        });
    }
    let mut rows = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let expected = HEADER.split(',').count();
        if fields.len() != expected {
            return Err(Error::InvalidConfig {
                field: "csv",
                reason: format!(
                    "line {}: {} fields, expected {expected}",
                    idx + 2,
                    fields.len()
                ),
            });
        }
        let mut it = fields.into_iter();
        let mut next_u64 = |name: &'static str| -> Result<u64, Error> {
            it.next()
                .and_then(|f| f.parse().ok())
                .ok_or(Error::InvalidConfig {
                    field: name,
                    reason: format!("line {}: not an integer", idx + 2),
                })
        };
        let processors = next_u64("processors")? as u32;
        let warehouses = next_u64("warehouses")? as u32;
        let clients = next_u64("clients")? as u32;
        let saturated = match it.next() {
            Some("true") => true,
            Some("false") => false,
            _ => {
                return Err(Error::InvalidConfig {
                    field: "saturated",
                    reason: format!("line {}: expected true/false", idx + 2),
                })
            }
        };
        let mut next_f64 = |name: &'static str| -> Result<f64, Error> {
            it.next()
                .and_then(|f| f.parse().ok())
                .ok_or(Error::InvalidConfig {
                    field: name,
                    reason: format!("line {}: not a number", idx + 2),
                })
        };
        let elapsed_seconds = next_f64("elapsed_seconds")?;
        // Re-borrow as integers for the counter block.
        let mut next_u64 = |name: &'static str| -> Result<u64, Error> {
            it.next()
                .and_then(|f| f.parse().ok())
                .ok_or(Error::InvalidConfig {
                    field: name,
                    reason: format!("line {}: not an integer", idx + 2),
                })
        };
        let transactions = next_u64("transactions")?;
        let mut counts = |prefix: &'static str| -> Result<SpaceCounts, Error> {
            Ok(SpaceCounts {
                instructions: next_u64(prefix)?,
                cycles: next_u64(prefix)?,
                l3_misses: next_u64(prefix)?,
                l2_misses: next_u64(prefix)?,
                tc_misses: next_u64(prefix)?,
                tlb_misses: next_u64(prefix)?,
                branch_mispredictions: next_u64(prefix)?,
            })
        };
        let user = counts("user")?;
        let os = counts("os")?;
        let mut next_f64 = |name: &'static str| -> Result<f64, Error> {
            it.next()
                .and_then(|f| f.parse().ok())
                .ok_or(Error::InvalidConfig {
                    field: name,
                    reason: format!("line {}: not a number", idx + 2),
                })
        };
        let cpu_utilization = next_f64("cpu_utilization")?;
        let os_busy_fraction = next_f64("os_busy_fraction")?;
        let read_kb = next_f64("read_kb")?;
        let log_write_kb = next_f64("log_kb")?;
        let page_write_kb = next_f64("page_kb")?;
        let disk_reads_per_txn = next_f64("reads_per_txn")?;
        let context_switches_per_txn = next_f64("cs_per_txn")?;
        let bus_utilization = next_f64("bus_utilization")?;
        let bus_transaction_cycles = next_f64("bus_transaction_cycles")?;

        rows.push(SweepRow {
            point: ConfigPoint {
                warehouses,
                processors,
            },
            clients,
            saturated,
            measurement: Measurement {
                warehouses,
                clients,
                processors,
                elapsed_seconds,
                transactions,
                user,
                os,
                cpu_utilization,
                os_busy_fraction,
                io_per_txn: IoPerTxn {
                    read_kb,
                    log_write_kb,
                    page_write_kb,
                },
                disk_reads_per_txn,
                context_switches_per_txn,
                bus_utilization,
                bus_transaction_cycles,
            },
            characterization: empty_characterization(),
            phase_seconds: odb_engine::PhaseSeconds::default(),
        });
    }
    Ok(Sweep::from_rows(rows))
}

/// The placeholder characterization carried by replayed rows.
fn empty_characterization() -> Characterization {
    let zero = SpaceRates {
        tc_miss: 0.0,
        l2_miss: 0.0,
        l3_miss: 0.0,
        l3_coherence_miss: 0.0,
        l3_writeback: 0.0,
        tlb_miss: 0.0,
        branch_mispred: 0.0,
        other_stall_cpi: 0.0,
    };
    Characterization {
        rates: EventRates {
            user: zero,
            os: zero,
        },
        user_counts: HierarchyCounts::default(),
        os_counts: HierarchyCounts::default(),
        coherence_invalidations: 0,
        instructions: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sweep() -> Sweep {
        let m = Measurement {
            warehouses: 100,
            clients: 48,
            processors: 4,
            elapsed_seconds: 6.0,
            transactions: 7_777,
            user: SpaceCounts {
                instructions: 8_000_000_000,
                cycles: 30_000_000_000,
                l3_misses: 60_000_000,
                l2_misses: 170_000_000,
                tc_misses: 80_000_000,
                tlb_misses: 25_000_000,
                branch_mispredictions: 32_000_000,
            },
            os: SpaceCounts {
                instructions: 900_000_000,
                cycles: 5_500_000_000,
                l3_misses: 9_000_000,
                l2_misses: 20_000_000,
                tc_misses: 8_000_000,
                tlb_misses: 2_000_000,
                branch_mispredictions: 4_500_000,
            },
            cpu_utilization: 0.93,
            os_busy_fraction: 0.145,
            io_per_txn: IoPerTxn {
                read_kb: 8.7,
                log_write_kb: 5.3,
                page_write_kb: 6.9,
            },
            disk_reads_per_txn: 1.09,
            context_switches_per_txn: 2.3,
            bus_utilization: 0.415,
            bus_transaction_cycles: 139.7,
        };
        Sweep::from_rows(vec![SweepRow {
            point: ConfigPoint {
                warehouses: 100,
                processors: 4,
            },
            clients: 48,
            saturated: false,
            measurement: m,
            characterization: empty_characterization(),
            phase_seconds: odb_engine::PhaseSeconds::default(),
        }])
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let sweep = sample_sweep();
        let csv = sweep_to_csv(&sweep);
        let replayed = sweep_from_csv(&csv).unwrap();
        assert_eq!(replayed.len(), 1);
        let a = sweep.row(4, 100).unwrap();
        let b = replayed.row(4, 100).unwrap();
        assert_eq!(a.measurement, b.measurement);
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.saturated, b.saturated);
        // Derived metrics therefore agree too.
        assert_eq!(a.measurement.cpi(), b.measurement.cpi());
        assert_eq!(a.measurement.tps(), b.measurement.tps());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(sweep_from_csv("").is_err(), "missing header");
        assert!(sweep_from_csv("nonsense\n1,2,3").is_err(), "bad header");
        let csv = sweep_to_csv(&sample_sweep());
        let truncated: String = csv
            .lines()
            .map(|l| l.rsplit_once(',').map(|(a, _)| a).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(sweep_from_csv(&truncated).is_err(), "short rows rejected");
        let garbled = csv.replace("0.93", "not-a-number");
        assert!(sweep_from_csv(&garbled).is_err());
        // Blank trailing lines are tolerated.
        let padded = format!("{csv}\n\n");
        assert!(sweep_from_csv(&padded).is_ok());
    }

    #[test]
    fn figure_generators_accept_replayed_sweeps() {
        let csv = sweep_to_csv(&sample_sweep());
        let replayed = sweep_from_csv(&csv).unwrap();
        let t = crate::figures::fig7(&replayed, 4);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("8.7"));
    }
}
