//! Fixture: undisciplined RNG construction (positive — must trip
//! `rng_discipline` twice: entropy seed and literal seed).
pub fn fresh() -> SmallRng {
    SmallRng::from_entropy()
}

pub fn fixed() -> SmallRng {
    SmallRng::seed_from_u64(0xDEAD_BEEF)
}
