//! Automatic paper-vs-measured scoring.
//!
//! EXPERIMENTS.md's verdict table, computed from a live sweep against the
//! published anchors in [`odb_core::paper`]: each check names the claim,
//! the paper's number, the measured number and whether the measurement
//! falls inside the acceptance band. `odb-experiments scorecard` prints
//! it; the integration suite asserts the core rows.

use crate::figures;
use crate::report::TextTable;
use crate::runner::Sweep;
use odb_core::paper;

/// One scored claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Which claim (short name).
    pub name: String,
    /// The paper's value, rendered.
    pub published: String,
    /// Our value, rendered.
    pub measured: String,
    /// Acceptance criterion, rendered.
    pub band: String,
    /// Did the measurement pass?
    pub pass: bool,
}

/// Scores the sweep against every quantitative anchor the paper prints.
///
/// # Errors
///
/// Propagates fitting errors from the pivot computations.
pub fn scorecard(sweep: &Sweep) -> Result<Vec<Check>, odb_core::Error> {
    let mut checks = Vec::new();

    // Table 5: pivot points per processor count, within a 25% band (the
    // paper's own CPI-vs-MPI pivots differ by more than that at 1P).
    // Processor counts absent from the sweep are skipped, not fatal.
    for published in paper::TABLE5 {
        let Ok(cpi) = figures::fig17(sweep, published.processors) else {
            continue;
        };
        if let Some((x, _)) = cpi.pivot {
            checks.push(Check {
                name: format!("Table 5: {}P CPI pivot (W)", published.processors),
                published: published.cpi.to_string(),
                measured: format!("{x:.0}"),
                band: "±25%".into(),
                pass: paper::within_band(x, published.cpi as f64, 0.25),
            });
        }
        let Ok(mpi) = figures::fig18(sweep, published.processors) else {
            continue;
        };
        if let Some((x, _)) = mpi.pivot {
            checks.push(Check {
                name: format!("Table 5: {}P MPI pivot (W)", published.processors),
                published: published.mpi.to_string(),
                measured: format!("{x:.0}"),
                band: "±35%".into(),
                pass: paper::within_band(x, published.mpi as f64, 0.35),
            });
        }
    }

    // "All the pivot points are below 150 warehouses."
    let mut all_below = true;
    let mut max_pivot: f64 = 0.0;
    for p in [1u32, 2, 4] {
        for fit in [figures::fig17(sweep, p), figures::fig18(sweep, p)]
            .into_iter()
            .flatten()
        {
            if let Some((x, _)) = fit.pivot {
                max_pivot = max_pivot.max(x);
                all_below &= x < 150.0;
            }
        }
    }
    checks.push(Check {
        name: "§6.2: every pivot below 150 W".into(),
        published: "< 150".into(),
        measured: format!("max {max_pivot:.0}"),
        band: "strict".into(),
        pass: all_below,
    });

    // §5.2: L3 misses ≈ 60% of CPI. Score the mid-range (100–300 W, 4P).
    if let Some(row) = sweep.row(4, 100) {
        let m = &row.measurement;
        let counts = m.total();
        let b = odb_core::breakdown::CpiBreakdown::compute(
            &counts,
            &odb_core::breakdown::StallCosts::xeon(),
            m.bus_transaction_cycles,
        )?;
        let share = b.fraction(odb_core::breakdown::Component::L3);
        checks.push(Check {
            name: "§5.2: L3 share of CPI at 100 W, 4P".into(),
            published: format!("{:.0}%", paper::L3_CPI_SHARE * 100.0),
            measured: format!("{:.0}%", share * 100.0),
            band: "±20% abs".into(),
            pass: (share - paper::L3_CPI_SHARE).abs() < 0.20,
        });
    }

    // §4.3: ~6 KB of redo per transaction, everywhere.
    let mut log_ok = true;
    let mut log_min = f64::INFINITY;
    let mut log_max: f64 = 0.0;
    for row in sweep.iter() {
        let kb = row.measurement.io_per_txn.log_write_kb;
        log_min = log_min.min(kb);
        log_max = log_max.max(kb);
        log_ok &= paper::within_band(kb * 1024.0, paper::LOG_BYTES_PER_TXN, 0.25);
    }
    checks.push(Check {
        name: "§4.3: redo ≈ 6 KB/txn, all configs".into(),
        published: "6.0 KB".into(),
        measured: format!("{log_min:.1}–{log_max:.1} KB"),
        band: "±25%".into(),
        pass: log_ok,
    });

    // Fig 16 / §7: bus utilization ~45% on 4P at scale, < 30% on 2P.
    if let (Some(r4), Some(r2)) = (sweep.row(4, 800), sweep.row(2, 800)) {
        let u4 = r4.measurement.bus_utilization;
        let u2 = r2.measurement.bus_utilization;
        checks.push(Check {
            name: "§7: 4P bus utilization at 800 W".into(),
            published: format!("≈{:.0}%", paper::BUS_UTILIZATION_4P * 100.0),
            measured: format!("{:.0}%", u4 * 100.0),
            band: "±15% abs".into(),
            pass: (u4 - paper::BUS_UTILIZATION_4P).abs() < 0.15,
        });
        checks.push(Check {
            name: "§5.2: 2P bus utilization stays under 30%".into(),
            published: format!("< {:.0}%", paper::BUS_UTILIZATION_2P_MAX * 100.0),
            measured: format!("{:.0}%", u2 * 100.0),
            band: "strict".into(),
            pass: u2 < paper::BUS_UTILIZATION_2P_MAX,
        });
    }

    // Table 3 baseline: 1P IOQ time near 102 cycles across W.
    let ioq_1p: Vec<f64> = sweep
        .rows_for(1)
        .iter()
        .map(|r| r.measurement.bus_transaction_cycles)
        .collect();
    if !ioq_1p.is_empty() {
        let max = ioq_1p.iter().cloned().fold(0.0f64, f64::max);
        checks.push(Check {
            name: "Table 3: 1P IOQ time near the 102-cycle baseline".into(),
            published: "102".into(),
            measured: format!("≤ {max:.0}"),
            band: "+15%".into(),
            pass: max < paper::BUS_TRANSACTION_1P_CYCLES * 1.15,
        });
    }

    // Fig 13: MPI must not scale with P (coherence negligible).
    if let (Some(r1), Some(r4)) = (sweep.row(1, 100), sweep.row(4, 100)) {
        let ratio = r4.measurement.mpi() / r1.measurement.mpi().max(1e-12);
        checks.push(Check {
            name: "Fig 13: MPI(4P)/MPI(1P) at 100 W".into(),
            published: "≈1.0".into(),
            measured: format!("{ratio:.2}"),
            band: "< 1.25".into(),
            pass: ratio < 1.25,
        });
    }

    // Fig 5: user IPX flat across the grid.
    let mut user_min = f64::INFINITY;
    let mut user_max: f64 = 0.0;
    for row in sweep.iter() {
        let v = row.measurement.ipx_user();
        if v > 0.0 {
            user_min = user_min.min(v);
            user_max = user_max.max(v);
        }
    }
    if user_max > 0.0 {
        let spread = (user_max - user_min) / user_max;
        checks.push(Check {
            name: "Fig 5: user IPX flat across all configs".into(),
            published: "flat".into(),
            measured: format!("spread {:.1}%", spread * 100.0),
            band: "< 15%".into(),
            pass: spread < 0.15,
        });
    }

    Ok(checks)
}

/// Renders the checks as a table (✔/✘ verdicts).
pub fn render(checks: &[Check]) -> TextTable {
    let mut t = TextTable::new(vec![
        "claim".into(),
        "paper".into(),
        "measured".into(),
        "band".into(),
        "verdict".into(),
    ]);
    for c in checks {
        t.row(vec![
            c.name.clone(),
            c.published.clone(),
            c.measured.clone(),
            c.band.clone(),
            if c.pass { "pass" } else { "MISS" }.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::ConfigPoint;
    use crate::runner::SweepRow;
    use odb_core::metrics::{IoPerTxn, Measurement, SpaceCounts};
    use odb_memsim::hierarchy::HierarchyCounts;
    use odb_memsim::rates::{EventRates, SpaceRates};
    use odb_memsim::trace::Characterization;

    /// A paper-perfect synthetic sweep: every check should pass.
    fn perfect_sweep() -> Sweep {
        let mut rows = Vec::new();
        for &p in &[1u32, 2, 4] {
            for &w in &crate::ladder::TREND_WAREHOUSES {
                let wf = w as f64;
                let published = paper::TABLE5
                    .iter()
                    .find(|r| r.processors == p)
                    .unwrap();
                let knee = published.cpi as f64;
                let cpi = if wf <= knee {
                    2.5 + 0.015 * wf
                } else {
                    2.5 + 0.015 * knee + 0.0015 * (wf - knee)
                } + 0.2 * (p as f64 - 1.0);
                let mpi_knee = published.mpi as f64;
                let mpi = (if wf <= mpi_knee {
                    4.0 + 0.04 * wf
                } else {
                    4.0 + 0.04 * mpi_knee + 0.004 * (wf - mpi_knee)
                }) * 1e-3;
                let instr_u = 10_000_000_000u64;
                let instr_o = (1_000_000_000.0 + 2_000_000.0 * wf) as u64;
                let total_instr = (instr_u + instr_o) as f64;
                // Put ~60% of CPI into L3 misses at the standard cost.
                let bus_cycles = 102.0 + 10.0 * (p as f64 - 1.0);
                let l3_cost = 300.0 + (bus_cycles - 102.0);
                let l3 = (total_instr * mpi) as u64;
                let cycles_total = (total_instr * cpi) as u64;
                let txns = 10_000u64;
                rows.push(SweepRow {
                    point: ConfigPoint {
                        warehouses: w,
                        processors: p,
                    },
                    clients: 8 * p,
                    saturated: false,
                    measurement: Measurement {
                        warehouses: w,
                        clients: 8 * p,
                        processors: p,
                        elapsed_seconds: 10.0,
                        transactions: txns,
                        user: SpaceCounts {
                            instructions: instr_u,
                            cycles: (cycles_total as f64 * instr_u as f64 / total_instr)
                                as u64,
                            l3_misses: (l3 as f64 * instr_u as f64 / total_instr) as u64,
                            l2_misses: (l3 as f64 * 2.0 * instr_u as f64 / total_instr)
                                as u64,
                            tc_misses: instr_u / 200,
                            tlb_misses: instr_u / 500,
                            branch_mispredictions: instr_u / 250,
                        },
                        os: SpaceCounts {
                            instructions: instr_o,
                            cycles: (cycles_total as f64 * instr_o as f64 / total_instr)
                                as u64,
                            l3_misses: (l3 as f64 * instr_o as f64 / total_instr) as u64,
                            l2_misses: (l3 as f64 * 2.0 * instr_o as f64 / total_instr)
                                as u64,
                            tc_misses: instr_o / 200,
                            tlb_misses: instr_o / 500,
                            branch_mispredictions: instr_o / 250,
                        },
                        cpu_utilization: 0.95,
                        os_busy_fraction: 0.12,
                        io_per_txn: IoPerTxn {
                            read_kb: 0.02 * wf,
                            log_write_kb: 5.9,
                            page_write_kb: if w >= 50 { 5.0 } else { 0.0 },
                        },
                        disk_reads_per_txn: 0.0025 * wf,
                        context_switches_per_txn: 1.0 + 0.003 * wf,
                        bus_utilization: match p {
                            1 => 0.12,
                            2 => 0.25,
                            _ => 0.44,
                        },
                        bus_transaction_cycles: bus_cycles,
                    },
                    characterization: Characterization {
                        rates: EventRates {
                            user: zero_rates(),
                            os: zero_rates(),
                        },
                        user_counts: HierarchyCounts::default(),
                        os_counts: HierarchyCounts::default(),
                        coherence_invalidations: 0,
                        instructions: 0,
                    },
                    phase_seconds: odb_engine::PhaseSeconds::default(),
                });
                let _ = l3_cost;
            }
        }
        Sweep::from_rows(rows)
    }

    fn zero_rates() -> SpaceRates {
        SpaceRates {
            tc_miss: 0.0,
            l2_miss: 0.0,
            l3_miss: 0.0,
            l3_coherence_miss: 0.0,
            l3_writeback: 0.0,
            tlb_miss: 0.0,
            branch_mispred: 0.0,
            other_stall_cpi: 0.0,
        }
    }

    #[test]
    fn perfect_sweep_passes_the_pivot_and_flatness_checks() {
        let checks = scorecard(&perfect_sweep()).unwrap();
        assert!(checks.len() >= 10, "got {} checks", checks.len());
        let by_name = |needle: &str| {
            checks
                .iter()
                .find(|c| c.name.contains(needle))
                .unwrap_or_else(|| panic!("check {needle} missing"))
        };
        assert!(by_name("4P CPI pivot").pass, "{:?}", by_name("4P CPI pivot"));
        assert!(by_name("below 150 W").pass);
        assert!(by_name("user IPX flat").pass);
        assert!(by_name("redo").pass);
        assert!(by_name("2P bus utilization").pass);
        assert!(by_name("MPI(4P)/MPI(1P)").pass);
    }

    #[test]
    fn render_marks_failures() {
        let checks = vec![
            Check {
                name: "a".into(),
                published: "1".into(),
                measured: "1".into(),
                band: "±10%".into(),
                pass: true,
            },
            Check {
                name: "b".into(),
                published: "1".into(),
                measured: "9".into(),
                band: "±10%".into(),
                pass: false,
            },
        ];
        let s = render(&checks).render();
        assert!(s.contains("pass"));
        assert!(s.contains("MISS"));
    }
}
