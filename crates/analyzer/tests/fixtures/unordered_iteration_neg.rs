//! Fixture: deterministic collections plus a justified escape
//! (negative — `unordered_iteration` must stay quiet).
use std::collections::BTreeMap;
use std::collections::HashMap;

pub struct EventIndex {
    by_actor: BTreeMap<u64, u64>,
    // odb-analyzer: allow(unordered_iteration) — point access only, never iterated
    scratch: HashMap<u64, u64>,
}

pub fn touch(idx: &EventIndex) -> usize {
    idx.by_actor.len()
}
