//! Deterministic discrete-event simulation kernel.
//!
//! The full-system OLTP simulator (`odb-engine`) is built on this kernel:
//! a virtual clock ([`SimTime`]) and a pending-event set
//! ([`EventQueue`]) with two properties the reproduction depends on:
//!
//! * **Determinism** — events scheduled for the same instant are delivered
//!   in scheduling order (FIFO tie-breaking by sequence number), so a run
//!   is a pure function of its configuration and RNG seeds.
//! * **Cancellation** — scheduled events can be revoked (e.g. a timeout
//!   raced by an I/O completion) without disturbing ordering.
//!
//! The kernel also hosts the [`observe`] seam: the [`SimObserver`] trait
//! and [`ObserverHub`] registry through which every layer of the stack
//! announces typed hook events ([`SimEvent`]) to cross-cutting consumers
//! (statistics, invariant checks, latency histograms, trace sinks)
//! without threading their state through the simulation.
//!
//! # Example
//!
//! ```
//! use odb_des::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { IoDone(u32), Tick }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_micros(50), Ev::Tick);
//! q.schedule(SimTime::from_micros(10), Ev::IoDone(7));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_micros(10));
//! assert_eq!(ev, Ev::IoDone(7));
//! ```

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod observe;
pub mod queue;
pub mod time;

pub use observe::{IoKind, ObserverHub, SimEvent, SimObserver};
pub use queue::{EventHandle, EventQueue};
pub use time::SimTime;
