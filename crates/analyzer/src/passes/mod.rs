//! The pass registry: every lint is a [`Pass`] with a stable id, a
//! one-line description, an optional baseline section, and a `run`
//! method that pushes span-carrying diagnostics into a [`PassContext`].
//!
//! All passes share one escape syntax — `// odb-analyzer: allow(<id>)`
//! on the offending line or the line directly above it — and two
//! diagnostic channels:
//!
//! * **immediate violations** ([`PassContext::push`]) fail the gate
//!   directly;
//! * **counted sites** ([`PassContext::count_site`]) are held against
//!   the per-crate burn-down baseline for the pass's section; growth
//!   beyond the baseline turns each site into a violation.

pub mod determinism;
pub mod hot_path_alloc;
pub mod lock_order;
pub mod observer_seam;
pub mod panic_sites;
pub mod raw_time;
pub mod stray_files;

use crate::report::{Lint, Violation};
use crate::source::WorkspaceModel;
use std::collections::BTreeMap;

/// One counted (baseline-ratcheted) site.
#[derive(Debug, Clone)]
pub struct CountedSite {
    /// The lint that counted it.
    pub lint: Lint,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What was found and how to fix it.
    pub message: String,
}

/// Shared sink the passes write diagnostics into.
#[derive(Debug, Default)]
pub struct PassContext {
    /// Gate-failing findings, in discovery order.
    pub violations: Vec<Violation>,
    /// Non-fatal notices (deprecations, ratchet-down suggestions).
    pub notices: Vec<String>,
    /// Counted sites per `(baseline section, crate)`, including empty
    /// entries for audited crates so the baseline can ratchet to zero.
    pub counted: BTreeMap<(String, String), Vec<CountedSite>>,
}

impl PassContext {
    /// Records a gate-failing violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Records a non-fatal notice.
    pub fn note(&mut self, n: String) {
        self.notices.push(n);
    }

    /// Registers `krate` under `section` (so a clean crate still gets a
    /// zero count), returning the site vector to append to.
    pub fn crate_sites(&mut self, section: &str, krate: &str) -> &mut Vec<CountedSite> {
        self.counted
            .entry((section.to_owned(), krate.to_owned()))
            .or_default()
    }

    /// Appends one counted site for `krate` under `section`.
    pub fn count_site(&mut self, section: &str, krate: &str, site: CountedSite) {
        self.crate_sites(section, krate).push(site);
    }
}

/// One static-analysis pass.
pub trait Pass {
    /// The lint this pass reports as (its [`Lint::name`] is the stable
    /// id used by escapes, `--list-lints`, and the README catalog).
    fn lint(&self) -> Lint;

    /// One-line description for `--list-lints`.
    fn description(&self) -> &'static str;

    /// The baseline section this pass's counted sites ratchet under,
    /// if it is baseline-ratcheted rather than hard-failing.
    fn baseline_section(&self) -> Option<&'static str> {
        None
    }

    /// Scans the workspace, pushing diagnostics into `ctx`.
    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext);
}

/// Every pass, in execution (and `--list-lints`) order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic_sites::PanicSites),
        Box::new(lock_order::LockOrderPass),
        Box::new(raw_time::RawTimePass),
        Box::new(observer_seam::ObserverSeamPass),
        Box::new(stray_files::StrayFilesPass),
        Box::new(hot_path_alloc::HotPathAllocPass),
        Box::new(determinism::UnorderedIterationPass),
        Box::new(determinism::AmbientNondeterminismPass),
        Box::new(determinism::RngDisciplinePass),
        Box::new(determinism::FloatAccumulationPass),
    ]
}

/// Marks which lines sit inside a `#[cfg(feature = …)]` item, with the
/// same brace-walking approach (and limitations) as the `#[cfg(test)]`
/// marker in [`crate::source`].
pub(crate) fn mark_cfg_feature(code_lines: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the innermost #[cfg(feature…)] item opened, if any.
    let mut open_depth: Option<i64> = None;
    let mut pending_attr = false;
    for (i, raw) in code_lines.iter().enumerate() {
        if open_depth.is_some() {
            out[i] = true;
        }
        if open_depth.is_none() && raw.contains("#[cfg(") && raw.contains("feature") {
            pending_attr = true;
            out[i] = true;
        }
        for c in raw.chars() {
            match c {
                '{' => {
                    if pending_attr && open_depth.is_none() {
                        open_depth = Some(depth);
                        pending_attr = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if open_depth == Some(depth) {
                        open_depth = None;
                        out[i] = true;
                    }
                }
                // `#[cfg(feature = …)] use …;` or a bodyless statement.
                ';' if pending_attr && open_depth.is_none() => {
                    pending_attr = false;
                    out[i] = true;
                }
                _ => {}
            }
        }
        if open_depth.is_some() || pending_attr {
            out[i] = true;
        }
    }
    out
}

/// Marks which lines sit inside the body of any `fn <name>(`/`fn
/// <name><` among `names`, with the same brace-walking approach (and
/// limitations) as [`mark_cfg_feature`]. A bodyless declaration (trait
/// method signature) opens nothing.
pub(crate) fn mark_fn_bodies(code_lines: &[&str], names: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the innermost audited fn's body opened, if any.
    let mut open_depth: Option<i64> = None;
    let mut pending = false;
    for (i, raw) in code_lines.iter().enumerate() {
        if open_depth.is_some() {
            out[i] = true;
        }
        if open_depth.is_none()
            && !pending
            && names.iter().any(|n| {
                raw.contains(&format!("fn {n}(")) || raw.contains(&format!("fn {n}<"))
            })
        {
            pending = true;
            out[i] = true;
        }
        for c in raw.chars() {
            match c {
                '{' => {
                    if pending && open_depth.is_none() {
                        open_depth = Some(depth);
                        pending = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if open_depth == Some(depth) {
                        open_depth = None;
                        out[i] = true;
                    }
                }
                // Trait-method signature without a body.
                ';' if pending && open_depth.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
        if open_depth.is_some() {
            out[i] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn cfg_feature_regions_are_marked() {
        let text = "\
fn a(hub: &mut H) { hub.emit(now, &e); }
#[cfg(feature = \"invariants\")]
fn gated(hub: &mut H) {
    hub.emit_with(now, || e);
}
#[cfg(feature = \"invariants\")]
use helper::check;
fn b(hub: &mut H) { hub.emit(now, &e); }
";
        let f = SourceFile::parse("crates/engine/src/x.rs".to_owned(), text);
        let code: Vec<&str> = f.lines.iter().map(|l| l.code.as_str()).collect();
        let marked = mark_cfg_feature(&code);
        assert!(!marked[0], "plain code before the attribute");
        assert!(marked[1] && marked[2] && marked[3] && marked[4], "gated fn");
        assert!(marked[5] && marked[6], "bodyless gated item");
        assert!(!marked[7], "code after the gated items");
    }

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let passes = registry();
        let mut ids: Vec<&str> = passes.iter().map(|p| p.lint().name()).collect();
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len, "duplicate lint id in the registry");
        assert_eq!(len, 10, "registry size is part of the catalog contract");
    }
}
