//! Offline stub for `rand` 0.8: a bit-faithful reimplementation of the
//! subset this workspace uses. `SmallRng` is xoshiro256++ seeded via
//! SplitMix64 (exactly rand 0.8.5's 64-bit `SmallRng`), and the
//! `gen`/`gen_range`/`gen_bool`/`gen_ratio` sampling paths reproduce the
//! published rand 0.8.5 algorithms so that the checked-in `results/`
//! artifacts regenerate byte-for-byte. Do NOT "simplify" any sampling
//! arithmetic here: the artifact drift gate depends on these exact
//! bit-streams.

use core::ops::{Range, RangeInclusive};

/// Core RNG interface (rand_core 0.6 subset).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut left = dest;
        while left.len() >= 8 {
            let (l, r) = { left }.split_at_mut(8);
            left = r;
            l.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        if !left.is_empty() {
            let chunk = self.next_u64().to_le_bytes();
            let n = left.len();
            left.copy_from_slice(&chunk[..n]);
        }
    }
}

/// Seedable RNG interface (rand_core 0.6 subset).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 default: PCG32 stream over the seed bytes.
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8.5's 64-bit `SmallRng`: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of xoshiro256++ have linear
            // dependencies (mirrors rand 0.8.5).
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }

        /// SplitMix64 seeding, exactly as rand 0.8.5's vendored
        /// xoshiro256plusplus overrides it.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                *slot = z;
            }
            SmallRng { s }
        }
    }
}

/// Types that `Standard` can sample (rand 0.8.5 conversions).
pub trait StandardSample {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($ty:ty, $method:ident) => {
        impl StandardSample for $ty {
            #[inline]
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $ty
            }
        }
    };
}
standard_uint!(u32, next_u32);
standard_uint!(i32, next_u32);
standard_uint!(u64, next_u64);
standard_uint!(i64, next_u64);
standard_uint!(usize, next_u64);
standard_uint!(isize, next_u64);
standard_uint!(u8, next_u32);
standard_uint!(u16, next_u32);

impl StandardSample for f64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply method (rand 0.8.5 `Standard` for f64).
        let scale = 1.0 / ((1u64 << 53) as f64);
        let value = rng.next_u64() >> 11;
        scale * (value as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        let value = rng.next_u32() >> 8;
        scale * (value as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

/// Types usable with `gen_range` (rand 0.8.5 `SampleUniform` subset).
pub trait SampleUniform: Sized {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! wmul_impl {
    ($large:ty, $wide:ty) => {
        |a: $large, b: $large| -> ($large, $large) {
            let w = (a as $wide) * (b as $wide);
            (
                (w >> (8 * core::mem::size_of::<$large>())) as $large,
                w as $large,
            )
        }
    };
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range =
                    (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
                if range == 0 {
                    // The range covers the whole integer domain.
                    return <$u_large as StandardSample>::standard(rng) as $ty;
                }
                // rand 0.8.5's conservative zone approximation for types
                // wider than 16 bits (all this workspace uses).
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                let wmul = wmul_impl!($u_large, $wide);
                loop {
                    let v: $u_large = <$u_large as StandardSample>::standard(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u32, u32, u32, u64);
uniform_int_impl!(i32, u32, u32, u64);
uniform_int_impl!(u64, u64, u64, u128);
uniform_int_impl!(i64, u64, u64, u128);
uniform_int_impl!(usize, usize, u64, u128);
uniform_int_impl!(isize, usize, u64, u128);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "UniformSampler::sample_single: low >= high");
        let scale = high - low;
        loop {
            // A value in [1, 2): 52 mantissa bits with exponent 0
            // (rand 0.8.5 `into_float_with_exponent`).
            let bits = (rng.next_u64() >> 12) | (1023u64 << 52);
            let value1_2 = f64::from_bits(bits);
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // Not used by this workspace; exclusive sampling is a safe
        // stand-in for the float case.
        Self::sample_single(low, high, rng)
    }
}

/// Range argument to `gen_range` (rand 0.8.5 `SampleRange` subset).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

const BERNOULLI_SCALE: f64 = 2.0 * (1u64 << 63) as f64;

/// User-facing RNG methods (rand 0.8.5 `Rng` subset).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        // rand 0.8.5 Bernoulli: compare a u64 draw against p * 2^64.
        let p_int = if (0.0..1.0).contains(&p) {
            (p * BERNOULLI_SCALE) as u64
        } else if p == 1.0 {
            // rand 0.8.5 Bernoulli: p = 1.0 returns true without
            // consuming a draw.
            return true;
        } else {
            panic!("p={p:?} is outside range [0.0, 1.0]");
        };
        self.next_u64() < p_int
    }

    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator > denominator"
        );
        if numerator == denominator {
            return true;
        }
        let p_int = ((f64::from(numerator) / f64::from(denominator)) * BERNOULLI_SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    // GOLDEN VECTORS: the checked-in `results/` artifacts were generated
    // through exactly these streams. If any of these assertions ever has
    // to change, every artifact under `results/` must be regenerated in
    // the same commit (see offline-stubs/README.md).

    #[test]
    fn golden_seed_zero_u64_stream() {
        // SplitMix64(0) seeds + first four xoshiro256++ outputs.
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 5987356902031041503);
        assert_eq!(rng.next_u64(), 7051070477665621255);
        assert_eq!(rng.next_u64(), 6633766593972829180);
        assert_eq!(rng.next_u64(), 211316841551650330);
    }

    #[test]
    fn golden_f64_stream() {
        let mut rng = SmallRng::seed_from_u64(0xDB_CAFE);
        assert_eq!(rng.gen::<f64>(), 0.33760761056379707);
        assert_eq!(rng.gen::<f64>(), 0.170745667304801);
        assert_eq!(rng.gen::<f64>(), 0.5888306309567938);
    }

    #[test]
    fn golden_sampling_paths() {
        // One draw through every sampling path the workspace uses, in a
        // fixed order, so a change to any path shifts this stream.
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(rng.gen_range(5u32..8), 5);
        assert_eq!(rng.gen_range(1u64..=9), 2);
        assert_eq!(rng.gen_range(0usize..1000), 717);
        assert_eq!(rng.gen_range(f64::MIN_POSITIVE..1.0), 0.42720981929150526);
        assert!(!rng.gen_bool(0.45));
        assert!(!rng.gen_ratio(1, 16));
        assert_eq!(rng.next_u32(), 3109157299);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..8);
            assert!((5..8).contains(&v));
            let w = rng.gen_range(1u64..=9);
            assert!((1..=9).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn p_one_consumes_no_draw() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert!(a.gen_bool(1.0));
        assert!(a.gen_ratio(4, 4));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
