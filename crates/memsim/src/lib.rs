//! Memory-system simulation for the ODB workload-scaling reproduction.
//!
//! The paper measures its CPI and MPI trends on real Xeon hardware; this
//! crate supplies the simulated equivalent:
//!
//! * [`cache`] — set-associative, write-back caches with LRU replacement
//!   and invalidation support;
//! * [`tlb`] — a fully-associative LRU translation buffer;
//! * [`coherence`] — a directory that broadcasts invalidations between the
//!   per-processor cache hierarchies (MESI-style, write-invalidate) and
//!   classifies coherence misses separately from capacity misses;
//! * [`hierarchy`] — one processor's TC/L1D/L2/L3/TLB stack with
//!   per-space (user/OS) statistics;
//! * [`dist`] — Zipf and related samplers for skewed reference streams;
//! * [`trace`] — the structured synthetic address-trace generator and the
//!   multi-processor [`trace::Characterizer`] that turns a workload
//!   description into per-instruction event rates (sampled simulation);
//! * [`bus`] — the front-side-bus/IOQ queueing model behind Fig 16;
//! * [`rates`] — the event-rate vocabulary handed to the timing model.
//!
//! The division of labour with `odb-engine`: the engine describes *what*
//! the workload touches (page populations, mix, context-switch rate);
//! this crate simulates *how* the hardware responds (misses per
//! instruction, bus latency).

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bus;
pub mod cache;
pub mod coherence;
pub mod dist;
pub mod hierarchy;
pub mod policy;
pub mod rates;
pub mod tlb;
pub mod trace;

pub use bus::FsbModel;
pub use hierarchy::{CpuHierarchy, Space};
pub use rates::{EventRates, SpaceRates};
pub use trace::{Characterizer, DbRefSource, TraceParams};
