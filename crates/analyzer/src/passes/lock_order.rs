//! The lock-order pass: the deadlock-freedom discipline.

use super::{Pass, PassContext};
use crate::report::{Lint, Violation};
use crate::source::WorkspaceModel;

/// Crates whose `.acquire(` call sites must order lock targets.
pub const LOCK_AUDITED: &[&str] = &["engine"];

/// Requires every `.acquire(` call site in the audited crates to live in
/// a file that sorts its lock targets with `canonical_order` on an
/// earlier line (the deadlock-freedom discipline), or to carry an
/// explicit `// odb-analyzer: allow(lock_order)` escape.
pub struct LockOrderPass;

impl Pass for LockOrderPass {
    fn lint(&self) -> Lint {
        Lint::LockOrder
    }

    fn description(&self) -> &'static str {
        ".acquire( call sites without a preceding canonical_order sort in the same file"
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        for name in LOCK_AUDITED {
            let Some(krate) = model.get(name) else { continue };
            for file in &krate.src_files {
                // The defining module's own API (`pub fn acquire`) is not a
                // call site; `.acquire(` is.
                let mut sort_seen_at: Option<usize> = None;
                for (i, line) in file.lines.iter().enumerate() {
                    if line.in_test {
                        continue;
                    }
                    if sort_seen_at.is_none()
                        && (line.code.contains("sort_by_key(canonical_order)")
                            || line.code.contains("sort_unstable_by_key(canonical_order)"))
                    {
                        sort_seen_at = Some(i);
                    }
                    if line.code.contains(".acquire(") && !line.allows("lock_order") {
                        let sorted_before = sort_seen_at.is_some_and(|s| s < i);
                        if !sorted_before {
                            ctx.push(Violation::new(
                                Lint::LockOrder,
                                &file.rel_path,
                                i + 1,
                                "`.acquire(` call site without a preceding \
                                 `sort_by_key(canonical_order)` in this file; acquire lock \
                                 targets in canonical order (or annotate with \
                                 `// odb-analyzer: allow(lock_order)` and justify)"
                                    .to_owned(),
                            ));
                        }
                    }
                }
            }
        }
    }
}
