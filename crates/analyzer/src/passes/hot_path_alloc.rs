//! The hot-path allocation pass: no heap allocation in the audited
//! per-reference functions of the characterization loop.

use super::{mark_fn_bodies, Pass, PassContext};
use crate::report::{Lint, Violation};
use crate::source::WorkspaceModel;
use std::collections::HashSet;

/// The audited per-reference hot-path functions of `odb-memsim`, as
/// `(file, function names)` pairs. These run once (or more) per sampled
/// memory reference — billions of times per sweep — so a heap
/// allocation inside them is a per-reference cost by construction.
pub const HOT_PATH_AUDITED: &[(&str, &[&str])] = &[
    (
        "crates/memsim/src/trace.rs",
        &[
            "interleave",
            "run_chunk",
            "user_data_ref",
            "os_data_ref",
            "sync_directory",
            "continue_run",
            "draw_dwell",
        ],
    ),
    ("crates/memsim/src/cache.rs", &["access"]),
    (
        "crates/memsim/src/hierarchy.rs",
        &["fetch_code", "access_data", "descend"],
    ),
    ("crates/memsim/src/dist.rs", &["sample", "search_table"]),
    ("crates/memsim/src/tlb.rs", &["access"]),
    (
        "crates/memsim/src/coherence.rs",
        &["write_slice", "has_remote_holders"],
    ),
];

/// Allocation tokens forbidden in the audited hot-path functions.
const ALLOC_TOKENS: &[&str] = &[".collect(", ".collect::<", ".to_vec()", "Vec::new()"];

/// The legacy allowlist for deliberate hot-path allocations, relative to
/// the workspace root. One `path:function` entry per line; `#` comments.
/// Deprecated in favour of `// odb-analyzer: allow(hot_path_alloc)` line
/// escapes; entries still work but produce a migration notice.
pub const HOT_PATH_ALLOWLIST: &str = "crates/analyzer/hot_path_allow.txt";

/// Forbids per-reference heap allocation (`collect()`, `to_vec()`,
/// `Vec::new()`) inside the [`HOT_PATH_AUDITED`] functions — the inner
/// loop the whole sweep's wall-clock stands on. Deliberate cases carry a
/// `// odb-analyzer: allow(hot_path_alloc)` line escape (the legacy
/// [`HOT_PATH_ALLOWLIST`] file is still honoured, with a deprecation
/// notice).
pub struct HotPathAllocPass;

impl Pass for HotPathAllocPass {
    fn lint(&self) -> Lint {
        Lint::HotPathAlloc
    }

    fn description(&self) -> &'static str {
        "heap allocation inside the audited per-reference hot-path functions of odb-memsim"
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        let allow = load_hot_path_allowlist(&model.root.join(HOT_PATH_ALLOWLIST));
        if !allow.is_empty() {
            ctx.note(format!(
                "{HOT_PATH_ALLOWLIST} carries {} entr{} — the file is deprecated; \
                 prefer a `// odb-analyzer: allow(hot_path_alloc)` escape on the \
                 allocation line, which keeps the justification next to the code",
                allow.len(),
                if allow.len() == 1 { "y" } else { "ies" },
            ));
        }
        hot_path_alloc_with(model, &allow, ctx);
    }
}

/// Parses the allowlist file into `(path, function)` pairs; a missing
/// or unreadable file is an empty allowlist (the lint then runs at full
/// strictness rather than silently passing).
fn load_hot_path_allowlist(path: &std::path::Path) -> HashSet<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashSet::new();
    };
    text.lines()
        .filter_map(|line| {
            let entry = line.split('#').next().unwrap_or("").trim();
            if entry.is_empty() {
                return None;
            }
            let (path, func) = entry.rsplit_once(':')?;
            Some((path.trim().to_owned(), func.trim().to_owned()))
        })
        .collect()
}

/// The scan against an explicit allowlist (unit-testable).
fn hot_path_alloc_with(
    model: &WorkspaceModel,
    allow: &HashSet<(String, String)>,
    ctx: &mut PassContext,
) {
    let Some(krate) = model.get("memsim") else { return };
    for (path, functions) in HOT_PATH_AUDITED {
        let Some(file) = krate.src_files.iter().find(|f| f.rel_path == *path) else {
            continue;
        };
        let audited: Vec<&str> = functions
            .iter()
            .copied()
            .filter(|f| !allow.contains(&((*path).to_owned(), (*f).to_owned())))
            .collect();
        if audited.is_empty() {
            continue;
        }
        let code_lines: Vec<&str> = file.lines.iter().map(|l| l.code.as_str()).collect();
        let in_hot = mark_fn_bodies(&code_lines, &audited);
        for (i, line) in file.lines.iter().enumerate() {
            if !in_hot[i] || line.in_test || line.allows("hot_path_alloc") {
                continue;
            }
            if ALLOC_TOKENS.iter().any(|t| line.code.contains(t)) {
                ctx.push(Violation::new(
                    Lint::HotPathAlloc,
                    &file.rel_path,
                    i + 1,
                    "heap allocation (`collect()`/`to_vec()`/`Vec::new()`) inside a \
                     per-reference hot-path function; hoist the buffer out of the \
                     loop, or annotate with `// odb-analyzer: allow(hot_path_alloc)` \
                     and justify"
                        .to_owned(),
                ));
            }
        }
    }
}
