//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! odb-experiments <command> [--out DIR] [--quick] [--jobs N]
//!
//! Commands:
//!   all         every artifact below, in paper order
//!   table1      clients for ≥90% CPU utilization
//!   fig2        TPS vs W and P, with operating regions
//!   fig3        CPU utilization split (OS vs user)
//!   fig4..fig6  IPX total / user / OS
//!   fig7        disk I/O per transaction by kind
//!   fig8        context switches per transaction
//!   fig9..fig11 CPI total / user / OS
//!   table2..4   counter events, stall costs, component formulas
//!   fig12       CPI breakdown by event
//!   fig13..15   L3 MPI total / user / OS
//!   fig16       bus-transaction (IOQ) time and bus utilization
//!   fig17 fig18 two-segment fits with pivot points (4P)
//!   table5      pivot points for 1P/2P/4P + representative workload
//!   latency     commit-latency quantiles by transaction type (4P)
//!   fig19       Itanium2 CPI scaling (§6.3)
//!   extrapolate §6.2 projection accuracy check
//!   charts      ASCII line charts of the headline figures
//!   scorecard   automatic comparison against the paper's printed numbers
//!   variance    seed-to-seed variability of the headline metrics
//!   report      self-contained HTML report with SVG charts
//!   ablations   coherence / L3 size / bus / disks / replacement studies
//! ```
//!
//! Results print to stdout and are mirrored as CSV under `--out`
//! (default `results/`). `--quick` trades fidelity for speed. `--jobs N`
//! runs sweep points on `N` worker threads (default: all host cores);
//! output is bit-identical for every `N` thanks to per-point
//! deterministic seeding — see `odb_experiments::runner`.

use odb_core::config::SystemConfig;
use odb_experiments::figures;
use odb_experiments::report::TextTable;
use odb_experiments::runner::{Sweep, SweepOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// `--help` text (the command list lives in the crate docs above).
const HELP: &str = "\
odb-experiments — regenerate the paper's tables and figures

Usage: odb-experiments [<command>] [--out DIR] [--quick] [--jobs N]
                       [--trace FILE]

Commands (default `all`): all, table1..table5, fig2..fig19, latency,
extrapolate, charts, scorecard, variance, report, ablations.

Options:
  --out DIR    Mirror artifacts under DIR (default `results/`).
  --quick      Trade fidelity for speed (tests and smoke runs).
  --jobs N     Run sweep points on N worker threads (default: all host
               cores). Every N produces bit-identical artifacts: each
               (W, P) point derives its seed from the point itself, and
               rows are collected in grid order regardless of which
               worker finishes first.
  --trace FILE Run the representative workload (100W/48C/4P) with a
               trace observer registered and write its seam events as
               JSON Lines to FILE. With no command, only the trace runs.
  --help       Print this help.

Environment:
  ODB_REPLAY_SWEEP=FILE  Rebuild artifacts from a saved sweep.csv
                         instead of re-simulating.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut out_dir = PathBuf::from("results");
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut trace: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).cloned().unwrap_or_default());
            }
            "--quick" => quick = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.is_empty() => trace = Some(PathBuf::from(path)),
                    _ => {
                        eprintln!("--trace needs an output file path");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            arg if command.is_none() => command = Some(arg.to_owned()),
            arg => {
                eprintln!("unexpected argument `{arg}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // `--trace` with no command means "just the trace": don't drag the
    // full 27-point sweep in behind an event dump.
    let trace_only = trace.is_some() && command.is_none();
    let command = command.unwrap_or_else(|| "all".to_owned());
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let options = if quick {
        SweepOptions::quick()
    } else {
        SweepOptions::standard()
    }
    .with_jobs(jobs);
    if !trace_only {
        if let Err(e) = run(&command, &options, &out_dir) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = trace {
        if let Err(e) = write_trace(&path, &options) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the representative workload with the JSONL trace observer and
/// writes its event stream to `path` (the `--trace` flag).
fn write_trace(path: &Path, options: &SweepOptions) -> CmdResult {
    eprintln!("tracing the representative workload (100W/48C/4P)...");
    let lines = odb_experiments::latency::trace_demo(&SystemConfig::xeon_quad(), options)?;
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(path, body)?;
    eprintln!("wrote {} trace events to {}", lines.len(), path.display());
    Ok(())
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// How a command produces its artifact. The variant decides whether the
/// shared Xeon sweep is prepared at all — `table2` alone must never
/// trigger a 27-point simulation.
enum Handler {
    /// A paper-constant table: no simulation at all.
    Static(&'static str, fn() -> TextTable),
    /// A table projected from the shared Xeon sweep.
    Table(&'static str, fn(&Sweep) -> TextTable),
    /// Like `Table`, for projections that can fail.
    Fallible(&'static str, fn(&Sweep) -> Result<TextTable, odb_core::Error>),
    /// Full custom access to the shared sweep (fit titles, HTML, …).
    Custom(fn(&Sweep, &SweepOptions, &Path) -> CmdResult),
    /// Runs its own simulations, independent of the shared sweep.
    Standalone(fn(&SweepOptions, &Path) -> CmdResult),
}

/// The one command table: drives both the up-front validation (a typo
/// fails in milliseconds instead of after a multi-minute sweep) and
/// dispatch, so the two cannot drift. Table order is `all`'s execution
/// order — the paper's artifact order.
const COMMANDS: &[(&str, Handler)] = &[
    ("table1", Handler::Table("Table 1: clients at 90% CPU utilization (* = target unreachable)", figures::table1)),
    ("fig2", Handler::Table("Figure 2: ODB TPS with P and W scaling", figures::fig2)),
    ("fig3", Handler::Table("Figure 3: CPU utilization split, OS and user (%)", figures::fig3)),
    ("fig4", Handler::Table("Figure 4: millions of instructions per transaction", figures::fig4)),
    ("fig5", Handler::Table("Figure 5: user-space IPX (millions)", figures::fig5)),
    ("fig6", Handler::Table("Figure 6: OS-space IPX (millions)", figures::fig6)),
    ("fig7", Handler::Table("Figure 7: disk I/O per transaction (KB), 4P", fig7_4p)),
    ("fig8", Handler::Table("Figure 8: context switches per transaction", figures::fig8)),
    ("fig9", Handler::Table("Figure 9: overall CPI", figures::fig9)),
    ("fig10", Handler::Table("Figure 10: user-space CPI", figures::fig10)),
    ("fig11", Handler::Table("Figure 11: OS-space CPI", figures::fig11)),
    ("table2", Handler::Static("Table 2: performance-monitoring events", figures::table2)),
    ("table3", Handler::Static("Table 3: clock-cycle cost per event", figures::table3)),
    ("table4", Handler::Static("Table 4: CPI component formulas", figures::table4)),
    ("fig12", Handler::Table("Figure 12: CPI breakdown by event, 4P", fig12_4p)),
    ("fig13", Handler::Table("Figure 13: L3 misses per instruction (x1000)", figures::fig13)),
    ("fig14", Handler::Table("Figure 14: user-space MPI (x1000)", figures::fig14)),
    ("fig15", Handler::Table("Figure 15: OS-space MPI (x1000)", figures::fig15)),
    ("fig16", Handler::Table("Figure 16: bus-transaction time in the IOQ (cycles)", figures::fig16)),
    ("fig17", Handler::Custom(fig17)),
    ("fig18", Handler::Custom(fig18)),
    ("table5", Handler::Fallible("Table 5: warehouses at the CPI/MPI pivot points", figures::table5)),
    ("latency", Handler::Custom(latency)),
    ("extrapolate",Handler::Fallible("Section 6.2: extrapolation from configurations <= 300W (4P CPI)", extrapolate)),
    ("scorecard", Handler::Custom(scorecard)),
    ("report", Handler::Custom(report)),
    ("charts", Handler::Custom(charts)),
    ("fig19", Handler::Standalone(fig19)),
    ("ablations", Handler::Standalone(ablations)),
    ("variance", Handler::Standalone(variance)),
];

fn run(command: &str, options: &SweepOptions, out: &Path) -> CmdResult {
    let all = command == "all";
    if !all && !COMMANDS.iter().any(|(name, _)| *name == command) {
        eprintln!("unknown command `{command}`; see --help");
        std::process::exit(2);
    }
    std::fs::create_dir_all(out)?;
    let selected: Vec<&(&str, Handler)> = COMMANDS
        .iter()
        .filter(|(name, _)| all || *name == command)
        .collect();

    let needs_sweep = selected
        .iter()
        .any(|(_, h)| !matches!(h, Handler::Static(..) | Handler::Standalone(..)));
    let sweep = if needs_sweep {
        Some(xeon_sweep(options, out)?)
    } else {
        None
    };
    let shared = || sweep.as_ref().ok_or("internal: sweep not prepared");
    for (name, handler) in selected {
        match handler {
            Handler::Static(title, table) => emit(out, name, title, &table())?,
            Handler::Table(title, table) => emit(out, name, title, &table(shared()?))?,
            Handler::Fallible(title, table) => emit(out, name, title, &table(shared()?)?)?,
            Handler::Custom(f) => f(shared()?, options, out)?,
            Handler::Standalone(f) => f(options, out)?,
        }
    }
    Ok(())
}

/// The shared Xeon sweep behind the table/figure commands: replayed
/// from `ODB_REPLAY_SWEEP` when set, else simulated (and archived as
/// `sweep.csv` for later replay).
fn xeon_sweep(options: &SweepOptions, out: &Path) -> Result<Sweep, Box<dyn std::error::Error>> {
    match std::env::var_os("ODB_REPLAY_SWEEP") {
        Some(path) => {
            eprintln!("replaying sweep from {}...", path.to_string_lossy());
            Ok(odb_experiments::persist::sweep_from_csv(
                &std::fs::read_to_string(path)?,
            )?)
        }
        None => {
            eprintln!("running the Xeon sweep (27 configurations with client search)...");
            let sweep = Sweep::run(&SystemConfig::xeon_quad(), options);
            for ((p, w), e) in sweep.failures() {
                eprintln!("sweep point (W={w}, P={p}) failed: {e}");
            }
            // Archive the rows that did measure before gating, so a
            // partial ladder is still inspectable after a failure.
            std::fs::write(
                out.join("sweep.csv"),
                odb_experiments::persist::sweep_to_csv(&sweep),
            )?;
            sweep.ensure_complete()?;
            Ok(sweep)
        }
    }
}

fn fig7_4p(sweep: &Sweep) -> TextTable {
    figures::fig7(sweep, 4)
}

fn fig12_4p(sweep: &Sweep) -> TextTable {
    figures::fig12(sweep, 4)
}

fn extrapolate(sweep: &Sweep) -> Result<TextTable, odb_core::Error> {
    figures::extrapolation_check(sweep, 4, 300)
}

/// The `latency` command: re-run the 4P trend points with the latency
/// observer registered and report per-transaction-type commit-latency
/// quantiles as a table, CSV, and an ASCII chart (`latency_chart.txt`).
fn latency(sweep: &Sweep, options: &SweepOptions, out: &Path) -> CmdResult {
    use odb_experiments::chart::{ascii_chart, ChartOptions};
    eprintln!("running the commit-latency study (trend warehouses, 4P)...");
    let points = odb_experiments::latency::measure(&SystemConfig::xeon_quad(), sweep, options)?;
    emit(
        out,
        "latency",
        "Commit latency by transaction type (4P, log2-bucket upper bounds, ms)",
        &odb_experiments::latency::table(&points),
    )?;
    let chart = ascii_chart(
        "Commit latency vs warehouses (4P, ms)",
        &odb_experiments::latency::series(&points),
        ChartOptions::default(),
    );
    println!("{chart}");
    std::fs::write(out.join("latency_chart.txt"), chart)?;
    Ok(())
}

fn fig17(sweep: &Sweep, _options: &SweepOptions, out: &Path) -> CmdResult {
    let r = figures::fig17(sweep, 4)?;
    let title = fit_title("Figure 17: CPI linear approximation, 4P", &r);
    emit(out, "fig17", &title, &r.table)
}

fn fig18(sweep: &Sweep, _options: &SweepOptions, out: &Path) -> CmdResult {
    let r = figures::fig18(sweep, 4)?;
    let title = fit_title("Figure 18: MPI linear approximation, 4P", &r);
    emit(out, "fig18", &title, &r.table)
}

fn scorecard(sweep: &Sweep, _options: &SweepOptions, out: &Path) -> CmdResult {
    let checks = odb_experiments::scorecard::scorecard(sweep)?;
    let table = odb_experiments::scorecard::render(&checks);
    let passed = checks.iter().filter(|c| c.pass).count();
    emit(
        out,
        "scorecard",
        &format!(
            "Scorecard: measured vs published anchors ({passed}/{} pass)",
            checks.len()
        ),
        &table,
    )
}

fn report(sweep: &Sweep, _options: &SweepOptions, out: &Path) -> CmdResult {
    let html = odb_experiments::html::report(sweep)?;
    std::fs::write(out.join("report.html"), &html)?;
    eprintln!("wrote {}", out.join("report.html").display());
    Ok(())
}

/// Renders the headline figures as ASCII line charts into charts.txt.
fn charts(sweep: &Sweep, _options: &SweepOptions, out: &Path) -> CmdResult {
    use odb_experiments::chart::{ascii_chart, ChartOptions};
    use odb_experiments::figures::metric_series;
    let options = ChartOptions::default();
    let mut rendered = String::new();
    let mut add = |title: &str, series: Vec<odb_core::series::Series>| {
        rendered.push_str(&ascii_chart(title, &series, options));
        rendered.push('\n');
    };
    add(
        "Figure 2: TPS vs warehouses",
        metric_series(sweep, |r| r.measurement.tps()),
    );
    add(
        "Figure 4: IPX (millions) vs warehouses",
        metric_series(sweep, |r| r.measurement.ipx() / 1e6),
    );
    add(
        "Figure 8: context switches per transaction",
        metric_series(sweep, |r| r.measurement.context_switches_per_txn),
    );
    add(
        "Figure 9: CPI vs warehouses (note the knee near the pivot)",
        metric_series(sweep, |r| r.measurement.cpi()),
    );
    add(
        "Figure 13: L3 MPI x1000 (P-independent, saturating)",
        metric_series(sweep, |r| r.measurement.mpi() * 1e3),
    );
    add(
        "Figure 16: IOQ bus-transaction time (cycles)",
        metric_series(sweep, |r| r.measurement.bus_transaction_cycles),
    );
    println!("{rendered}");
    std::fs::write(out.join("charts.txt"), rendered)?;
    Ok(())
}

/// Multi-seed variability study (the paper's reference [2], Alameldeen &
/// Wood, motivates reporting it): how much do the headline metrics move
/// across seeds at fixed configuration and fidelity?
fn variance(options: &SweepOptions, out: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use odb_core::config::{OltpConfig, WorkloadConfig};
    let seeds = 6u64;
    eprintln!("running the seed-variability study ({seeds} seeds at 100W/48C/4P)...");
    let mut tps = Vec::new();
    let mut cpi = Vec::new();
    let mut mpi = Vec::new();
    let mut cs = Vec::new();
    for seed in 0..seeds {
        let config = OltpConfig::new(
            WorkloadConfig::new(100, 48)?,
            SystemConfig::xeon_quad(),
        )?;
        let mut opts = options.measure.clone();
        opts.seed = 1000 + seed;
        let m = odb_engine::OdbSimulator::new(config, opts)?.run()?;
        tps.push(m.tps());
        cpi.push(m.cpi());
        mpi.push(m.mpi() * 1e3);
        cs.push(m.context_switches_per_txn);
    }
    let stats = |vs: &[f64]| -> (f64, f64) {
        let n = vs.len() as f64;
        let mean = vs.iter().sum::<f64>() / n;
        let sd = (vs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        (mean, sd)
    };
    let mut t = TextTable::new(vec![
        "metric".into(),
        "mean".into(),
        "stddev".into(),
        "CoV %".into(),
    ]);
    for (name, vs) in [
        ("TPS", &tps),
        ("CPI", &cpi),
        ("MPI x1000", &mpi),
        ("cs/txn", &cs),
    ] {
        let (mean, sd) = stats(vs);
        t.row(vec![
            name.into(),
            format!("{mean:.3}"),
            format!("{sd:.3}"),
            format!("{:.2}", 100.0 * sd / mean),
        ]);
    }
    emit(
        out,
        "variance",
        &format!("Seed-to-seed variability at 100W/48C/4P ({seeds} seeds)"),
        &t,
    )
}

fn fit_title(base: &str, r: &figures::FitReport) -> String {
    match r.pivot {
        Some((x, y)) => format!(
            "{base} — cached: y = {:.5}x + {:.3}; scaled: y = {:.5}x + {:.3}; pivot at {:.0} warehouses (y = {:.3})",
            r.fit.cached.slope, r.fit.cached.intercept, r.fit.scaled.slope, r.fit.scaled.intercept, x, y
        ),
        None => format!("{base} — segments are parallel (no pivot)"),
    }
}

fn fig19(options: &SweepOptions, out: &Path) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("running the Itanium2 sweep (8 configurations, 4P)...");
    let (_sweep, report) = figures::fig19(options)?;
    let title = fit_title("Figure 19: CPI scaling on an Itanium2 quad server", &report);
    emit(out, "fig19", &title, &report.table)
}

fn ablations(options: &SweepOptions, out: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use odb_core::config::CacheGeometry;
    use odb_experiments::ladder::ConfigPoint;

    // L3-size ablation (§6.3: bigger L3 flattens the cached region and
    // moves the pivot right).
    eprintln!("running the L3-size ablation...");
    let mut t = TextTable::new(vec![
        "L3".into(),
        "CPI@10W".into(),
        "CPI@100W".into(),
        "CPI@800W".into(),
        "CPI pivot W".into(),
    ]);
    for (label, bytes) in [("512KB", 512 << 10), ("1MB", 1 << 20), ("2MB", 2 << 20)] {
        let mut system = SystemConfig::xeon_quad();
        system.l3 = CacheGeometry::new(bytes, 64, 8)?;
        let points: Vec<ConfigPoint> = odb_experiments::ladder::TREND_WAREHOUSES
            .iter()
            .map(|&w| ConfigPoint {
                warehouses: w,
                processors: 4,
            })
            .collect();
        let sweep = Sweep::run_points(&system, options, &points);
        sweep.ensure_complete()?;
        let fit = figures::fig17(&sweep, 4)?;
        let cpi_at = |w: u32| {
            sweep
                .row(4, w)
                .map(|r| format!("{:.2}", r.measurement.cpi()))
                .unwrap_or_default()
        };
        t.row(vec![
            label.into(),
            cpi_at(10),
            cpi_at(100),
            cpi_at(800),
            fit.pivot
                .map(|(x, _)| format!("{x:.0}"))
                .unwrap_or_else(|| "none".into()),
        ]);
    }
    emit(out, "ablation_l3", "Ablation: L3 capacity vs the CPI pivot (4P)", &t)?;

    // Coherence ablation: rerun one characterization with the directory
    // disabled and compare MPI (the paper's 'coherence is negligible').
    eprintln!("running the coherence ablation...");
    use odb_core::config::{OltpConfig, WorkloadConfig};
    use odb_engine::profile::{trace_params, OdbRefSource, WorkloadEstimates};
    use odb_engine::schema::PageMap;
    use odb_engine::txn::TxnSampler;
    use odb_memsim::coherence::Directory;
    use odb_memsim::Characterizer;
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "MPI (coherent) x1000".into(),
        "MPI (no coherence) x1000".into(),
        "coherence share %".into(),
    ]);
    for &w in &[10u32, 100, 800] {
        let config = OltpConfig::new(
            WorkloadConfig::new(w, 48)?,
            SystemConfig::xeon_quad(),
        )?;
        let params = trace_params(&config, &WorkloadEstimates::initial());
        let characterizer = Characterizer::new(config.system.clone(), params)?;
        let sampler = TxnSampler::new(PageMap::new(w))?;
        let warm = options.measure.char_warmup_instructions;
        let run = options.measure.char_measure_instructions;
        let on = {
            let s = sampler.clone();
            let mut dir = Directory::new();
            characterizer.run_with_directory(
                &mut dir,
                &mut |_pid| OdbRefSource::with_sampler(s.clone(), 4),
                42,
                warm,
                run,
            )?
        };
        let off = {
            let s = sampler.clone();
            let mut dir = Directory::disabled();
            characterizer.run_with_directory(
                &mut dir,
                &mut |_pid| OdbRefSource::with_sampler(s.clone(), 4),
                42,
                warm,
                run,
            )?
        };
        t.row(vec![
            w.to_string(),
            format!("{:.3}", on.mpi() * 1e3),
            format!("{:.3}", off.mpi() * 1e3),
            format!("{:.1}", on.coherence_miss_fraction() * 100.0),
        ]);
    }
    emit(out, "ablation_coherence", "Ablation: coherence on/off (4P characterization)", &t)?;

    // Bus-bandwidth ablation (§6.3: more bandwidth flattens the scaled
    // region).
    eprintln!("running the bus-bandwidth ablation...");
    let mut t = TextTable::new(vec![
        "bus occupancy".into(),
        "CPI@800W".into(),
        "IOQ@800W".into(),
        "bus util@800W".into(),
    ]);
    for (label, scale) in [("1.0x", 1.0), ("0.67x (=+50% bandwidth)", 1.0 / 1.5), ("0.5x", 0.5)] {
        let mut system = SystemConfig::xeon_quad();
        system.bus.occupancy_cycles *= scale;
        let points = [ConfigPoint {
            warehouses: 800,
            processors: 4,
        }];
        let sweep = Sweep::run_points(&system, options, &points);
        sweep.ensure_complete()?;
        let row = sweep.row(4, 800).expect("measured");
        t.row(vec![
            label.into(),
            format!("{:.2}", row.measurement.cpi()),
            format!("{:.0}", row.measurement.bus_transaction_cycles),
            format!("{:.0}%", row.measurement.bus_utilization * 100.0),
        ]);
    }
    emit(out, "ablation_bus", "Ablation: bus bandwidth at 800W (4P)", &t)?;

    // CMP what-if (§1: "OLTP workloads would scale well on future CMP
    // designs"). Four cores with private TC/L1/L2 either carry private
    // 1 MB L3s kept coherent over a bus (the paper's SMP) or share one
    // 4 MB last-level cache on a die (a CMP). The shared organization
    // dedups the code/metadata/catalog footprint and needs no
    // invalidations — the advantage the paper predicts.
    eprintln!("running the CMP what-if ablation...");
    {
        use odb_core::config::CacheGeometry;
        let mut t = TextTable::new(vec![
            "organization".into(),
            "MPI@100W x1000".into(),
            "MPI@800W x1000".into(),
            "coherence share %".into(),
        ]);
        for (label, cmp) in [("SMP 4 x 1MB private L3", false), ("CMP 1 x 4MB shared L3", true)] {
            let mut cells = vec![label.to_string()];
            for &w in &[100u32, 800] {
                let mut system = SystemConfig::xeon_quad();
                if cmp {
                    system.l3 = CacheGeometry::new(4 << 20, 64, 8)?;
                }
                let config = OltpConfig::new(WorkloadConfig::new(w, 48)?, system)?;
                let params = trace_params(&config, &WorkloadEstimates::initial());
                let mut characterizer = Characterizer::new(config.system.clone(), params)?;
                if cmp {
                    characterizer = characterizer.with_shared_l3();
                }
                let sampler = TxnSampler::new(PageMap::new(w))?;
                let c = characterizer.run(
                    |_pid| OdbRefSource::with_sampler(sampler.clone(), 4),
                    42,
                    options.measure.char_warmup_instructions * 2,
                    options.measure.char_measure_instructions,
                )?;
                cells.push(format!("{:.3}", c.mpi() * 1e3));
                if w == 800 {
                    cells.push(format!("{:.1}", c.coherence_miss_fraction() * 100.0));
                }
            }
            t.row(cells);
        }
        emit(
            out,
            "ablation_cmp",
            "Ablation: SMP (private L3 + bus coherence) vs CMP (shared L3) at 4 cores",
            &t,
        )?;
    }

    // Replacement-policy ablation (§7: "more judicious and specialized
    // caching schemes" for the limited L3).
    eprintln!("running the L3 replacement-policy ablation...");
    use odb_memsim::policy::ReplacementPolicy;
    let mut t = TextTable::new(vec![
        "L3 policy".into(),
        "MPI@100W x1000".into(),
        "MPI@800W x1000".into(),
        "coherence share %".into(),
    ]);
    for policy in ReplacementPolicy::ALL {
        let mut cells = vec![policy.to_string()];
        for &w in &[100u32, 800] {
            let config = OltpConfig::new(
                WorkloadConfig::new(w, 48)?,
                SystemConfig::xeon_quad(),
            )?;
            let params = trace_params(&config, &WorkloadEstimates::initial());
            let characterizer = Characterizer::new(config.system.clone(), params)?
                .with_l3_policy(policy);
            let sampler = TxnSampler::new(PageMap::new(w))?;
            let c = characterizer.run(
                |_pid| OdbRefSource::with_sampler(sampler.clone(), 4),
                42,
                options.measure.char_warmup_instructions,
                options.measure.char_measure_instructions,
            )?;
            cells.push(format!("{:.3}", c.mpi() * 1e3));
            if w == 800 {
                cells.push(format!("{:.1}", c.coherence_miss_fraction() * 100.0));
            }
        }
        t.row(cells);
    }
    emit(out, "ablation_replacement", "Ablation: L3 replacement policy (4P characterization)", &t)?;

    // I/O-scheduler ablation: FIFO (the paper's Linux 2.4) vs an
    // elevator. Amortized seeks cut read latency at scale, easing the
    // masking burden (fewer clients / higher utilization).
    eprintln!("running the I/O-scheduler ablation...");
    let mut t = TextTable::new(vec![
        "scheduler".into(),
        "TPS@800W".into(),
        "util@800W".into(),
        "mean read wait proxy (cs/txn)".into(),
    ]);
    for (label, scheduler) in [
        ("FIFO", odb_iosim::Scheduler::Fifo),
        ("SCAN", odb_iosim::Scheduler::Scan),
    ] {
        let mut measure = options.measure.clone();
        measure.system.disk_scheduler = scheduler;
        let config = OltpConfig::new(
            WorkloadConfig::new(800, 64)?,
            SystemConfig::xeon_quad(),
        )?;
        let m = odb_engine::OdbSimulator::new(config, measure)?.run()?;
        t.row(vec![
            label.into(),
            format!("{:.0}", m.tps()),
            format!("{:.2}", m.cpu_utilization),
            format!("{:.2}", m.context_switches_per_txn),
        ]);
    }
    emit(out, "ablation_scheduler", "Ablation: disk scheduling at 800W (4P, 64 clients)", &t)?;

    // L2 prefetch ablation: next-line prefetching on the sequential
    // slices of the reference stream (code runs, row scans).
    eprintln!("running the L2-prefetch ablation...");
    {
        let mut t = TextTable::new(vec![
            "L2 prefetch".into(),
            "MPI@800W x1000".into(),
            "L2 misses/instr x1000".into(),
            "prefetch fills/instr x1000".into(),
        ]);
        for (label, prefetch) in [("off (paper's machine)", false), ("next-line", true)] {
            let config = OltpConfig::new(
                WorkloadConfig::new(800, 64)?,
                SystemConfig::xeon_quad(),
            )?;
            let params = trace_params(&config, &WorkloadEstimates::initial());
            let mut characterizer = Characterizer::new(config.system.clone(), params)?;
            if prefetch {
                characterizer = characterizer.with_l2_prefetch();
            }
            let sampler = TxnSampler::new(PageMap::new(800))?;
            let c = characterizer.run(
                |_pid| OdbRefSource::with_sampler(sampler.clone(), 4),
                42,
                options.measure.char_warmup_instructions,
                options.measure.char_measure_instructions,
            )?;
            let instr = (c.user_counts.instructions + c.os_counts.instructions) as f64;
            let l2 = (c.user_counts.l2_misses + c.os_counts.l2_misses) as f64;
            let pf = (c.user_counts.prefetch_l3_fills + c.os_counts.prefetch_l3_fills) as f64;
            t.row(vec![
                label.into(),
                format!("{:.3}", c.mpi() * 1e3),
                format!("{:.3}", l2 / instr * 1e3),
                format!("{:.3}", pf / instr * 1e3),
            ]);
        }
        emit(out, "ablation_prefetch", "Ablation: next-line L2 prefetch (4P characterization, 800W)", &t)?;
    }

    // Transaction-mix ablation: the iron law's IPX term is set by the
    // mix; a read-heavy mix runs lighter, logs less and locks less.
    eprintln!("running the transaction-mix ablation...");
    {
        use odb_engine::txn::TxnMix;
        let mut t = TextTable::new(vec![
            "mix".into(),
            "TPS@100W".into(),
            "IPX (M)".into(),
            "log KB/txn".into(),
            "cs/txn".into(),
        ]);
        for (label, mix) in [
            ("paper (45/43/4/4/4)", TxnMix::paper()),
            ("read-heavy", TxnMix::read_heavy()),
            ("write-heavy", TxnMix::write_heavy()),
        ] {
            let mut measure = options.measure.clone();
            measure.system.txn_mix = mix;
            let config = OltpConfig::new(
                WorkloadConfig::new(100, 48)?,
                SystemConfig::xeon_quad(),
            )?;
            let m = odb_engine::OdbSimulator::new(config, measure)?.run()?;
            t.row(vec![
                label.into(),
                format!("{:.0}", m.tps()),
                format!("{:.2}", m.ipx() / 1e6),
                format!("{:.1}", m.io_per_txn.log_write_kb),
                format!("{:.2}", m.context_switches_per_txn),
            ]);
        }
        emit(out, "ablation_mix", "Ablation: transaction mix at 100W (4P, 48 clients)", &t)?;
    }

    // Disk-bandwidth ablation (§6.3: more spindles push the I/O-bound
    // region out).
    eprintln!("running the disk-bandwidth ablation...");
    let mut t = TextTable::new(vec![
        "disks".into(),
        "TPS@1200W".into(),
        "util@1200W".into(),
        "cs/txn@1200W".into(),
    ]);
    for disks in [13u32, 26, 52] {
        let mut system = SystemConfig::xeon_quad();
        system.disk_array.disks = disks;
        let points = [ConfigPoint {
            warehouses: 1200,
            processors: 4,
        }];
        let sweep = Sweep::run_points(&system, options, &points);
        sweep.ensure_complete()?;
        let row = sweep.row(4, 1200).expect("measured");
        t.row(vec![
            disks.to_string(),
            format!("{:.0}", row.measurement.tps()),
            format!("{:.2}", row.measurement.cpu_utilization),
            format!("{:.2}", row.measurement.context_switches_per_txn),
        ]);
    }
    emit(out, "ablation_disks", "Ablation: disk count at 1200W (4P)", &t)
}

/// Prints an artifact and mirrors it to `<out>/<name>.txt` and `.csv`.
fn emit(
    out: &Path,
    name: &str,
    title: &str,
    table: &TextTable,
) -> Result<(), Box<dyn std::error::Error>> {
    let rendered = table.render();
    println!("\n== {title} ==\n{rendered}");
    let mut txt = std::fs::File::create(out.join(format!("{name}.txt")))?;
    writeln!(txt, "{title}\n\n{rendered}")?;
    std::fs::write(out.join(format!("{name}.csv")), table.to_csv())?;
    Ok(())
}
