//! Cached vs scaled: the paper's central contrast, measured head-to-head.
//!
//! Researchers simulate *cached* setups (working set in memory, no I/O);
//! vendors tune *scaled* setups (thousands of warehouses, I/O-dominated).
//! This example measures one of each and shows exactly which metrics move
//! and which stay put — the gap the paper set out to bridge.
//!
//! ```sh
//! cargo run --release --example cached_vs_scaled
//! ```

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::metrics::Measurement;
use odb_engine::{OdbSimulator, SimOptions};

fn measure(warehouses: u32, clients: u32) -> Result<Measurement, odb_core::Error> {
    let config = OltpConfig::new(
        WorkloadConfig::new(warehouses, clients)?,
        SystemConfig::xeon_quad(),
    )?;
    OdbSimulator::new(config, SimOptions::standard())?.run()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("measuring the cached setup (10 warehouses, 10 clients)...");
    let cached = measure(10, 10)?;
    println!("measuring the scaled setup (800 warehouses, 64 clients)...");
    let scaled = measure(800, 64)?;

    let row = |name: &str, a: f64, b: f64, unit: &str| {
        let delta = if a != 0.0 { 100.0 * (b - a) / a } else { 0.0 };
        println!("  {name:<26}{a:>10.3}{b:>12.3}  {unit:<8} {delta:>+7.0}%");
    };
    println!("\n  {:<26}{:>10}{:>12}", "metric", "cached", "scaled");
    println!("  {}", "-".repeat(68));
    row("TPS", cached.tps(), scaled.tps(), "txn/s");
    row("user IPX (M)", cached.ipx_user() / 1e6, scaled.ipx_user() / 1e6, "Minstr");
    row("OS IPX (M)", cached.ipx_os() / 1e6, scaled.ipx_os() / 1e6, "Minstr");
    row("CPI", cached.cpi(), scaled.cpi(), "cyc/instr");
    row("L3 MPI (x1000)", cached.mpi() * 1e3, scaled.mpi() * 1e3, "miss/Kinstr");
    row("disk reads/txn", cached.disk_reads_per_txn, scaled.disk_reads_per_txn, "IO/txn");
    row(
        "log writes/txn (KB)",
        cached.io_per_txn.log_write_kb,
        scaled.io_per_txn.log_write_kb,
        "KB",
    );
    row(
        "page writes/txn (KB)",
        cached.io_per_txn.page_write_kb,
        scaled.io_per_txn.page_write_kb,
        "KB",
    );
    row(
        "context switches/txn",
        cached.context_switches_per_txn,
        scaled.context_switches_per_txn,
        "cs/txn",
    );
    row(
        "OS share of busy time",
        cached.os_busy_fraction * 100.0,
        scaled.os_busy_fraction * 100.0,
        "%",
    );
    row(
        "bus IOQ latency",
        cached.bus_transaction_cycles,
        scaled.bus_transaction_cycles,
        "cycles",
    );

    println!(
        "\nthe paper's reading: user-space path length barely moves; the scaled\n\
         setup loses throughput to OS I/O work (IPX) and to L3/bus stalls (CPI)\n\
         — both captured by the iron law TPS = P x F / (IPX x CPI)."
    );
    Ok(())
}
