//! EMON-style performance-counter sampling.
//!
//! The paper's data pipeline (§3.3): run ODB for a twenty-minute warm-up,
//! then measure for ten minutes, sampling each performance event for ten
//! seconds in round-robin fashion and repeating each event six times.
//! Sampling is non-invasive but not noise-free — the paper explicitly
//! attributes the high variance of OS-space CPI at small warehouse counts
//! to "the small percentage of time spent in operating system code and
//! the resulting sampling errors in EMON" (§5.1).
//!
//! This crate reproduces that pipeline: [`MeasurementPlan`] describes the
//! schedule, and [`Emon`] perturbs true event counts with a three-term
//! noise model (Poisson counting noise, workload phase noise amortized by
//! repeats, and a fixed attribution quantum that hits small counts
//! hardest — the OS-CPI-variance mechanism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use odb_core::breakdown::Event;
use odb_core::metrics::SpaceCounts;
use odb_des::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The measurement schedule of §3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementPlan {
    /// Warm-up length before any sampling (paper: 20 minutes).
    pub warmup: SimTime,
    /// Length of one per-event sampling window (paper: 10 seconds).
    pub window: SimTime,
    /// Round-robin repeats per event (paper: 6).
    pub repeats: u32,
}

impl MeasurementPlan {
    /// The paper's schedule: 20 min warm-up, 10 s windows, 6 repeats.
    pub fn paper() -> Self {
        Self {
            warmup: SimTime::from_secs(20 * 60),
            window: SimTime::from_secs(10),
            repeats: 6,
        }
    }

    /// A scaled-down schedule for simulation, preserving the structure
    /// (round-robin windows, multiple repeats) at `1/scale` the duration.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn scaled(scale: u64) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        let paper = Self::paper();
        Self {
            warmup: SimTime::from_nanos(paper.warmup.as_nanos() / scale),
            window: SimTime::from_nanos(paper.window.as_nanos() / scale),
            repeats: paper.repeats,
        }
    }

    /// Total sampling time: one window per event per repeat.
    pub fn total_measurement(&self) -> SimTime {
        let events = Event::ALL.len() as u64;
        SimTime::from_nanos(self.window.as_nanos() * events * u64::from(self.repeats))
    }

    /// The round-robin event order: all of Table 2, `repeats` times.
    pub fn schedule(&self) -> Vec<Event> {
        let mut order = Vec::with_capacity(Event::ALL.len() * self.repeats as usize);
        for _ in 0..self.repeats {
            order.extend(Event::ALL);
        }
        order
    }
}

/// Noise parameters for the sampling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relative workload phase noise per window (before `1/√repeats`
    /// amortization).
    pub phase_sigma: f64,
    /// Absolute attribution noise, in events: mis-attribution between
    /// user and OS space at sampling boundaries. Dominates for small
    /// counts — the paper's noisy OS CPI at 10 W.
    pub attribution_sigma: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            phase_sigma: 0.02,
            attribution_sigma: 2.0e6,
        }
    }
}

impl NoiseModel {
    /// A noiseless model, for deterministic tests and calibration runs.
    pub fn none() -> Self {
        Self {
            phase_sigma: 0.0,
            attribution_sigma: 0.0,
        }
    }
}

/// The sampling instrument.
#[derive(Debug)]
pub struct Emon {
    plan: MeasurementPlan,
    noise: NoiseModel,
    rng: SmallRng,
}

impl Emon {
    /// Creates an instrument with the given plan, noise model and seed.
    pub fn new(plan: MeasurementPlan, noise: NoiseModel, seed: u64) -> Self {
        Self {
            plan,
            noise,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The measurement plan.
    pub fn plan(&self) -> MeasurementPlan {
        self.plan
    }

    /// Samples one true event count, returning the noisy observation.
    ///
    /// Noise terms: Poisson (`√count`), phase
    /// (`count × phase_sigma / √repeats`), and attribution
    /// (`attribution_sigma`, absolute). The result is clamped at zero.
    pub fn sample(&mut self, true_count: u64) -> u64 {
        let c = true_count as f64;
        let sigma = (c.max(0.0).sqrt().powi(2) // Poisson variance = count
            + (c * self.noise.phase_sigma / (self.plan.repeats as f64).sqrt()).powi(2)
            + self.noise.attribution_sigma.powi(2))
        .sqrt();
        let observed = c + gaussian(&mut self.rng) * sigma;
        observed.max(0.0).round() as u64
    }

    /// Samples every field of a [`SpaceCounts`] independently, as the
    /// round-robin schedule does (each event is measured in its own
    /// windows, so errors are uncorrelated across events).
    pub fn sample_counts(&mut self, true_counts: &SpaceCounts) -> SpaceCounts {
        SpaceCounts {
            instructions: self.sample(true_counts.instructions),
            cycles: self.sample(true_counts.cycles),
            l3_misses: self.sample(true_counts.l3_misses),
            l2_misses: self.sample(true_counts.l2_misses),
            tc_misses: self.sample(true_counts.tc_misses),
            tlb_misses: self.sample(true_counts.tlb_misses),
            branch_mispredictions: self.sample(true_counts.branch_mispredictions),
        }
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_section_3_3() {
        let p = MeasurementPlan::paper();
        assert_eq!(p.warmup, SimTime::from_secs(1200));
        assert_eq!(p.window, SimTime::from_secs(10));
        assert_eq!(p.repeats, 6);
        // 9 events × 6 repeats × 10 s = 540 s ≈ the 10-minute window.
        assert_eq!(p.total_measurement(), SimTime::from_secs(540));
        let schedule = p.schedule();
        assert_eq!(schedule.len(), 54);
        assert_eq!(schedule[0], Event::Instructions);
        assert_eq!(schedule[9], Event::Instructions, "round robin repeats");
    }

    #[test]
    fn scaled_plan_divides_durations() {
        let s = MeasurementPlan::scaled(100);
        assert_eq!(s.warmup, SimTime::from_secs(12));
        assert_eq!(s.window, SimTime::from_millis(100));
        assert_eq!(s.repeats, 6);
    }

    #[test]
    #[should_panic(expected = "scale must be nonzero")]
    fn zero_scale_panics() {
        let _ = MeasurementPlan::scaled(0);
    }

    #[test]
    fn noiseless_sampling_is_exact() {
        let mut e = Emon::new(MeasurementPlan::scaled(100), NoiseModel::none(), 1);
        for &c in &[0u64, 1, 1_000_000, u64::MAX >> 12] {
            // Poisson term remains even in the "none" model? No: with
            // phase and attribution zeroed, only √count noise remains,
            // which is real counting statistics. Verify it is small.
            let s = e.sample(c);
            let err = (s as i64 - c as i64).unsigned_abs();
            let bound = 6 * ((c as f64).sqrt() as u64 + 1);
            assert!(err <= bound, "count {c}: err {err} > {bound}");
        }
    }

    #[test]
    fn relative_error_shrinks_with_count() {
        let mut e = Emon::new(MeasurementPlan::paper(), NoiseModel::default(), 7);
        let rel_err = |e: &mut Emon, c: u64, n: usize| {
            let mut total = 0.0;
            for _ in 0..n {
                total += ((e.sample(c) as f64) - c as f64).abs() / c as f64;
            }
            total / n as f64
        };
        let small = rel_err(&mut e, 10_000_000, 200); // 10M events
        let large = rel_err(&mut e, 10_000_000_000, 200); // 10G events
        assert!(
            small > 3.0 * large,
            "attribution noise must hit small counts harder: {small} vs {large}"
        );
    }

    #[test]
    fn sampling_is_unbiased_within_tolerance() {
        let mut e = Emon::new(MeasurementPlan::paper(), NoiseModel::default(), 11);
        let c = 5_000_000_000u64;
        let n = 500;
        let mean: f64 = (0..n).map(|_| e.sample(c) as f64).sum::<f64>() / n as f64;
        assert!(
            ((mean - c as f64) / c as f64).abs() < 0.005,
            "bias {mean} vs {c}"
        );
    }

    #[test]
    fn sample_counts_perturbs_every_field() {
        let mut e = Emon::new(MeasurementPlan::paper(), NoiseModel::default(), 3);
        let truth = SpaceCounts {
            instructions: 10_000_000_000,
            cycles: 40_000_000_000,
            l3_misses: 80_000_000,
            l2_misses: 300_000_000,
            tc_misses: 50_000_000,
            tlb_misses: 20_000_000,
            branch_mispredictions: 40_000_000,
        };
        let obs = e.sample_counts(&truth);
        // Each field sits within 6 sigma of its truth under the model.
        let close = |a: u64, b: u64| {
            let c = b as f64;
            let sigma = (c + (c * 0.02 / 6f64.sqrt()).powi(2) + 2.0e6f64.powi(2)).sqrt();
            (a as f64 - c).abs() < 6.0 * sigma
        };
        assert!(close(obs.instructions, truth.instructions));
        assert!(close(obs.cycles, truth.cycles));
        assert!(close(obs.l3_misses, truth.l3_misses));
        assert!(close(obs.l2_misses, truth.l2_misses));
        assert!(close(obs.tc_misses, truth.tc_misses));
        assert!(close(obs.tlb_misses, truth.tlb_misses));
        assert!(close(obs.branch_mispredictions, truth.branch_mispredictions));
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = Emon::new(MeasurementPlan::paper(), NoiseModel::default(), 42);
        let mut b = Emon::new(MeasurementPlan::paper(), NoiseModel::default(), 42);
        for c in [1_000u64, 1_000_000, 1_000_000_000] {
            assert_eq!(a.sample(c), b.sample(c));
        }
    }
}
