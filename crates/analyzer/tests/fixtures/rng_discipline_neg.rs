//! Fixture: per-component seed derived from the per-point splitmix
//! path (negative — `rng_discipline` must stay quiet).
pub fn derived(opts: &SimOptions, lane: u64) -> SmallRng {
    SmallRng::seed_from_u64(opts.seed_for(lane))
}
