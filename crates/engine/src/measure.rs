//! The measurement pipeline: characterize → simulate → (optionally)
//! sample through EMON.
//!
//! One run of [`OdbSimulator`] reproduces the paper's §3.3 procedure for
//! a single `(W, C, P)` configuration:
//!
//! 1. **Characterize** the memory system: the multi-processor cache
//!    simulation turns the configuration into per-instruction event
//!    rates.
//! 2. **Simulate** the full system: warm up, then measure TPS, IPX, CPI,
//!    utilization, I/O and context switches over a window.
//! 3. **Iterate**: the OS share and context-switch rate measured in (2)
//!    feed back into (1) — two rounds suffice (cache rates depend only
//!    weakly on the feedback terms).
//! 4. **Sample**: optionally pass the true counts through the EMON noise
//!    model, reproducing the measurement error the paper discusses.

use crate::observe::EmonObserver;
use crate::profile::{trace_params, OdbRefSource, WorkloadEstimates};
use crate::schema::PageMap;
use crate::system::{SystemParams, SystemSim};
use crate::txn::TxnSampler;
use odb_core::config::OltpConfig;
use odb_core::metrics::{Measurement, SpaceCounts};
use odb_des::{SimObserver, SimTime};
use odb_emon::{MeasurementPlan, NoiseModel};
use odb_memsim::trace::Characterization;
use odb_memsim::Characterizer;

/// Knobs controlling simulation fidelity versus cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Cache-characterization warm-up, instructions per CPU.
    pub char_warmup_instructions: u64,
    /// Cache-characterization measurement, instructions per CPU.
    pub char_measure_instructions: u64,
    /// Full-system warm-up before the measurement window.
    pub warmup: SimTime,
    /// Measurement window length.
    pub measure: SimTime,
    /// Characterize→simulate fixed-point rounds (≥1).
    pub iterations: u32,
    /// Pass true counts through the EMON noise model.
    pub emon_noise: bool,
    /// Distinct cache lines emitted per page touch in characterization.
    pub lines_per_touch: u32,
    /// Convergence-based early exit for the fixed-point loop: once two
    /// consecutive rounds' characterization rates agree within
    /// [`SimOptions::early_exit_tolerance`], later rounds reuse the last
    /// characterization instead of re-running the cache simulation.
    ///
    /// **Off by default**: reusing a characterization changes which seeds
    /// feed the remaining rounds, so enabling this trades bit-stability of
    /// checked-in artifacts for speed. The DES rounds always run.
    pub early_exit: bool,
    /// Maximum relative difference between consecutive rounds' rates for
    /// [`SimOptions::early_exit`] to engage.
    pub early_exit_tolerance: f64,
    /// System-model tunables.
    pub system: SystemParams,
}

impl SimOptions {
    /// Fast settings for tests: one fixed-point round, short windows.
    pub fn quick() -> Self {
        Self {
            seed: 42,
            char_warmup_instructions: 500_000,
            char_measure_instructions: 300_000,
            warmup: SimTime::from_secs(1),
            measure: SimTime::from_secs(2),
            iterations: 1,
            emon_noise: false,
            lines_per_touch: 4,
            early_exit: false,
            early_exit_tolerance: 0.02,
            system: SystemParams::default(),
        }
    }

    /// Experiment-grade settings: two fixed-point rounds, longer windows
    /// and deep cache warm-up.
    pub fn standard() -> Self {
        Self {
            seed: 42,
            char_warmup_instructions: 3_000_000,
            char_measure_instructions: 2_000_000,
            warmup: SimTime::from_secs(3),
            measure: SimTime::from_secs(6),
            iterations: 2,
            emon_noise: false,
            lines_per_touch: 4,
            early_exit: false,
            early_exit_tolerance: 0.02,
            system: SystemParams::default(),
        }
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy reseeded deterministically for one `(W, P)` grid
    /// point: the new seed is a splitmix64 finalization of the base seed
    /// and the point coordinates.
    ///
    /// Every point of a sweep therefore draws from an independent,
    /// reproducible stream that depends only on the base seed and the
    /// point itself — never on how many worker threads ran the sweep or
    /// in which order the points completed. This is what makes parallel
    /// and sequential sweeps bit-identical.
    #[must_use]
    pub fn for_point(&self, warehouses: u32, processors: u32) -> Self {
        let salt = (u64::from(warehouses) << 32) | u64::from(processors);
        let mut copy = self.clone();
        copy.seed = mix64(self.seed ^ salt);
        copy
    }

    /// Returns a copy with EMON sampling noise enabled.
    #[must_use]
    pub fn with_emon_noise(mut self) -> Self {
        self.emon_noise = true;
        self
    }

    /// Returns a copy with fixed-point early exit enabled at `tolerance`
    /// relative rate agreement. See [`SimOptions::early_exit`] for the
    /// bit-stability caveat.
    #[must_use]
    pub fn with_early_exit(mut self, tolerance: f64) -> Self {
        self.early_exit = true;
        self.early_exit_tolerance = tolerance;
        self
    }
}

/// `true` when every per-space rate in `b` is within `tol` relative
/// difference of its counterpart in `a` (absolute floor `1e-9` so
/// near-zero rates compare sanely).
fn rates_converged(
    a: &odb_memsim::rates::EventRates,
    b: &odb_memsim::rates::EventRates,
    tol: f64,
) -> bool {
    fn close(x: f64, y: f64, tol: f64) -> bool {
        (x - y).abs() <= tol * x.abs().max(y.abs()).max(1e-9)
    }
    let space = |a: &odb_memsim::rates::SpaceRates, b: &odb_memsim::rates::SpaceRates| {
        close(a.tc_miss, b.tc_miss, tol)
            && close(a.l2_miss, b.l2_miss, tol)
            && close(a.l3_miss, b.l3_miss, tol)
            && close(a.l3_coherence_miss, b.l3_coherence_miss, tol)
            && close(a.l3_writeback, b.l3_writeback, tol)
            && close(a.tlb_miss, b.tlb_miss, tol)
            && close(a.branch_mispred, b.branch_mispred, tol)
            && close(a.other_stall_cpi, b.other_stall_cpi, tol)
    };
    space(&a.user, &b.user) && space(&a.os, &b.os)
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation used to
/// derive per-point seeds from `(base seed, W, P)`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// The parallel sweep runner in `odb-experiments` moves configured
// simulators and their results across worker threads; keep that property
// checked at compile time so an accidental `Rc`/`RefCell` in the
// configuration or result types fails here, next to the contract, rather
// than at the use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimOptions>();
    assert_send_sync::<OdbSimulator>();
    assert_send_sync::<RunArtifacts>();
    assert_send_sync::<Measurement>();
    assert_send_sync::<Characterization>();
};

/// Wall-clock seconds a run spent in each phase. Diagnostic only — never
/// part of [`Measurement`] or any persisted artifact, so recording it
/// cannot perturb the drift-gated results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Cache characterization (the odb-memsim trace loop).
    pub characterize: f64,
    /// Full-system discrete-event simulation (warm-up + measurement).
    pub engine: f64,
}

impl PhaseSeconds {
    /// Sums another run's phase times into this one (sweep aggregation).
    pub fn accumulate(&mut self, other: &PhaseSeconds) {
        self.characterize += other.characterize;
        self.engine += other.engine;
    }
}

/// Everything a run produced, for analyses that need more than the
/// measurement row (coherence counters, raw rates).
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The (possibly EMON-sampled) measurement row.
    pub measurement: Measurement,
    /// The same row before sampling noise.
    pub true_measurement: Measurement,
    /// The final characterization round.
    pub characterization: Characterization,
    /// The final workload estimates (converged feedback terms).
    pub estimates: WorkloadEstimates,
    /// Wall-clock spent characterizing vs simulating.
    pub phase_seconds: PhaseSeconds,
    /// Fixed-point rounds that ran the cache characterization; fewer than
    /// `iterations` when [`SimOptions::early_exit`] engaged.
    pub rounds_characterized: u32,
}

/// One-configuration simulator facade.
#[derive(Debug, Clone)]
pub struct OdbSimulator {
    config: OltpConfig,
    options: SimOptions,
}

impl OdbSimulator {
    /// Validates and captures the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::InvalidConfig`] for invalid
    /// configurations or zero `iterations`.
    pub fn new(config: OltpConfig, options: SimOptions) -> Result<Self, odb_core::Error> {
        config.system.validate()?;
        if options.iterations == 0 {
            return Err(odb_core::Error::InvalidConfig {
                field: "iterations",
                reason: "need at least one characterize/simulate round".to_owned(),
            });
        }
        if options.early_exit
            && !(options.early_exit_tolerance.is_finite() && options.early_exit_tolerance >= 0.0)
        {
            return Err(odb_core::Error::InvalidConfig {
                field: "early_exit_tolerance",
                reason: format!(
                    "must be finite and >= 0, got {}",
                    options.early_exit_tolerance
                ),
            });
        }
        Ok(Self { config, options })
    }

    /// The configuration under test.
    pub fn config(&self) -> &OltpConfig {
        &self.config
    }

    /// Runs the pipeline and returns the measurement row.
    ///
    /// # Errors
    ///
    /// Propagates substrate construction failures.
    pub fn run(&self) -> Result<Measurement, odb_core::Error> {
        Ok(self.run_detailed()?.measurement)
    }

    /// Runs the pipeline and returns all artifacts.
    ///
    /// # Errors
    ///
    /// Propagates substrate construction failures.
    pub fn run_detailed(&self) -> Result<RunArtifacts, odb_core::Error> {
        self.run_observed(Vec::new())
    }

    /// Runs the pipeline with extra [`SimObserver`]s registered on the
    /// measured (final fixed-point) round's simulation.
    ///
    /// Earlier rounds exist only to converge the characterization
    /// feedback terms, so observers see exactly the round the returned
    /// measurement describes. Observers are observation-only; registering
    /// them does not change the measurement (asserted by this module's
    /// determinism test). To read results back, keep a handle — e.g.
    /// [`crate::observe::LatencyObserver::stats`] — before boxing.
    ///
    /// # Errors
    ///
    /// Propagates substrate construction failures.
    pub fn run_observed(
        &self,
        observers: Vec<Box<dyn SimObserver>>,
    ) -> Result<RunArtifacts, odb_core::Error> {
        let o = &self.options;
        let w = self.config.workload.warehouses;
        let mut estimates = WorkloadEstimates::initial();
        let template_sampler =
            TxnSampler::with_mix(PageMap::new(w), self.options.system.txn_mix)?;
        let mut last: Option<(Measurement, Characterization)> = None;
        let mut extra = Some(observers);
        let mut sampled: Option<(SpaceCounts, SpaceCounts)> = None;
        let mut phase = PhaseSeconds::default();
        let mut rounds_characterized = 0u32;
        let mut prev_rates: Option<odb_memsim::rates::EventRates> = None;
        let mut converged: Option<Characterization> = None;

        for round in 0..o.iterations {
            let characterization = if let Some(c) = &converged {
                // Early exit engaged on an earlier round: the rates are at
                // their fixed point, so re-characterizing would reproduce
                // them (within tolerance) at full cost. Reuse.
                c.clone()
            } else {
                // Wall-clock phase accounting for stderr diagnostics only.
                // odb-analyzer: allow(ambient_nondeterminism)
                let started = std::time::Instant::now();
                let params = trace_params(&self.config, &estimates);
                let characterizer = Characterizer::new(self.config.system.clone(), params)?;
                let sampler = template_sampler.clone();
                let c = characterizer.run(
                    |_pid| OdbRefSource::with_sampler(sampler.clone(), o.lines_per_touch),
                    o.seed ^ (round as u64).wrapping_mul(0x9E37_79B9),
                    o.char_warmup_instructions,
                    o.char_measure_instructions,
                )?;
                phase.characterize += started.elapsed().as_secs_f64();
                rounds_characterized += 1;
                if o.early_exit {
                    if let Some(prev) = &prev_rates {
                        if rates_converged(prev, &c.rates, o.early_exit_tolerance) {
                            converged = Some(c.clone());
                        }
                    }
                    prev_rates = Some(c.rates);
                }
                c
            };
            // Wall-clock phase accounting for stderr diagnostics only.
            // odb-analyzer: allow(ambient_nondeterminism)
            let engine_started = std::time::Instant::now();
            let mut sim = SystemSim::new(
                self.config.clone(),
                o.system,
                characterization.rates,
                o.seed.wrapping_add(round as u64),
            )?;
            let final_round = round + 1 == o.iterations;
            if final_round {
                if let Some(observers) = extra.take() {
                    for observer in observers {
                        sim.register_observer(observer);
                    }
                }
                if o.emon_noise {
                    sim.register_observer(Box::new(EmonObserver::new(
                        MeasurementPlan::scaled(100),
                        NoiseModel::default(),
                        o.seed ^ 0xE0_40_5E_ED,
                    )));
                }
            }
            sim.run_for(o.warmup)?;
            sim.reset_stats();
            sim.run_for(o.measure)?;
            let measurement = sim.collect();
            if final_round {
                // Sample the true counts through the registered EMON
                // instrument while the simulation is still in hand; the
                // instrument's RNG was untouched during the run, so the
                // draw matches the pre-seam pipeline bit for bit.
                if let Some(emon) = sim.observer_mut::<EmonObserver>() {
                    sampled = Some((
                        emon.sample_counts(&measurement.user),
                        emon.sample_counts(&measurement.os),
                    ));
                }
            }
            phase.engine += engine_started.elapsed().as_secs_f64();
            estimates = WorkloadEstimates::from_measurement(&measurement);
            last = Some((measurement, characterization));
        }
        let Some((true_measurement, characterization)) = last else {
            return Err(odb_core::Error::corrupt(
                "engine::measure",
                "fixed-point loop produced no rounds despite iterations >= 1",
            ));
        };

        // Iron-law identity: the measured TPS and the TPS predicted from
        // utilization, P, F, IPX and CPI are the same quantity computed
        // two ways, so they must agree to numerical noise. A divergence
        // means the cycle/instruction/commit accounting has drifted apart
        // somewhere in the simulation — exactly the silent-corruption mode
        // this harness exists to catch.
        #[cfg(feature = "invariants")]
        {
            let tps = true_measurement.tps();
            let predicted = true_measurement.iron_law_tps(self.config.system.frequency_hz);
            if tps > 0.0 && predicted > 0.0 {
                let rel = (tps - predicted).abs() / predicted;
                // The counts the prediction derives from are u64-quantized
                // (SpaceCounts cycles/instructions truncate f64 products,
                // and the commit count itself lands on window boundaries),
                // so the two TPS computations agree only to roughly one
                // commit's worth at low commit counts. The tolerance is
                // therefore 1e-3 with a floor of ~2.5 commits relative —
                // still orders tighter than the 10% the cross-crate
                // iron_law_consistency test allows.
                let tol = 1e-3_f64.max(2.5 / true_measurement.transactions.max(1) as f64);
                debug_assert!(
                    rel <= tol,
                    "iron-law identity violated: measured {tps} TPS vs predicted \
                     {predicted} TPS (relative error {rel:.3e} > {tol:.3e})"
                );
            }
        }

        let measurement = if let Some((user, os)) = sampled {
            let mut noisy = true_measurement.clone();
            noisy.user = user;
            noisy.os = os;
            noisy
        } else {
            true_measurement.clone()
        };
        Ok(RunArtifacts {
            measurement,
            true_measurement,
            characterization,
            estimates,
            phase_seconds: phase,
            rounds_characterized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::{SystemConfig, WorkloadConfig};

    fn config(w: u32, c: u32, p: u32) -> OltpConfig {
        OltpConfig::new(
            WorkloadConfig::new(w, c).unwrap(),
            SystemConfig::xeon_quad().with_processors(p),
        )
        .unwrap()
    }

    #[test]
    fn quick_run_produces_consistent_measurement() {
        let sim = OdbSimulator::new(config(25, 12, 2), SimOptions::quick()).unwrap();
        let art = sim.run_detailed().unwrap();
        let m = &art.measurement;
        assert!(m.transactions > 100, "txns {}", m.transactions);
        assert!(m.cpi() > 1.0 && m.cpi() < 20.0, "cpi {}", m.cpi());
        assert!(m.ipx() > 0.8e6 && m.ipx() < 3.0e6, "ipx {}", m.ipx());
        assert!(m.cpu_utilization > 0.5);
        // Artifacts carry the characterization.
        assert!(art.characterization.instructions > 0);
        assert!(art.estimates.os_fraction > 0.0);
        assert_eq!(art.measurement, art.true_measurement, "no noise requested");
    }

    #[test]
    fn emon_noise_perturbs_counts_only() {
        let opts = SimOptions::quick().with_emon_noise();
        let sim = OdbSimulator::new(config(25, 12, 2), opts).unwrap();
        let art = sim.run_detailed().unwrap();
        assert_ne!(art.measurement.user, art.true_measurement.user);
        assert_eq!(
            art.measurement.transactions,
            art.true_measurement.transactions
        );
        // Noise is small in relative terms for these large counts.
        let rel = (art.measurement.cpi() - art.true_measurement.cpi()).abs()
            / art.true_measurement.cpi();
        assert!(rel < 0.2, "noise moved CPI by {rel}");
    }

    #[test]
    fn rejects_zero_iterations() {
        let mut opts = SimOptions::quick();
        opts.iterations = 0;
        assert!(OdbSimulator::new(config(10, 8, 1), opts).is_err());
    }

    #[test]
    fn rejects_bad_early_exit_tolerance() {
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let opts = SimOptions::quick().with_early_exit(bad);
            assert!(OdbSimulator::new(config(10, 8, 1), opts).is_err(), "{bad}");
        }
    }

    #[test]
    fn early_exit_skips_converged_characterizations() {
        let mut opts = SimOptions::quick();
        opts.iterations = 3;
        // Without early exit every round characterizes.
        let full = OdbSimulator::new(config(25, 12, 2), opts.clone())
            .unwrap()
            .run_detailed()
            .unwrap();
        assert_eq!(full.rounds_characterized, 3);
        // A generous tolerance (the coherence-miss rate swings 0.77x between
        // the seeded rounds) converges after round two; the third reuses it.
        let eager = OdbSimulator::new(config(25, 12, 2), opts.clone().with_early_exit(0.8))
            .unwrap()
            .run_detailed()
            .unwrap();
        assert_eq!(eager.rounds_characterized, 2);
        // Zero tolerance never converges (round seeds differ).
        let strict = OdbSimulator::new(config(25, 12, 2), opts.with_early_exit(0.0))
            .unwrap()
            .run_detailed()
            .unwrap();
        assert_eq!(strict.rounds_characterized, 3);
        // The reused-characterization run still produces a sane row.
        assert!(eager.measurement.transactions > 100);
    }

    #[test]
    fn phase_seconds_cover_both_phases() {
        let sim = OdbSimulator::new(config(25, 12, 2), SimOptions::quick()).unwrap();
        let art = sim.run_detailed().unwrap();
        assert!(art.phase_seconds.characterize > 0.0);
        assert!(art.phase_seconds.engine > 0.0);
        let mut sum = super::PhaseSeconds::default();
        sum.accumulate(&art.phase_seconds);
        sum.accumulate(&art.phase_seconds);
        assert!((sum.engine - 2.0 * art.phase_seconds.engine).abs() < 1e-12);
    }

    #[test]
    fn for_point_seeds_are_stable_and_distinct() {
        let base = SimOptions::quick();
        // Stable: the derivation is a pure function of (seed, W, P).
        assert_eq!(base.for_point(100, 4).seed, base.for_point(100, 4).seed);
        // Only the seed changes.
        let mut reseeded = base.for_point(100, 4);
        reseeded.seed = base.seed;
        assert_eq!(reseeded, base);
        // Distinct across points and across the (W, P) axes; 32-bit
        // packing means (W=1, P=0)-style collisions cannot happen.
        let mut seeds = std::collections::HashSet::new();
        for w in [10u32, 25, 50, 100, 200, 300, 500, 800, 1200] {
            for p in [1u32, 2, 4] {
                assert!(seeds.insert(base.for_point(w, p).seed));
            }
        }
        assert_ne!(base.for_point(2, 1).seed, base.for_point(1, 2).seed);
        // A different base seed moves every derived seed.
        assert_ne!(
            base.clone().with_seed(7).for_point(100, 4).seed,
            base.for_point(100, 4).seed
        );
    }

    #[test]
    fn observers_do_not_change_simulation_bits() {
        // The seam's core contract: a run with a latency observer
        // registered produces the bit-identical measurement of a bare run,
        // while the observer sees every commit.
        let sim = OdbSimulator::new(config(25, 12, 2), SimOptions::quick()).unwrap();
        let bare = sim.run_detailed().unwrap();
        let latency = crate::observe::LatencyObserver::new();
        let stats = latency.stats();
        let observed = sim.run_observed(vec![Box::new(latency)]).unwrap();
        assert_eq!(bare.measurement, observed.measurement);
        assert_eq!(bare.true_measurement, observed.true_measurement);
        let stats = stats.lock().unwrap();
        assert_eq!(
            stats.all().total(),
            observed.measurement.transactions,
            "one latency sample per committed transaction"
        );
        assert!(stats.all().quantile_ns(1, 2) > 0, "median latency nonzero");
    }

    #[test]
    fn determinism_across_identical_runs() {
        let sim = OdbSimulator::new(config(25, 12, 2), SimOptions::quick()).unwrap();
        let a = sim.run().unwrap();
        let b = sim.run().unwrap();
        assert_eq!(a, b);
        let sim2 = OdbSimulator::new(
            config(25, 12, 2),
            SimOptions::quick().with_seed(7),
        )
        .unwrap();
        let c = sim2.run().unwrap();
        assert_ne!(a.transactions, c.transactions);
    }
}
