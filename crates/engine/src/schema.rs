//! The ODB database layout and its page map.
//!
//! ODB "simulates an order-entry business": a collection of warehouses,
//! ten sales districts per warehouse, three thousand customers per
//! district (§3.1). Each warehouse occupies about 100 MB of tables and
//! indices; the catalog (item table) is global. This module assigns every
//! logical row range a stable page number so the buffer cache, the disk
//! array and the cache-trace generator all see one consistent address
//! space.

use serde::{Deserialize, Serialize};

/// Database block size (Oracle-typical 8 KB).
pub const PAGE_BYTES: u64 = 8 << 10;

/// Pages per warehouse: 100 MB of tables + indices.
pub const PAGES_PER_WAREHOUSE: u64 = (100 << 20) / PAGE_BYTES;

/// Districts per warehouse (§3.1).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;

/// Customers per district (§3.1).
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;

/// Catalog items (global, shared by all warehouses).
pub const ITEMS: u64 = 100_000;

/// Stock rows per warehouse (one per item).
pub const STOCK_PER_WAREHOUSE: u64 = ITEMS;

/// The tables of the ODB schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table {
    /// One row per warehouse (hot: every payment updates it).
    Warehouse,
    /// Ten rows per warehouse (hot: every new-order takes its sequence).
    District,
    /// 30,000 rows per warehouse.
    Customer,
    /// 100,000 rows per warehouse, one per catalog item.
    Stock,
    /// Global catalog, 100,000 rows.
    Item,
    /// Order headers; insert-mostly, hot tail.
    Orders,
    /// Order lines; insert-mostly, hot tail.
    OrderLine,
    /// Pending-delivery queue; small and hot.
    NewOrder,
    /// Payment history; append-only tail.
    History,
}

/// Per-warehouse page budget for each table (pages). These sum, with the
/// index budget, to [`PAGES_PER_WAREHOUSE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    /// First page of the extent, relative to the warehouse base.
    offset: u64,
    /// Number of pages in the extent.
    pages: u64,
}

// Per-warehouse layout. Row-size-derived budgets:
//   customer  30k rows × ~700 B  -> 2,625 pages
//   stock    100k rows × ~310 B  -> 3,875 pages
//   orders / order_line / history: history-window tails sized to keep the
//   per-warehouse total at 12,800 pages including ~19% index overhead.
const CUSTOMER_EXTENT: Extent = Extent {
    offset: 0,
    pages: 2_625,
};
const STOCK_EXTENT: Extent = Extent {
    offset: 2_625,
    pages: 3_875,
};
const ORDERS_EXTENT: Extent = Extent {
    offset: 6_500,
    pages: 1_200,
};
const ORDER_LINE_EXTENT: Extent = Extent {
    offset: 7_700,
    pages: 2_400,
};
const HISTORY_EXTENT: Extent = Extent {
    offset: 10_100,
    pages: 260,
};
const NEW_ORDER_EXTENT: Extent = Extent {
    offset: 10_360,
    pages: 40,
};
/// Hot single blocks: district rows share one block, the warehouse row
/// has one.
const DISTRICT_EXTENT: Extent = Extent {
    offset: 10_400,
    pages: 1,
};
const WAREHOUSE_EXTENT: Extent = Extent {
    offset: 10_401,
    pages: 1,
};
/// Per-warehouse B-tree index pages (interior + leaf levels for the
/// customer, stock, orders and order-line indices). The *interior* slice
/// of this extent is the per-warehouse hot set whose aggregate growth
/// with `W` drives the cached-region MPI slope.
const INDEX_EXTENT: Extent = Extent {
    offset: 10_402,
    pages: 2_398,
};

/// Pages in the global item table (100k rows × ~90 B plus its index:
/// ~10 MB, fully cacheable — a permanent resident of a warm SGA).
pub const ITEM_TABLE_PAGES: u64 = 1_280;

/// A stable, global page number.
pub type PageId = u64;

/// Whether a page access reads or modifies the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TouchKind {
    /// Read-only access.
    Read,
    /// Modifying access (the buffer page becomes dirty).
    Write,
}

/// The page map: logical row coordinates → global page ids.
///
/// Layout: item table first, then `W` warehouse extents of
/// [`PAGES_PER_WAREHOUSE`] each.
///
/// ```
/// use odb_engine::schema::{PageMap, Table};
///
/// let map = PageMap::new(100);
/// let p1 = map.row_page(Table::Customer, 3, 12_345);
/// let p2 = map.row_page(Table::Customer, 3, 12_345);
/// assert_eq!(p1, p2, "page map is stable");
/// assert!(map.total_pages() > 100 * 12_800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMap {
    warehouses: u32,
}

impl PageMap {
    /// A map for `warehouses` warehouses.
    ///
    /// # Panics
    ///
    /// Panics if `warehouses` is zero.
    pub fn new(warehouses: u32) -> Self {
        assert!(warehouses > 0, "at least one warehouse");
        Self { warehouses }
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> u32 {
        self.warehouses
    }

    /// Total pages in the database (item table + all warehouses).
    pub fn total_pages(&self) -> u64 {
        ITEM_TABLE_PAGES + self.warehouses as u64 * PAGES_PER_WAREHOUSE
    }

    /// Total database size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_BYTES
    }

    fn warehouse_base(&self, warehouse: u32) -> u64 {
        debug_assert!(warehouse < self.warehouses);
        ITEM_TABLE_PAGES + warehouse as u64 * PAGES_PER_WAREHOUSE
    }

    /// The per-warehouse extent of `table`; `None` for [`Table::Item`],
    /// whose pages live in the shared item table, not a warehouse extent.
    fn extent_of(table: Table) -> Option<Extent> {
        Some(match table {
            Table::Customer => CUSTOMER_EXTENT,
            Table::Stock => STOCK_EXTENT,
            Table::Orders => ORDERS_EXTENT,
            Table::OrderLine => ORDER_LINE_EXTENT,
            Table::History => HISTORY_EXTENT,
            Table::NewOrder => NEW_ORDER_EXTENT,
            Table::District => DISTRICT_EXTENT,
            Table::Warehouse => WAREHOUSE_EXTENT,
            Table::Item => return None,
        })
    }

    /// Rows per page for row-addressed tables.
    fn rows_per_page(table: Table) -> u64 {
        match table {
            Table::Customer => (CUSTOMERS_PER_DISTRICT * DISTRICTS_PER_WAREHOUSE)
                .div_ceil(CUSTOMER_EXTENT.pages),
            Table::Stock => STOCK_PER_WAREHOUSE.div_ceil(STOCK_EXTENT.pages),
            _ => 1,
        }
    }

    /// The page holding `row` of `table` in `warehouse`.
    ///
    /// For the circular insert tables (orders, order lines, history,
    /// new-order), `row` is a monotonically growing sequence number and
    /// the extent is used as a ring — the hot tail stays hot while old
    /// pages age out, exactly like a history-window table.
    ///
    /// [`Table::Item`] rows live in the shared item table, so `warehouse`
    /// is ignored for them and the call is equivalent to
    /// [`PageMap::item_page`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when `warehouse` is out of range.
    pub fn row_page(&self, table: Table, warehouse: u32, row: u64) -> PageId {
        let Some(extent) = Self::extent_of(table) else {
            return self.item_page(row);
        };
        let page_in_extent = match table {
            Table::Customer | Table::Stock => {
                (row / Self::rows_per_page(table)).min(extent.pages - 1)
            }
            // Insert rings: sequence numbers wrap around the extent.
            Table::Orders => (row / 40) % extent.pages,
            Table::OrderLine => (row / 80) % extent.pages,
            Table::History => (row / 120) % extent.pages,
            Table::NewOrder => (row / 250) % extent.pages,
            Table::District | Table::Warehouse | Table::Item => 0,
        };
        self.warehouse_base(warehouse) + extent.offset + page_in_extent
    }

    /// The page holding catalog item `item`.
    pub fn item_page(&self, item: u64) -> PageId {
        let rows_per_page = ITEMS.div_ceil(ITEM_TABLE_PAGES);
        (item % ITEMS) / rows_per_page
    }

    /// A page of the per-warehouse index extent. `slot` selects within
    /// the extent; slots near zero are interior (hot) levels.
    pub fn index_page(&self, warehouse: u32, slot: u64) -> PageId {
        self.warehouse_base(warehouse) + INDEX_EXTENT.offset + (slot % INDEX_EXTENT.pages)
    }

    /// Number of pages in the per-warehouse index extent.
    pub fn index_pages() -> u64 {
        INDEX_EXTENT.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_tile_the_warehouse_without_overlap() {
        let extents = [
            CUSTOMER_EXTENT,
            STOCK_EXTENT,
            ORDERS_EXTENT,
            ORDER_LINE_EXTENT,
            HISTORY_EXTENT,
            NEW_ORDER_EXTENT,
            DISTRICT_EXTENT,
            WAREHOUSE_EXTENT,
            INDEX_EXTENT,
        ];
        let mut covered = 0u64;
        for (i, e) in extents.iter().enumerate() {
            covered += e.pages;
            for (j, f) in extents.iter().enumerate() {
                if i != j {
                    let disjoint =
                        e.offset + e.pages <= f.offset || f.offset + f.pages <= e.offset;
                    assert!(disjoint, "extents {i} and {j} overlap");
                }
            }
        }
        assert_eq!(covered, PAGES_PER_WAREHOUSE, "extents tile 12,800 pages");
    }

    #[test]
    fn warehouse_is_100_megabytes() {
        assert_eq!(PAGES_PER_WAREHOUSE * PAGE_BYTES, 100 << 20);
        let map = PageMap::new(10);
        assert_eq!(
            map.total_bytes(),
            ITEM_TABLE_PAGES * PAGE_BYTES + 10 * (100 << 20)
        );
    }

    #[test]
    fn pages_of_different_warehouses_never_collide() {
        let map = PageMap::new(50);
        let a = map.row_page(Table::Customer, 0, 100);
        let b = map.row_page(Table::Customer, 1, 100);
        assert_ne!(a, b);
        assert_eq!(b - a, PAGES_PER_WAREHOUSE);
        // Index pages too.
        assert_ne!(map.index_page(0, 5), map.index_page(1, 5));
    }

    #[test]
    fn item_pages_are_global_and_below_warehouses() {
        let map = PageMap::new(10);
        let p = map.item_page(99_999);
        assert!(p < ITEM_TABLE_PAGES);
        let first_wh_page = map.row_page(Table::Customer, 0, 0);
        assert!(p < first_wh_page);
    }

    #[test]
    fn customers_pack_multiple_rows_per_page() {
        let map = PageMap::new(1);
        let p0 = map.row_page(Table::Customer, 0, 0);
        let p1 = map.row_page(Table::Customer, 0, 1);
        assert_eq!(p0, p1, "adjacent customers share a page");
        let plast = map.row_page(Table::Customer, 0, 29_999);
        assert!(plast > p0);
        assert!(plast - p0 < CUSTOMER_EXTENT.pages);
    }

    #[test]
    fn insert_rings_wrap() {
        let map = PageMap::new(1);
        let ring = ORDERS_EXTENT.pages * 40; // rows per full ring cycle
        let a = map.row_page(Table::Orders, 0, 7);
        let b = map.row_page(Table::Orders, 0, 7 + ring);
        assert_eq!(a, b, "ring reuses pages after wrap");
        let c = map.row_page(Table::Orders, 0, 7 + 40);
        assert_eq!(c, a + 1, "consecutive pages fill sequentially");
    }

    #[test]
    fn district_and_warehouse_rows_are_single_hot_blocks() {
        let map = PageMap::new(3);
        for w in 0..3 {
            let d = map.row_page(Table::District, w, 0);
            assert_eq!(map.row_page(Table::District, w, 9), d);
            let wh = map.row_page(Table::Warehouse, w, 0);
            assert_eq!(wh, d + 1);
        }
    }

    #[test]
    fn stock_rows_stay_inside_extent() {
        let map = PageMap::new(2);
        let base = map.row_page(Table::Stock, 1, 0);
        let last = map.row_page(Table::Stock, 1, STOCK_PER_WAREHOUSE - 1);
        assert!(last >= base);
        assert!(last - base < STOCK_EXTENT.pages);
    }

    #[test]
    #[should_panic(expected = "at least one warehouse")]
    fn zero_warehouses_panics() {
        let _ = PageMap::new(0);
    }

    mod properties {
        // With the offline proptest stub the macro body (and thus every
        // use of these imports) compiles away.
        #![allow(unused_imports)]
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every row-addressed page lands inside its warehouse's
            /// extent range, for any table, warehouse and row.
            #[test]
            fn row_pages_stay_in_warehouse(
                warehouses in 1u32..1500,
                warehouse_frac in 0.0f64..1.0,
                row in 0u64..10_000_000,
            ) {
                let map = PageMap::new(warehouses);
                let warehouse =
                    ((warehouses as f64 - 1.0) * warehouse_frac) as u32;
                for table in [
                    Table::Warehouse,
                    Table::District,
                    Table::Customer,
                    Table::Stock,
                    Table::Orders,
                    Table::OrderLine,
                    Table::NewOrder,
                    Table::History,
                ] {
                    let page = map.row_page(table, warehouse, row);
                    let base =
                        ITEM_TABLE_PAGES + warehouse as u64 * PAGES_PER_WAREHOUSE;
                    prop_assert!(
                        page >= base && page < base + PAGES_PER_WAREHOUSE,
                        "{table:?} row {row} -> page {page} outside [{}..{})",
                        base,
                        base + PAGES_PER_WAREHOUSE
                    );
                }
                let ix = map.index_page(warehouse, row);
                let base = ITEM_TABLE_PAGES + warehouse as u64 * PAGES_PER_WAREHOUSE;
                prop_assert!(ix >= base && ix < base + PAGES_PER_WAREHOUSE);
                prop_assert!(map.item_page(row) < ITEM_TABLE_PAGES);
            }

            /// The page map is a pure function: equal inputs, equal pages.
            #[test]
            fn page_map_is_deterministic(
                warehouses in 1u32..200,
                row in 0u64..1_000_000,
            ) {
                let a = PageMap::new(warehouses);
                let b = PageMap::new(warehouses);
                prop_assert_eq!(
                    a.row_page(Table::Stock, 0, row),
                    b.row_page(Table::Stock, 0, row)
                );
                prop_assert_eq!(a.total_pages(), b.total_pages());
            }
        }
    }
}
