//! Measurement-machinery benchmarks: what one experimental data point
//! costs, stage by stage.

use odb_bench::harness::bench;
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_des::SimTime;
use odb_engine::profile::{trace_params, OdbRefSource, WorkloadEstimates};
use odb_engine::schema::PageMap;
use odb_engine::system::{SystemParams, SystemSim};
use odb_engine::txn::TxnSampler;
use odb_engine::{OdbSimulator, SimOptions};
use odb_memsim::Characterizer;

fn config(w: u32, c: u32, p: u32) -> OltpConfig {
    OltpConfig::new(
        WorkloadConfig::new(w, c).expect("workload"),
        SystemConfig::xeon_quad().with_processors(p),
    )
    .expect("config")
}

fn main() {
    let cfg = config(100, 48, 4);
    let params = trace_params(&cfg, &WorkloadEstimates::initial());
    let characterizer = Characterizer::new(cfg.system.clone(), params).expect("characterizer");
    let sampler = TxnSampler::new(PageMap::new(100)).expect("sampler");

    bench("pipeline/characterize_400k_instr_4p", || {
        characterizer
            .run(
                |_| OdbRefSource::with_sampler(sampler.clone(), 4),
                42,
                200_000,
                200_000,
            )
            .expect("characterization")
    });

    let rates = characterizer
        .run(
            |_| OdbRefSource::with_sampler(sampler.clone(), 4),
            42,
            400_000,
            300_000,
        )
        .expect("characterization")
        .rates;
    bench("pipeline/system_sim_1s_100w_4p", || {
        let mut sim =
            SystemSim::new(cfg.clone(), SystemParams::default(), rates, 42).expect("sim");
        sim.run_for(SimTime::from_secs(1)).expect("run");
        sim.committed()
    });
    bench("pipeline/full_point_quick_100w_4p", || {
        OdbSimulator::new(cfg.clone(), SimOptions::quick())
            .expect("simulator")
            .run()
            .expect("run")
            .tps()
    });
}
