//! Offline stub for `serde`: trait names + derive re-exports only.
//! The workspace derives `Serialize`/`Deserialize` but never invokes a
//! serializer, so blanket no-op impls satisfy any bound that appears.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// No-op stand-in for `serde::Serialize` (type namespace only; the
/// derive macro of the same name lives in the macro namespace).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// No-op stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
