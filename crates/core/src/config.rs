//! The OLTP configuration space of the paper (§3.2).
//!
//! The paper reduces the configuration space to four parameters: warehouses
//! (`W`) and clients (`C`) describe the *workload*; processors (`P`) and
//! disks (`D`) describe the *system*. [`SystemConfig`] additionally carries
//! the microarchitectural attributes (§3.3) that the scaling analysis in
//! §6.3 varies: cache geometry, bus bandwidth and memory capacity.

use crate::error::Error;
use serde::{Deserialize, Serialize};

/// Geometry of one set-associative cache level.
///
/// ```
/// use odb_core::config::CacheGeometry;
///
/// let l3 = CacheGeometry::new(1 << 20, 64, 8)?;
/// assert_eq!(l3.sets(), 2048);
/// assert_eq!(l3.lines(), 16384);
/// # Ok::<(), odb_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    associativity: u32,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any dimension is zero, the line
    /// size is not a power of two, or if `size / (line × assoc)` is not a
    /// whole power of two (the number of sets, which must support simple
    /// bit-mask indexing). Note the total size itself need not be a power
    /// of two: Itanium2's 3 MB 12-way L3 has 2048 sets and is valid.
    pub fn new(size_bytes: u64, line_bytes: u32, associativity: u32) -> Result<Self, Error> {
        fn pow2_u64(v: u64) -> bool {
            v != 0 && v & (v - 1) == 0
        }
        if size_bytes == 0 {
            return Err(Error::InvalidConfig {
                field: "size_bytes",
                reason: "must be nonzero".to_owned(),
            });
        }
        if !pow2_u64(line_bytes as u64) {
            return Err(Error::InvalidConfig {
                field: "line_bytes",
                reason: format!("{line_bytes} must be a nonzero power of two"),
            });
        }
        if associativity == 0 {
            return Err(Error::InvalidConfig {
                field: "associativity",
                reason: "must be nonzero".to_owned(),
            });
        }
        let way_bytes = line_bytes as u64 * associativity as u64;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(Error::InvalidConfig {
                field: "size_bytes",
                reason: format!("{size_bytes} is not divisible by line×assoc = {way_bytes}"),
            });
        }
        let sets = size_bytes / way_bytes;
        if !pow2_u64(sets) {
            return Err(Error::InvalidConfig {
                field: "size_bytes",
                reason: format!("implied set count {sets} is not a power of two"),
            });
        }
        Ok(Self {
            size_bytes,
            line_bytes,
            associativity,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.associativity as u64)
    }

    /// Total number of cache lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }
}

/// Front-side-bus attributes used by the IOQ latency model (§5.2, Fig 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Unloaded time, in CPU cycles, for one bus transaction to complete
    /// once it enters the in-order queue (IOQ). The paper measures 102
    /// cycles on the 1P Xeon configuration (Table 3).
    pub base_transaction_cycles: f64,
    /// Cycles the shared bus is *occupied* by one transaction (data phase);
    /// this, times the transaction rate, is the bus utilization of §5.2.
    pub occupancy_cycles: f64,
}

impl BusConfig {
    /// Validates the bus parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either field is non-positive or
    /// non-finite, or if the occupancy exceeds the unloaded latency.
    pub fn validate(&self) -> Result<(), Error> {
        for (field, v) in [
            ("base_transaction_cycles", self.base_transaction_cycles),
            ("occupancy_cycles", self.occupancy_cycles),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(Error::InvalidConfig {
                    field,
                    reason: format!("{v} must be finite and positive"),
                });
            }
        }
        if self.occupancy_cycles > self.base_transaction_cycles {
            return Err(Error::InvalidConfig {
                field: "occupancy_cycles",
                reason: "occupancy cannot exceed the unloaded transaction time".to_owned(),
            });
        }
        Ok(())
    }
}

/// Disk-array attributes (§3.3: 26 Ultra320 drives on the Xeon machine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskArrayConfig {
    /// Number of spindles the database is striped over.
    pub disks: u32,
    /// Mean per-request service time of one spindle, in milliseconds
    /// (seek + rotation + transfer for an 8 KB block).
    pub service_time_ms: f64,
}

impl DiskArrayConfig {
    /// Maximum sustainable random-I/O throughput of the array, in requests
    /// per second: `disks / service_time`.
    pub fn max_iops(&self) -> f64 {
        self.disks as f64 * 1000.0 / self.service_time_ms
    }

    /// Validates the disk parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `disks` is zero or the service
    /// time is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), Error> {
        if self.disks == 0 {
            return Err(Error::InvalidConfig {
                field: "disks",
                reason: "must be nonzero".to_owned(),
            });
        }
        if !self.service_time_ms.is_finite() || self.service_time_ms <= 0.0 {
            return Err(Error::InvalidConfig {
                field: "service_time_ms",
                reason: format!("{} must be finite and positive", self.service_time_ms),
            });
        }
        Ok(())
    }
}

/// The system half of the configuration space: processors, frequency,
/// memory hierarchy, bus and disks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of processors (`P`); the paper studies 1, 2 and 4.
    pub processors: u32,
    /// Core clock frequency `F`, in Hz.
    pub frequency_hz: f64,
    /// First-level instruction store (the Xeon's execution trace cache),
    /// modelled as a small code cache.
    pub trace_cache: CacheGeometry,
    /// Unified second-level cache (256 KB on the Xeon MP).
    pub l2: CacheGeometry,
    /// Unified third-level cache (1 MB on the Xeon MP, 3 MB on Itanium2).
    pub l3: CacheGeometry,
    /// Number of data-TLB entries (4 KB pages).
    pub tlb_entries: u32,
    /// Front-side bus parameters.
    pub bus: BusConfig,
    /// Physical memory capacity in bytes (4 GB on the Xeon machine).
    pub memory_bytes: u64,
    /// Bytes of memory devoted to the database buffer cache within the SGA
    /// (2.8 GB in the paper's setup).
    pub buffer_cache_bytes: u64,
    /// Disk array attached to the machine.
    pub disk_array: DiskArrayConfig,
    /// Relative size of in-memory control structures and code versus the
    /// IA-32 baseline. LP64 architectures (Itanium2) roughly double
    /// pointer-heavy structures and EPIC code is markedly less dense, so
    /// the §6.3 machine carries `2.0` here; the Xeon baseline is `1.0`.
    pub structure_scale: f64,
}

impl SystemConfig {
    /// Builds a geometry from compile-time constants known to satisfy
    /// [`CacheGeometry::new`]'s rules; validity is asserted in debug
    /// builds instead of unwrapped at runtime, keeping the preset
    /// constructors panic-free.
    fn static_geometry(size_bytes: u64, line_bytes: u32, associativity: u32) -> CacheGeometry {
        debug_assert!(
            CacheGeometry::new(size_bytes, line_bytes, associativity).is_ok(),
            "preset cache geometry must be valid"
        );
        CacheGeometry {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    /// The paper's primary machine: a 4-way 1.6 GHz Intel Xeon MP with
    /// 256 KB L2, 1 MB L3, 4 GB of memory, a 2.8 GB database buffer cache
    /// and 26 Ultra320 disks (§3.3).
    pub fn xeon_quad() -> Self {
        Self {
            processors: 4,
            frequency_hz: 1.6e9,
            // The 12k-uop trace cache stores decoded traces; its effective
            // x86 code coverage is nearer 32 KB than its raw uop budget.
            trace_cache: Self::static_geometry(32 << 10, 64, 8),
            l2: Self::static_geometry(256 << 10, 64, 8),
            l3: Self::static_geometry(1 << 20, 64, 8),
            tlb_entries: 64,
            bus: BusConfig {
                base_transaction_cycles: 102.0,
                occupancy_cycles: 52.0,
            },
            memory_bytes: 4 << 30,
            buffer_cache_bytes: (28 << 30) / 10, // 2.8 GB
            disk_array: DiskArrayConfig {
                disks: 26,
                service_time_ms: 7.0,
            },
            structure_scale: 1.0,
        }
    }

    /// The validation machine of §6.3: a quad Itanium2 with a 3 MB L3,
    /// roughly 50% more bus bandwidth, 16 GB of memory and 34 disks.
    ///
    /// The paper reports this configuration flattens both the cached region
    /// (larger L3) and the scaled region (more bus and disk bandwidth),
    /// leaving the CPI pivot near 118 warehouses.
    pub fn itanium2_quad() -> Self {
        let xeon = Self::xeon_quad();
        Self {
            processors: 4,
            frequency_hz: 1.5e9,
            trace_cache: Self::static_geometry(32 << 10, 64, 8),
            l2: Self::static_geometry(256 << 10, 128, 8),
            // Itanium2's 3 MB L3 is 12-way with 128 B lines: 2048 sets.
            l3: Self::static_geometry(3 << 20, 128, 12),
            tlb_entries: 128,
            bus: BusConfig {
                base_transaction_cycles: 95.0,
                occupancy_cycles: xeon.bus.occupancy_cycles / 1.5,
            },
            memory_bytes: 16 << 30,
            buffer_cache_bytes: 12 << 30,
            disk_array: DiskArrayConfig {
                disks: 34,
                service_time_ms: 6.0,
            },
            structure_scale: 2.0,
        }
    }

    /// Returns a copy with a different processor count, used to sweep `P`.
    ///
    /// ```
    /// use odb_core::config::SystemConfig;
    ///
    /// let two_way = SystemConfig::xeon_quad().with_processors(2);
    /// assert_eq!(two_way.processors, 2);
    /// ```
    #[must_use]
    pub fn with_processors(mut self, processors: u32) -> Self {
        self.processors = processors;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), Error> {
        if self.processors == 0 {
            return Err(Error::InvalidConfig {
                field: "processors",
                reason: "must be nonzero".to_owned(),
            });
        }
        if !self.frequency_hz.is_finite() || self.frequency_hz <= 0.0 {
            return Err(Error::InvalidConfig {
                field: "frequency_hz",
                reason: format!("{} must be finite and positive", self.frequency_hz),
            });
        }
        if self.tlb_entries == 0 {
            return Err(Error::InvalidConfig {
                field: "tlb_entries",
                reason: "must be nonzero".to_owned(),
            });
        }
        self.bus.validate()?;
        self.disk_array.validate()?;
        if self.buffer_cache_bytes == 0 {
            return Err(Error::InvalidConfig {
                field: "buffer_cache_bytes",
                reason: "must be nonzero".to_owned(),
            });
        }
        if self.buffer_cache_bytes >= self.memory_bytes {
            return Err(Error::InvalidConfig {
                field: "buffer_cache_bytes",
                reason: format!(
                    "buffer cache ({}) must leave room below physical memory ({})",
                    self.buffer_cache_bytes, self.memory_bytes
                ),
            });
        }
        if !self.structure_scale.is_finite() || self.structure_scale <= 0.0 {
            return Err(Error::InvalidConfig {
                field: "structure_scale",
                reason: format!("{} must be finite and positive", self.structure_scale),
            });
        }
        if self.l2.size_bytes() > self.l3.size_bytes() {
            return Err(Error::InvalidConfig {
                field: "l2",
                reason: "L2 must not exceed L3 capacity".to_owned(),
            });
        }
        Ok(())
    }
}

/// The workload half of the configuration space: warehouses and clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of warehouses (`W`); the cached↔scaled knob (§3.2.1).
    pub warehouses: u32,
    /// Number of concurrent database clients (`C`).
    pub clients: u32,
}

impl WorkloadConfig {
    /// Creates a workload configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either count is zero.
    pub fn new(warehouses: u32, clients: u32) -> Result<Self, Error> {
        if warehouses == 0 {
            return Err(Error::InvalidConfig {
                field: "warehouses",
                reason: "must be nonzero".to_owned(),
            });
        }
        if clients == 0 {
            return Err(Error::InvalidConfig {
                field: "clients",
                reason: "must be nonzero".to_owned(),
            });
        }
        Ok(Self {
            warehouses,
            clients,
        })
    }
}

/// A complete OLTP configuration: the `(W, C, P, D)` tuple of §3.2 plus the
/// machine's microarchitectural attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OltpConfig {
    /// Workload parameters (`W`, `C`).
    pub workload: WorkloadConfig,
    /// System parameters (`P`, `D`, caches, bus, memory).
    pub system: SystemConfig,
}

impl OltpConfig {
    /// Creates and validates a complete configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any field fails validation.
    pub fn new(workload: WorkloadConfig, system: SystemConfig) -> Result<Self, Error> {
        system.validate()?;
        Ok(Self { workload, system })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry_derives_sets_and_lines() {
        let g = CacheGeometry::new(256 << 10, 64, 8).unwrap();
        assert_eq!(g.sets(), 512);
        assert_eq!(g.lines(), 4096);
        assert_eq!(g.size_bytes(), 256 << 10);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.associativity(), 8);
    }

    #[test]
    fn cache_geometry_rejects_bad_dimensions() {
        assert!(CacheGeometry::new(0, 64, 8).is_err());
        assert!(CacheGeometry::new(1 << 20, 48, 8).is_err());
        assert!(CacheGeometry::new(1 << 20, 64, 0).is_err());
        // 1 MB / (64 B × 3 ways) is not a whole number of sets.
        assert!(CacheGeometry::new(1 << 20, 64, 3).is_err());
        // 192 KB / (64 B × 3 ways) = 1024 sets: divisible, pow2, valid.
        assert!(CacheGeometry::new(192 << 10, 64, 3).is_ok());
        // 3 MB 12-way with 128 B lines = 2048 sets (the Itanium2 L3).
        let ita = CacheGeometry::new(3 << 20, 128, 12).unwrap();
        assert_eq!(ita.sets(), 2048);
        // 3 MB direct-mapped would need 49152 sets... which IS pow2? No:
        // 3 MB / 64 B = 49152 = 3 × 2^14, not a power of two.
        assert!(CacheGeometry::new(3 << 20, 64, 1).is_err());
    }

    #[test]
    fn xeon_preset_matches_paper() {
        let s = SystemConfig::xeon_quad();
        s.validate().unwrap();
        assert_eq!(s.processors, 4);
        assert_eq!(s.frequency_hz, 1.6e9);
        assert_eq!(s.l2.size_bytes(), 256 << 10);
        assert_eq!(s.l3.size_bytes(), 1 << 20);
        assert_eq!(s.bus.base_transaction_cycles, 102.0);
        assert_eq!(s.disk_array.disks, 26);
        assert_eq!(s.memory_bytes, 4 << 30);
        // 2.8 GB buffer cache, within 1% of the paper's figure.
        let gb = s.buffer_cache_bytes as f64 / (1u64 << 30) as f64;
        assert!((gb - 2.8).abs() < 0.01, "buffer cache {gb} GB");
    }

    #[test]
    fn itanium_preset_is_larger_where_it_matters() {
        let xeon = SystemConfig::xeon_quad();
        let ita = SystemConfig::itanium2_quad();
        ita.validate().unwrap();
        assert!(ita.l3.size_bytes() > xeon.l3.size_bytes());
        assert!(ita.disk_array.disks > xeon.disk_array.disks);
        assert!(ita.memory_bytes > xeon.memory_bytes);
        // 50% more bus bandwidth == occupancy shrunk by 1.5x.
        assert!(ita.bus.occupancy_cycles < xeon.bus.occupancy_cycles);
    }

    #[test]
    fn with_processors_sweeps_p() {
        for p in [1, 2, 4] {
            let s = SystemConfig::xeon_quad().with_processors(p);
            assert_eq!(s.processors, p);
            s.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_zero_processors() {
        let s = SystemConfig::xeon_quad().with_processors(0);
        assert!(matches!(
            s.validate(),
            Err(Error::InvalidConfig {
                field: "processors",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_buffer_cache_at_or_above_memory() {
        let mut s = SystemConfig::xeon_quad();
        s.buffer_cache_bytes = s.memory_bytes;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_l2_bigger_than_l3() {
        let mut s = SystemConfig::xeon_quad();
        s.l2 = CacheGeometry::new(2 << 20, 64, 8).unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn bus_validate_rejects_occupancy_above_base() {
        let b = BusConfig {
            base_transaction_cycles: 50.0,
            occupancy_cycles: 60.0,
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn disk_array_max_iops() {
        let d = DiskArrayConfig {
            disks: 26,
            service_time_ms: 8.0,
        };
        assert!((d.max_iops() - 3250.0).abs() < 1e-9);
    }

    #[test]
    fn workload_config_rejects_zeroes() {
        assert!(WorkloadConfig::new(0, 8).is_err());
        assert!(WorkloadConfig::new(10, 0).is_err());
        let w = WorkloadConfig::new(10, 8).unwrap();
        assert_eq!(w.warehouses, 10);
        assert_eq!(w.clients, 8);
    }

    #[test]
    fn oltp_config_validates_system() {
        let w = WorkloadConfig::new(100, 48).unwrap();
        let bad = SystemConfig::xeon_quad().with_processors(0);
        assert!(OltpConfig::new(w, bad).is_err());
        let ok = OltpConfig::new(w, SystemConfig::xeon_quad()).unwrap();
        assert_eq!(ok.workload.warehouses, 100);
    }
}
