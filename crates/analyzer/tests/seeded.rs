//! End-to-end tests: build a miniature workspace in a temp directory,
//! seed one violation per lint class, and check the gate trips — plus a
//! clean tree that must pass. This is the executable form of the
//! acceptance criterion "exits non-zero on a seeded violation of each
//! lint class and zero on the shipped tree".

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use odb_analyzer::report::Lint;

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A throwaway workspace root, removed on drop.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let root = std::env::temp_dir().join(format!(
            "odb-analyzer-test-{}-{}-{tag}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&root).expect("create temp root");
        TempTree { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(path, content).expect("write file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn crate_manifest(name: &str) -> String {
    format!("[package]\nname = \"odb-{name}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n")
}

/// A minimal clean workspace: the audited crates exist with panic-free
/// libraries, plus a zeroed baseline.
fn clean_tree(tag: &str) -> TempTree {
    let t = TempTree::new(tag);
    t.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n",
    );
    for name in ["core", "des", "engine", "memsim"] {
        t.write(&format!("crates/{name}/Cargo.toml"), &crate_manifest(name));
        t.write(
            &format!("crates/{name}/src/lib.rs"),
            "//! Minimal.\npub fn touch() -> u32 { 1 }\n",
        );
    }
    t.write(
        "crates/analyzer/baseline.toml",
        "[panic_sites]\ncore = 0\ndes = 0\nengine = 0\nmemsim = 0\n",
    );
    t
}

fn lints_fired(root: &Path) -> Vec<Lint> {
    let analysis = odb_analyzer::analyze(root).expect("analysis runs");
    analysis.violations.iter().map(|v| v.lint).collect()
}

#[test]
fn clean_tree_passes() {
    let t = clean_tree("clean");
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn seeded_panic_in_lib_trips_baseline() {
    let t = clean_tree("panic");
    t.write(
        "crates/core/src/lib.rs",
        "//! Doc.\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::PanicBaseline), "fired: {fired:?}");
}

#[test]
fn test_code_and_allow_marker_do_not_trip() {
    let t = clean_tree("panic-ok");
    t.write(
        "crates/core/src/lib.rs",
        "//! Doc.\n\
         // analyzer:allow(panic) — contract documented here\n\
         pub fn checked(v: Option<u32>) -> u32 { v.expect(\"always set\") }\n\
         #[cfg(test)]\n\
         mod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    );
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn seeded_unsorted_acquire_trips_lock_order() {
    let t = clean_tree("lock");
    t.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\npub fn grab(locks: &mut M, pid: u32, tgt: T) { locks.acquire(pid, tgt); }\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::LockOrder), "fired: {fired:?}");

    // The same call site below a canonical_order sort is fine.
    let t2 = clean_tree("lock-ok");
    t2.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\npub fn grab(locks: &mut M, pid: u32, mut ts: Vec<T>) {\n\
         \x20   ts.sort_by_key(canonical_order);\n\
         \x20   for t in ts { locks.acquire(pid, t); }\n}\n",
    );
    let analysis = odb_analyzer::analyze(&t2.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn seeded_raw_time_arithmetic_trips() {
    let t = clean_tree("rawtime");
    t.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\npub fn later(s: f64) -> SimTime { SimTime::from_secs_f64(s * 2.0) }\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::RawTime), "fired: {fired:?}");

    // ...as does an ad-hoc float→u64 cast into a constructor.
    let t2 = clean_tree("rawtime-cast");
    t2.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\npub fn later(ns: f64) -> SimTime { SimTime::from_nanos(ns as u64) }\n",
    );
    let fired2 = lints_fired(&t2.root);
    assert!(fired2.contains(&Lint::RawTime), "fired: {fired2:?}");

    // ...but the same text inside des/src/time.rs is the one home.
    let t3 = clean_tree("rawtime-home");
    t3.write(
        "crates/des/src/time.rs",
        "//! Time.\npub fn conv(ns: f64) -> u64 { ns as u64 }\n\
         pub fn mk(s: f64) -> SimTime { SimTime::from_secs_f64(s) }\n",
    );
    t3.write(
        "crates/des/src/lib.rs",
        "//! Minimal.\npub mod time;\npub fn touch() -> u32 { 1 }\n",
    );
    let analysis = odb_analyzer::analyze(&t3.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn seeded_feature_gated_emit_trips_observer_seam() {
    let t = clean_tree("seam");
    t.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\n\
         #[cfg(feature = \"invariants\")]\n\
         pub fn gated(hub: &mut H, now: T, e: &E) {\n\
         \x20   hub.emit(now, e);\n}\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::ObserverSeam), "fired: {fired:?}");

    // The same emission outside the cfg block is the intended shape, and
    // feature-gating the *registration* is explicitly fine.
    let t2 = clean_tree("seam-ok");
    t2.write(
        "crates/engine/src/lib.rs",
        "//! Doc.\n\
         pub fn open(hub: &mut H, now: T, e: &E) { hub.emit(now, e); }\n\
         pub fn build(hub: &mut H) {\n\
         \x20   #[cfg(feature = \"invariants\")]\n\
         \x20   hub.register(Box::new(Checker::default()));\n}\n",
    );
    let analysis = odb_analyzer::analyze(&t2.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn seeded_stray_file_trips() {
    let t = clean_tree("stray");
    t.write("crates/engine/Cargo.toml.tmp", "[package]\n");
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::StrayFile), "fired: {fired:?}");
}

#[test]
fn seeded_orphan_module_trips() {
    let t = clean_tree("orphan");
    // A module file with no `mod lost;` declaration anywhere.
    t.write(
        "crates/core/src/lost.rs",
        "//! Unreachable.\npub fn nobody_calls() {}\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::StrayFile), "fired: {fired:?}");

    // Declaring it rescues it — both foo.rs and foo/mod.rs styles.
    let t2 = clean_tree("orphan-ok");
    t2.write(
        "crates/core/src/lib.rs",
        "//! Minimal.\npub mod found;\npub fn touch() -> u32 { 1 }\n",
    );
    t2.write(
        "crates/core/src/found.rs",
        "//! Reachable.\npub mod nested;\n",
    );
    t2.write(
        "crates/core/src/found/nested/mod.rs",
        "//! Reachable too.\npub fn f() {}\n",
    );
    let analysis = odb_analyzer::analyze(&t2.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn missing_baseline_with_sites_trips() {
    let t = clean_tree("nobase");
    fs::remove_file(t.root.join("crates/analyzer/baseline.toml")).expect("remove baseline");
    t.write(
        "crates/core/src/lib.rs",
        "//! Doc.\npub fn bad() { panic!(\"boom\") }\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::PanicBaseline), "fired: {fired:?}");
}

#[test]
fn seeded_hot_path_allocation_trips() {
    let t = clean_tree("hotalloc");
    t.write(
        "crates/memsim/src/lib.rs",
        "//! Minimal.\npub mod trace;\npub fn touch() -> u32 { 1 }\n",
    );
    t.write(
        "crates/memsim/src/trace.rs",
        "//! Doc.\npub fn run_chunk(hs: &mut [H]) {\n\
         \x20   let refs: Vec<&mut H> = hs.iter_mut().collect();\n\
         \x20   drop(refs);\n}\n",
    );
    let fired = lints_fired(&t.root);
    assert!(fired.contains(&Lint::HotPathAlloc), "fired: {fired:?}");

    // The same allocation outside an audited function is fine, as is an
    // audited function exempted by the allowlist file.
    let t2 = clean_tree("hotalloc-ok");
    t2.write(
        "crates/memsim/src/lib.rs",
        "//! Minimal.\npub mod trace;\npub fn touch() -> u32 { 1 }\n",
    );
    t2.write(
        "crates/memsim/src/trace.rs",
        "//! Doc.\npub fn setup(hs: &mut [H]) -> Vec<&mut H> {\n\
         \x20   hs.iter_mut().collect()\n}\n\
         pub fn run_chunk(hs: &mut [H]) {\n\
         \x20   let refs: Vec<&mut H> = hs.iter_mut().collect();\n\
         \x20   drop(refs);\n}\n",
    );
    t2.write(
        "crates/analyzer/hot_path_allow.txt",
        "# deliberate: exercised by the seeded test\n\
         crates/memsim/src/trace.rs:run_chunk # reason\n",
    );
    let analysis = odb_analyzer::analyze(&t2.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );

    // The line escape works without an allowlist entry.
    let t3 = clean_tree("hotalloc-escape");
    t3.write(
        "crates/memsim/src/lib.rs",
        "//! Minimal.\npub mod trace;\npub fn touch() -> u32 { 1 }\n",
    );
    t3.write(
        "crates/memsim/src/trace.rs",
        "//! Doc.\npub fn run_chunk(hs: &mut [H]) {\n\
         \x20   // analyzer:allow(hot_path_alloc) — justified\n\
         \x20   let refs: Vec<&mut H> = hs.iter_mut().collect();\n\
         \x20   drop(refs);\n}\n",
    );
    let analysis = odb_analyzer::analyze(&t3.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean, got: {:?}",
        analysis.violations
    );
}

#[test]
fn update_baseline_then_clean() {
    let t = clean_tree("update");
    fs::remove_file(t.root.join("crates/analyzer/baseline.toml")).expect("remove baseline");
    t.write(
        "crates/core/src/lib.rs",
        "//! Doc.\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let counts = odb_analyzer::update_baseline(&t.root).expect("baseline written");
    assert!(counts
        .iter()
        .any(|(s, k, c)| s == "panic_sites" && k == "core" && *c == 1));
    let analysis = odb_analyzer::analyze(&t.root).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "expected clean after update, got: {:?}",
        analysis.violations
    );
}

/// Smoke-test the actual binary when cargo provides its path (skipped
/// under bare-rustc test builds).
#[test]
fn binary_exit_codes() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_odb-analyzer") else {
        return;
    };
    let t = clean_tree("bin-clean");
    let ok = std::process::Command::new(bin)
        .args(["--root"])
        .arg(&t.root)
        .output()
        .expect("run analyzer binary");
    assert!(
        ok.status.success(),
        "clean tree should exit 0; stdout: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    let t2 = clean_tree("bin-dirty");
    t2.write("junk.tmp", "scratch\n");
    let bad = std::process::Command::new(bin)
        .args(["--root"])
        .arg(&t2.root)
        .output()
        .expect("run analyzer binary");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "stray file should exit 1; stdout: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
}
