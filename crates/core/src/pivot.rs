//! Two-segment piecewise-linear fitting and the **pivot point** (§6.1–6.2).
//!
//! The paper models CPI and MPI trends as two linear regions — a steep
//! *cached* region and a flatter *scaled* region — fitted independently by
//! least squares. The intersection of the two lines is the *pivot point*:
//! the workload size at which execution stops behaving like a cached setup
//! and starts behaving like a scaled one. Configurations larger than the
//! pivot are representative of fully scaled setups (Figs 17–18, Table 5).

use crate::error::Error;
use crate::regression::LinearFit;
use serde::{Deserialize, Serialize};

/// The intersection of the cached-region and scaled-region lines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PivotPoint {
    /// Workload size (warehouses) at the transition.
    pub x: f64,
    /// Metric value (CPI or MPI) at the transition.
    pub y: f64,
}

/// A two-segment piecewise-linear model of a scaling trend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoSegmentFit {
    /// Fit over the cached (left) region.
    pub cached: LinearFit,
    /// Fit over the scaled (right) region.
    pub scaled: LinearFit,
    /// Index of the first point assigned to the scaled region.
    pub split_index: usize,
    /// Midpoint between the last cached `x` and the first scaled `x`; used
    /// as the region boundary when the lines do not intersect inside the
    /// data range.
    pub boundary_x: f64,
}

impl TwoSegmentFit {
    /// Minimum points per segment (a line needs two).
    pub const MIN_SEGMENT: usize = 2;

    /// Fits two linear segments to `(xs, ys)`, choosing the split that
    /// minimizes the total sum of squared residuals.
    ///
    /// `xs` must be strictly increasing (warehouse counts are), and at
    /// least four points are required so each segment has two.
    ///
    /// # Errors
    ///
    /// * [`Error::TooFewPoints`] with `needed = 4` for short inputs.
    /// * [`Error::UnsortedXs`] if `xs` is not strictly increasing.
    /// * Any error from the underlying [`LinearFit::fit`].
    ///
    /// ```
    /// use odb_core::pivot::TwoSegmentFit;
    ///
    /// // Steep then flat, knee at x = 100.
    /// let xs = [10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];
    /// let ys = [1.3, 1.9, 2.9, 4.9, 5.3, 5.7, 6.5];
    /// let fit = TwoSegmentFit::fit(&xs, &ys)?;
    /// assert!(fit.cached.slope > fit.scaled.slope);
    /// let p = fit.pivot().expect("lines cross");
    /// assert!(p.x > 50.0 && p.x < 250.0);
    /// # Ok::<(), odb_core::Error>(())
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, Error> {
        if xs.len() != ys.len() {
            return Err(Error::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        if xs.len() < 2 * Self::MIN_SEGMENT {
            return Err(Error::TooFewPoints {
                needed: 2 * Self::MIN_SEGMENT,
                got: xs.len(),
            });
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::UnsortedXs);
        }
        let candidate_at = |split: usize| -> Result<(f64, Self), Error> {
            let cached = LinearFit::fit(&xs[..split], &ys[..split])?;
            let scaled = LinearFit::fit(&xs[split..], &ys[split..])?;
            let total_sse = cached.sse + scaled.sse;
            Ok((
                total_sse,
                Self {
                    cached,
                    scaled,
                    split_index: split,
                    boundary_x: 0.5 * (xs[split - 1] + xs[split]),
                },
            ))
        };
        // n >= 2 × MIN_SEGMENT guarantees the split range is non-empty, so
        // seed with the first split and scan the rest — no Option needed.
        let mut best = candidate_at(Self::MIN_SEGMENT)?;
        for split in (Self::MIN_SEGMENT + 1)..=(xs.len() - Self::MIN_SEGMENT) {
            let candidate = candidate_at(split)?;
            if candidate.0 < best.0 {
                best = candidate;
            }
        }
        Ok(best.1)
    }

    /// The pivot point — the intersection of the two fitted lines — or
    /// `None` when the lines are parallel.
    ///
    /// The paper reads the pivot off the intersection even when it falls
    /// slightly outside the split gap (Table 5's CPI pivots differ from
    /// the MPI pivots this way), so no range clamping is applied here; use
    /// [`TwoSegmentFit::boundary_x`] for a data-bounded transition.
    pub fn pivot(&self) -> Option<PivotPoint> {
        let x = self.cached.intersection_x(&self.scaled)?;
        Some(PivotPoint {
            x,
            y: self.cached.predict(x),
        })
    }

    /// The transition `x` used for prediction: the pivot when the lines
    /// intersect, otherwise the data-derived boundary.
    pub fn transition_x(&self) -> f64 {
        self.pivot().map_or(self.boundary_x, |p| p.x)
    }

    /// Evaluates the piecewise model: the cached line left of the
    /// transition, the scaled line at or right of it.
    pub fn predict(&self, x: f64) -> f64 {
        if x < self.transition_x() {
            self.cached.predict(x)
        } else {
            self.scaled.predict(x)
        }
    }

    /// Total sum of squared residuals over both segments.
    pub fn sse(&self) -> f64 {
        self.cached.sse + self.scaled.sse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Paper-shaped CPI data: steep to ~100 W, then gentle (Fig 17).
    fn paper_like() -> (Vec<f64>, Vec<f64>) {
        let xs = vec![10.0, 25.0, 50.0, 100.0, 200.0, 300.0, 500.0, 800.0];
        let ys = xs
            .iter()
            .map(|&x| {
                if x <= 100.0 {
                    1.0 + 0.04 * x // steep cached region
                } else {
                    4.6 + 0.004 * x // gentle scaled region
                }
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn recovers_knee_on_paper_shaped_data() {
        let (xs, ys) = paper_like();
        let f = TwoSegmentFit::fit(&xs, &ys).unwrap();
        // The 100 W point lies exactly on both lines, so splits at index 3
        // and 4 tie at zero SSE; either region assignment is valid.
        assert!(
            f.split_index == 3 || f.split_index == 4,
            "split at {}",
            f.split_index
        );
        assert!((f.cached.slope - 0.04).abs() < 1e-9);
        assert!((f.scaled.slope - 0.004).abs() < 1e-9);
        let p = f.pivot().unwrap();
        // 1 + 0.04x = 4.6 + 0.004x  =>  x = 100
        assert!((p.x - 100.0).abs() < 1e-6, "pivot at {}", p.x);
        assert!((p.y - 5.0).abs() < 1e-6);
    }

    #[test]
    fn predict_uses_correct_segment() {
        let (xs, ys) = paper_like();
        let f = TwoSegmentFit::fit(&xs, &ys).unwrap();
        assert!((f.predict(50.0) - 3.0).abs() < 1e-9);
        assert!((f.predict(500.0) - 6.6).abs() < 1e-9);
        // Extrapolation beyond the data keeps the scaled line (§6.2).
        assert!((f.predict(2000.0) - (4.6 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            TwoSegmentFit::fit(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]),
            Err(Error::TooFewPoints { needed: 4, .. })
        ));
        assert!(matches!(
            TwoSegmentFit::fit(&[1.0, 3.0, 2.0, 4.0], &[1.0; 4]),
            Err(Error::UnsortedXs)
        ));
        assert!(matches!(
            TwoSegmentFit::fit(&[1.0, 2.0, 2.0, 4.0], &[1.0; 4]),
            Err(Error::UnsortedXs)
        ));
        assert!(matches!(
            TwoSegmentFit::fit(&[1.0, 2.0, 3.0, 4.0], &[1.0; 3]),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn parallel_segments_have_no_pivot_but_a_boundary() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0]; // one perfect line: both fits identical
        let f = TwoSegmentFit::fit(&xs, &ys).unwrap();
        assert!(f.pivot().is_none());
        let b = f.transition_x();
        assert!(b > 1.0 && b < 4.0);
        // Prediction still works and matches the single line.
        assert!((f.predict(2.5) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn sse_is_sum_of_segments() {
        let (xs, ys) = paper_like();
        let f = TwoSegmentFit::fit(&xs, &ys).unwrap();
        assert!((f.sse() - (f.cached.sse + f.scaled.sse)).abs() < 1e-15);
        assert!(f.sse() < 1e-12, "noiseless data fits exactly");
    }

    proptest! {
        /// The chosen split's SSE is no worse than any other valid split.
        #[test]
        fn split_is_sse_optimal(
            ys in proptest::collection::vec(0.0f64..100.0, 6..14),
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| (i + 1) as f64 * 10.0).collect();
            let best = TwoSegmentFit::fit(&xs, &ys).unwrap();
            for split in 2..=(xs.len() - 2) {
                let c = LinearFit::fit(&xs[..split], &ys[..split]).unwrap();
                let s = LinearFit::fit(&xs[split..], &ys[split..]).unwrap();
                prop_assert!(best.sse() <= c.sse + s.sse + 1e-9);
            }
        }

        /// A genuine two-slope signal with a knee is recovered with the
        /// pivot near the knee, for a range of knee positions and slopes.
        #[test]
        fn knee_recovery(
            knee_idx in 2usize..6,
            steep in 0.05f64..0.5,
            gentle_frac in 0.0f64..0.2,
        ) {
            let xs: Vec<f64> = (0..8).map(|i| (i + 1) as f64 * 25.0).collect();
            let knee_x = xs[knee_idx];
            let gentle = steep * gentle_frac;
            let y_at = |x: f64| if x <= knee_x {
                steep * x
            } else {
                steep * knee_x + gentle * (x - knee_x)
            };
            let ys: Vec<f64> = xs.iter().map(|&x| y_at(x)).collect();
            let f = TwoSegmentFit::fit(&xs, &ys).unwrap();
            if let Some(p) = f.pivot() {
                // The recovered pivot sits within one grid step of the knee.
                prop_assert!((p.x - knee_x).abs() <= 30.0,
                    "pivot {} vs knee {}", p.x, knee_x);
            }
        }
    }
}
