//! Terminal line charts for the figure series.
//!
//! The paper's artifacts are figures; a table of numbers hides the very
//! shapes (knees, saturation, divergence with `P`) the reproduction is
//! about. [`ascii_chart`] renders labelled series on a character canvas
//! so `odb-experiments` output shows the curves directly.

use odb_core::series::Series;
use std::fmt::Write as _;

/// Rendering options for [`ascii_chart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChartOptions {
    /// Plot-area width in characters (excluding the y-axis gutter).
    pub width: usize,
    /// Plot-area height in rows.
    pub height: usize,
}

impl Default for ChartOptions {
    fn default() -> Self {
        Self {
            width: 64,
            height: 16,
        }
    }
}

/// Marker characters assigned to series in order.
const MARKS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Renders one or more series as an ASCII line chart with a legend.
///
/// Points are plotted at their `(x, y)` positions on a linear canvas;
/// overlapping points show the later series' marker. Empty input or
/// degenerate ranges produce a short placeholder instead of panicking.
///
/// ```
/// use odb_core::series::Series;
/// use odb_experiments::chart::{ascii_chart, ChartOptions};
///
/// let s = Series::from_xy("4P", [10.0, 100.0, 800.0], [2.8, 3.8, 4.9]);
/// let chart = ascii_chart("CPI vs warehouses", &[s], ChartOptions::default());
/// assert!(chart.contains("CPI vs warehouses"));
/// assert!(chart.contains("o 4P"));
/// ```
pub fn ascii_chart(title: &str, series: &[Series], options: ChartOptions) -> String {
    let width = options.width.max(8);
    let height = options.height.max(4);
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points().iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    // Give flat data a visible band and anchor near-zero minima at zero.
    if (max_y - min_y).abs() < f64::EPSILON {
        max_y += 1.0;
        min_y -= 1.0;
    }
    if min_y > 0.0 && min_y < 0.25 * max_y {
        min_y = 0.0;
    }
    let span_x = (max_x - min_x).max(f64::EPSILON);
    let span_y = (max_y - min_y).max(f64::EPSILON);

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in s.points() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - min_x) / span_x * (width - 1) as f64).round() as usize;
            let cy = ((y - min_y) / span_y * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let label_top = format_axis(max_y);
    let label_bottom = format_axis(min_y);
    let gutter = label_top.chars().count().max(label_bottom.chars().count());
    for (row_idx, row) in canvas.iter().enumerate() {
        let label = if row_idx == 0 {
            label_top.clone()
        } else if row_idx == height - 1 {
            label_bottom.clone()
        } else {
            String::new()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>gutter$} |{line}");
    }
    let _ = writeln!(out, "{:>gutter$} +{}", "", "-".repeat(width));
    let x_left = format_axis(min_x);
    let x_right = format_axis(max_x);
    let pad = width.saturating_sub(x_left.chars().count() + x_right.chars().count());
    let _ = writeln!(out, "{:>gutter$}  {x_left}{}{x_right}", "", " ".repeat(pad));
    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()], s.label()))
        .collect();
    let _ = writeln!(out, "{:>gutter$}  {}", "", legend.join("   "));
    out
}

/// Compact axis-label formatting: integers plain, fractions to 2–3
/// significant decimals.
fn format_axis(v: f64) -> String {
    if (v == v.trunc() && v.abs() < 1e9) || v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising() -> Series {
        Series::from_xy(
            "4P",
            [10.0, 100.0, 400.0, 800.0],
            [2.8, 3.8, 4.6, 4.9],
        )
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = ascii_chart("Figure 9", &[rising()], ChartOptions::default());
        assert!(chart.starts_with("Figure 9\n"));
        assert!(chart.contains("o 4P"), "legend present");
        assert!(chart.contains('|'), "y axis drawn");
        assert!(chart.contains('+'), "origin corner drawn");
        assert!(chart.contains("10"), "x labels present");
        assert!(chart.contains("800"));
        // All four points plotted.
        let marks = chart.matches('o').count();
        assert!(marks >= 4, "points on canvas + legend: {marks}");
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let chart = ascii_chart("m", &[rising()], ChartOptions { width: 40, height: 10 });
        // The first plotted row (highest y) must correspond to the largest
        // x: find row and column of each 'o' in the plot area.
        let mut coords = Vec::new();
        for (r, line) in chart.lines().enumerate() {
            if let Some(bar) = line.find('|') {
                for (c, ch) in line[bar + 1..].char_indices() {
                    if ch == 'o' {
                        coords.push((r, c));
                    }
                }
            }
        }
        coords.sort_by_key(|&(_, c)| c);
        let rows: Vec<usize> = coords.iter().map(|&(r, _)| r).collect();
        assert!(
            rows.windows(2).all(|w| w[1] <= w[0]),
            "higher x plots at or above lower x: {rows:?}"
        );
    }

    #[test]
    fn multiple_series_get_distinct_markers() {
        let a = Series::from_xy("1P", [0.0, 1.0], [1.0, 2.0]);
        let b = Series::from_xy("4P", [0.0, 1.0], [3.0, 4.0]);
        let chart = ascii_chart("two", &[a, b], ChartOptions::default());
        assert!(chart.contains("o 1P"));
        assert!(chart.contains("x 4P"));
        assert!(chart.contains('x'), "second marker plotted");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(ascii_chart("empty", &[], ChartOptions::default()).contains("no data"));
        let flat = Series::from_xy("f", [1.0, 2.0], [5.0, 5.0]);
        let chart = ascii_chart("flat", &[flat], ChartOptions::default());
        assert!(chart.contains("o f"));
        let single = Series::from_xy("s", [3.0], [7.0]);
        let chart = ascii_chart("one", &[single], ChartOptions::default());
        assert!(chart.contains("o s"));
        let nan = Series::from_xy("n", [f64::NAN], [1.0]);
        assert!(ascii_chart("nan", &[nan], ChartOptions::default()).contains("no data"));
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let chart = ascii_chart(
            "tiny",
            &[rising()],
            ChartOptions {
                width: 1,
                height: 1,
            },
        );
        assert!(chart.lines().count() >= 6, "clamped to usable minimum");
    }

    #[test]
    fn axis_labels_format_sanely() {
        assert_eq!(format_axis(800.0), "800");
        assert_eq!(format_axis(4.944), "4.94");
        assert_eq!(format_axis(0.0123), "0.012");
        assert_eq!(format_axis(123.4), "123");
    }
}
