//! Engine-side observers for the `odb-des` observer seam.
//!
//! The seam itself (trait, events, hub) lives in `odb_des::observe`; this
//! module holds the consumers the engine registers on it:
//!
//! * [`StatsObserver`] — the measurement accumulators that used to be
//!   inline fields of `SystemSim` (commit count, instruction totals, bus
//!   window sums). Always registered; [`SystemSim::collect`] reads it.
//! * [`InvariantObserver`] — seam-level lifecycle checks (transaction
//!   start/commit pairing, flush begin/end pairing). Registered only when
//!   the `invariants` feature is on; consulted by
//!   [`SystemSim::verify_invariants`].
//! * [`EmonObserver`] — carries the EMON instrument through a run so
//!   counter sampling is a registration, not a special case in the
//!   measurement pipeline. Its RNG is consumed only when the owner asks
//!   for samples after the window closes, never during the run.
//! * [`LatencyObserver`] / [`LogHistogram`] — per-transaction-type
//!   commit-latency histograms over integer nanoseconds; the first output
//!   the seam enables that the inline counters never could.
//!
//! None of these touch simulation state: registering any subset of them
//! leaves the simulation bit-identical (asserted by the engine's
//! determinism tests).
//!
//! [`SystemSim::collect`]: crate::system::SystemSim::collect
//! [`SystemSim::verify_invariants`]: crate::system::SystemSim::verify_invariants

use odb_core::metrics::SpaceCounts;
use odb_des::{SimEvent, SimObserver, SimTime};
use odb_emon::{Emon, MeasurementPlan, NoiseModel};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The measurement accumulators, fed entirely by seam events.
///
/// Accumulation order and arithmetic are identical to the inline fields
/// this replaces (each hook fires exactly where the inline update sat),
/// so measurements are bit-for-bit unchanged.
#[derive(Debug, Clone, Default)]
pub struct StatsObserver {
    committed: u64,
    user_instructions: f64,
    os_instructions: f64,
    bus_util_sum: f64,
    ioq_sum: f64,
    bus_windows: u64,
}

impl StatsObserver {
    /// Transactions committed since the last reset.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// User-space instructions charged since the last reset.
    pub fn user_instructions(&self) -> f64 {
        self.user_instructions
    }

    /// Kernel-space instructions charged since the last reset.
    pub fn os_instructions(&self) -> f64 {
        self.os_instructions
    }

    /// Sum of per-window bus utilizations since the last reset.
    pub fn bus_util_sum(&self) -> f64 {
        self.bus_util_sum
    }

    /// Sum of per-window IOQ latencies (cycles) since the last reset.
    pub fn ioq_sum(&self) -> f64 {
        self.ioq_sum
    }

    /// Bus feedback windows observed since the last reset.
    pub fn bus_windows(&self) -> u64 {
        self.bus_windows
    }
}

impl SimObserver for StatsObserver {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::Charged { os, instructions } => {
                if os {
                    self.os_instructions += instructions as f64;
                } else {
                    self.user_instructions += instructions as f64;
                }
            }
            SimEvent::TxnCommitted { .. } => self.committed += 1,
            SimEvent::BusObserved {
                utilization,
                ioq_latency_cycles,
            } => {
                self.bus_util_sum += utilization;
                self.ioq_sum += ioq_latency_cycles;
                self.bus_windows += 1;
            }
            _ => {}
        }
    }

    fn on_reset(&mut self, _now: SimTime) {
        *self = Self::default();
    }
}

/// Seam-level lifecycle invariants.
///
/// Component-internal checks (lock canonical order, buffer accounting,
/// event-queue monotonicity) stay inside their components; this observer
/// checks the properties only visible across components: every commit
/// pairs with a start on the same process and transaction type, and log
/// flushes never overlap.
///
/// The first violation is latched and surfaced by
/// [`InvariantObserver::verify`]; the observer deliberately keeps its
/// in-flight state across window resets, since transactions started
/// before the measurement window legitimately commit inside it.
#[derive(Debug, Clone, Default)]
pub struct InvariantObserver {
    /// Transaction-type index in flight per raw process id.
    in_flight: BTreeMap<u32, usize>,
    flush_in_flight: bool,
    violation: Option<String>,
}

impl InvariantObserver {
    fn latch(&mut self, message: String) {
        if self.violation.is_none() {
            self.violation = Some(message);
        }
    }

    /// Reports the first latched violation, if any.
    ///
    /// # Errors
    ///
    /// Returns [`odb_core::Error::CorruptState`] describing the first
    /// lifecycle violation observed on the seam.
    pub fn verify(&self) -> Result<(), odb_core::Error> {
        match &self.violation {
            Some(message) => Err(odb_core::Error::corrupt("engine::observe", message.clone())),
            None => Ok(()),
        }
    }
}

impl SimObserver for InvariantObserver {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::TxnStarted { pid, kind } => {
                if let Some(prev) = self.in_flight.insert(pid, kind) {
                    self.latch(format!(
                        "process {pid} started transaction kind {kind} at {now} \
                         while kind {prev} was still in flight"
                    ));
                }
            }
            SimEvent::TxnCommitted { pid, kind, .. } => match self.in_flight.remove(&pid) {
                Some(started) if started == kind => {}
                Some(started) => self.latch(format!(
                    "process {pid} committed transaction kind {kind} at {now} \
                     but had started kind {started}"
                )),
                None => self.latch(format!(
                    "process {pid} committed transaction kind {kind} at {now} \
                     with no start on record"
                )),
            },
            SimEvent::FlushBegin { .. } => {
                if self.flush_in_flight {
                    self.latch(format!("overlapping log flushes at {now}"));
                }
                self.flush_in_flight = true;
            }
            SimEvent::FlushEnd { .. } => {
                if !self.flush_in_flight {
                    self.latch(format!("log flush completed at {now} with none in flight"));
                }
                self.flush_in_flight = false;
            }
            _ => {}
        }
    }
}

/// The EMON instrument as a registered observer.
///
/// The paper's measurement procedure samples hardware counters through a
/// multiplexed EMON schedule *after* a run; accordingly this observer is
/// inert during the simulation (its `on_event` is a no-op and its RNG is
/// untouched, so registration cannot perturb simulation bits) and the
/// pipeline retrieves it afterwards to pass the true counts through
/// [`EmonObserver::sample_counts`].
#[derive(Debug)]
pub struct EmonObserver {
    emon: Emon,
}

impl EmonObserver {
    /// Wraps an EMON instrument with the given schedule, noise model and
    /// sampling seed.
    pub fn new(plan: MeasurementPlan, noise: NoiseModel, seed: u64) -> Self {
        Self {
            emon: Emon::new(plan, noise, seed),
        }
    }

    /// Samples a set of true counts through the multiplexed schedule,
    /// advancing the instrument's RNG.
    pub fn sample_counts(&mut self, counts: &SpaceCounts) -> SpaceCounts {
        self.emon.sample_counts(counts)
    }
}

impl SimObserver for EmonObserver {
    fn on_event(&mut self, _now: SimTime, _event: &SimEvent) {}
}

/// Number of latency buckets: one per possible `u64` bit length, plus
/// bucket 0 for a zero-nanosecond latency.
const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram over integer nanoseconds.
///
/// Bucket `b > 0` holds values whose bit length is `b`, i.e. the range
/// `[2^(b-1), 2^b - 1]`; bucket 0 holds exact zeros. Recording costs one
/// `leading_zeros` and one increment — no floating point anywhere on the
/// recording path (the raw-time lint's discipline extends to the seam's
/// hot paths). Quantiles resolve to a bucket upper bound, so a reported
/// p99 is an upper bound within a factor of two of the true value —
/// exactly the fidelity a log histogram promises.
#[derive(Clone)]
pub struct LogHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The upper bound (in nanoseconds) of the bucket containing the
    /// `num/den` quantile, computed with integer arithmetic; 0 when the
    /// histogram is empty.
    ///
    /// The rank is `ceil(total × num / den)` clamped to at least 1, so
    /// `quantile_ns(1, 2)` is the median bucket and `quantile_ns(99, 100)`
    /// the p99 bucket.
    pub fn quantile_ns(&self, num: u64, den: u64) -> u64 {
        if self.total == 0 || den == 0 {
            return 0;
        }
        let rank = self.total.saturating_mul(num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match bucket {
                    0 => 0,
                    64 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }
}

/// Per-transaction-type commit-latency histograms.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    per_kind: Vec<LogHistogram>,
    all: LogHistogram,
}

impl LatencyStats {
    /// Records a commit of transaction-type index `kind` with the given
    /// latency in nanoseconds.
    pub fn record(&mut self, kind: usize, ns: u64) {
        if self.per_kind.len() <= kind {
            self.per_kind.resize_with(kind + 1, LogHistogram::new);
        }
        self.per_kind[kind].record(ns);
        self.all.record(ns);
    }

    /// The histogram for transaction-type index `kind`, if any commit of
    /// that kind was recorded.
    pub fn kind(&self, kind: usize) -> Option<&LogHistogram> {
        self.per_kind.get(kind).filter(|h| h.total() > 0)
    }

    /// The histogram across every transaction type.
    pub fn all(&self) -> &LogHistogram {
        &self.all
    }

    /// Drops every recorded sample.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// Records per-transaction-type commit latencies from the seam.
///
/// The histograms live behind a shared handle ([`LatencyObserver::stats`])
/// so the caller keeps access after the observer is moved into the
/// simulator. Window resets clear the histograms: recorded latencies are
/// exactly the commits inside the measurement window (a transaction
/// started during warm-up that commits in-window is included, measured
/// from its true start).
#[derive(Debug, Default)]
pub struct LatencyObserver {
    stats: Arc<Mutex<LatencyStats>>,
}

impl LatencyObserver {
    /// A fresh observer with an empty histogram set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to the histograms; clones observe the same data.
    pub fn stats(&self) -> Arc<Mutex<LatencyStats>> {
        Arc::clone(&self.stats)
    }
}

impl SimObserver for LatencyObserver {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
        if let SimEvent::TxnCommitted { kind, latency, .. } = *event {
            // A poisoned mutex is unreachable here (no panic can occur
            // while it is held); skipping beats poisoning the simulation.
            if let Ok(mut stats) = self.stats.lock() {
                stats.record(kind, latency.as_nanos());
            }
        }
    }

    fn on_reset(&mut self, _now: SimTime) {
        if let Ok(mut stats) = self.stats.lock() {
            stats.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_observer_accumulates_and_resets() {
        let mut s = StatsObserver::default();
        s.on_event(
            SimTime::ZERO,
            &SimEvent::Charged {
                os: false,
                instructions: 1_000,
            },
        );
        s.on_event(
            SimTime::ZERO,
            &SimEvent::Charged {
                os: true,
                instructions: 250,
            },
        );
        s.on_event(
            SimTime::ZERO,
            &SimEvent::TxnCommitted {
                pid: 1,
                kind: 0,
                latency: SimTime::from_micros(10),
            },
        );
        s.on_event(
            SimTime::ZERO,
            &SimEvent::BusObserved {
                utilization: 0.5,
                ioq_latency_cycles: 120.0,
            },
        );
        assert_eq!(s.committed(), 1);
        assert_eq!(s.user_instructions(), 1_000.0);
        assert_eq!(s.os_instructions(), 250.0);
        assert_eq!(s.bus_windows(), 1);
        assert_eq!(s.bus_util_sum(), 0.5);
        assert_eq!(s.ioq_sum(), 120.0);
        s.on_reset(SimTime::from_secs(1));
        assert_eq!(s.committed(), 0);
        assert_eq!(s.user_instructions(), 0.0);
        assert_eq!(s.bus_windows(), 0);
    }

    #[test]
    fn invariant_observer_accepts_paired_lifecycles() {
        let mut inv = InvariantObserver::default();
        inv.on_event(SimTime::ZERO, &SimEvent::TxnStarted { pid: 1, kind: 2 });
        // A window reset must not forget the in-flight transaction.
        inv.on_reset(SimTime::from_secs(1));
        inv.on_event(
            SimTime::from_secs(2),
            &SimEvent::TxnCommitted {
                pid: 1,
                kind: 2,
                latency: SimTime::from_secs(2),
            },
        );
        inv.on_event(SimTime::ZERO, &SimEvent::FlushBegin { bytes: 100 });
        inv.on_event(SimTime::ZERO, &SimEvent::FlushEnd { woken: 1 });
        assert!(inv.verify().is_ok());
    }

    #[test]
    fn invariant_observer_latches_unpaired_commit() {
        let mut inv = InvariantObserver::default();
        inv.on_event(
            SimTime::ZERO,
            &SimEvent::TxnCommitted {
                pid: 9,
                kind: 0,
                latency: SimTime::ZERO,
            },
        );
        let err = inv.verify().unwrap_err();
        assert!(matches!(
            err,
            odb_core::Error::CorruptState {
                component: "engine::observe",
                ..
            }
        ));
    }

    #[test]
    fn invariant_observer_latches_kind_mismatch_and_double_start() {
        let mut inv = InvariantObserver::default();
        inv.on_event(SimTime::ZERO, &SimEvent::TxnStarted { pid: 1, kind: 0 });
        inv.on_event(
            SimTime::ZERO,
            &SimEvent::TxnCommitted {
                pid: 1,
                kind: 3,
                latency: SimTime::ZERO,
            },
        );
        assert!(inv.verify().is_err());

        let mut inv = InvariantObserver::default();
        inv.on_event(SimTime::ZERO, &SimEvent::TxnStarted { pid: 1, kind: 0 });
        inv.on_event(SimTime::ZERO, &SimEvent::TxnStarted { pid: 1, kind: 1 });
        assert!(inv.verify().is_err());
    }

    #[test]
    fn invariant_observer_latches_overlapping_flushes() {
        let mut inv = InvariantObserver::default();
        inv.on_event(SimTime::ZERO, &SimEvent::FlushBegin { bytes: 1 });
        inv.on_event(SimTime::ZERO, &SimEvent::FlushBegin { bytes: 2 });
        assert!(inv.verify().is_err());

        let mut inv = InvariantObserver::default();
        inv.on_event(SimTime::ZERO, &SimEvent::FlushEnd { woken: 0 });
        assert!(inv.verify().is_err());
    }

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile_ns(1, 2), 0, "empty histogram");
        h.record(0);
        h.record(1);
        h.record(1_000); // bucket 10: [512, 1023]
        h.record(1_500); // bucket 11: [1024, 2047]
        assert_eq!(h.total(), 4);
        assert_eq!(h.quantile_ns(1, 4), 0);
        assert_eq!(h.quantile_ns(1, 2), 1);
        assert_eq!(h.quantile_ns(3, 4), 1_023);
        assert_eq!(h.quantile_ns(99, 100), 2_047);
        assert_eq!(h.quantile_ns(1, 1), 2_047);
    }

    #[test]
    fn log_histogram_quantiles_bound_percentiles() {
        let mut h = LogHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        // p50 of 1..=1000 is 500; its bucket [256, 511] upper bound is 511.
        assert_eq!(h.quantile_ns(1, 2), 511);
        // p99 is 990; bucket [512, 1023].
        assert_eq!(h.quantile_ns(99, 100), 1_023);
        // Extremes stay in range.
        h.record(u64::MAX);
        assert_eq!(h.quantile_ns(1, 1), u64::MAX);
    }

    #[test]
    fn log_histogram_merge_adds_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.quantile_ns(1, 1), (1u64 << 20) - 1);
    }

    #[test]
    fn latency_observer_records_per_kind_through_the_handle() {
        let mut obs = LatencyObserver::new();
        let handle = obs.stats();
        obs.on_event(
            SimTime::ZERO,
            &SimEvent::TxnCommitted {
                pid: 1,
                kind: 0,
                latency: SimTime::from_micros(100),
            },
        );
        obs.on_event(
            SimTime::ZERO,
            &SimEvent::TxnCommitted {
                pid: 2,
                kind: 4,
                latency: SimTime::from_millis(2),
            },
        );
        // Non-commit events are ignored.
        obs.on_event(SimTime::ZERO, &SimEvent::LockWait { pid: 1 });
        {
            let stats = handle.lock().unwrap();
            assert_eq!(stats.all().total(), 2);
            assert_eq!(stats.kind(0).unwrap().total(), 1);
            assert_eq!(stats.kind(4).unwrap().total(), 1);
            assert!(stats.kind(1).is_none());
            assert!(stats.kind(9).is_none());
        }
        obs.on_reset(SimTime::from_secs(1));
        assert_eq!(handle.lock().unwrap().all().total(), 0);
    }

    #[test]
    fn emon_observer_samples_offline_only() {
        let mut obs = EmonObserver::new(MeasurementPlan::scaled(100), NoiseModel::default(), 7);
        let truth = SpaceCounts {
            instructions: 1_000_000_000,
            cycles: 2_000_000_000,
            l3_misses: 4_000_000,
            l2_misses: 12_000_000,
            tc_misses: 3_000_000,
            tlb_misses: 2_000_000,
            branch_mispredictions: 5_000_000,
        };
        // Events do not advance the sampling stream: interleaving them
        // must not change the draw.
        let mut twin = EmonObserver::new(MeasurementPlan::scaled(100), NoiseModel::default(), 7);
        obs.on_event(SimTime::ZERO, &SimEvent::LockWait { pid: 0 });
        obs.on_event(SimTime::ZERO, &SimEvent::FlushBegin { bytes: 1 });
        assert_eq!(obs.sample_counts(&truth), twin.sample_counts(&truth));
    }
}
