//! Sweep persistence: a measured sweep must survive the CSV round trip
//! with every figure generator producing identical output from the
//! replayed copy.

use odb_core::config::SystemConfig;
use odb_experiments::ladder::ConfigPoint;
use odb_experiments::persist::{sweep_from_csv, sweep_to_csv};
use odb_experiments::runner::{Sweep, SweepOptions};
use odb_experiments::{figures, scorecard};

fn mini_sweep() -> Sweep {
    let points: Vec<ConfigPoint> = [1u32, 4]
        .iter()
        .flat_map(|&p| {
            [10u32, 50, 100, 200, 400, 800].map(|w| ConfigPoint {
                warehouses: w,
                processors: p,
            })
        })
        .collect();
    let sweep =
        Sweep::run_points(&SystemConfig::xeon_quad(), &SweepOptions::quick(), &points);
    sweep.ensure_complete().expect("mini sweep");
    sweep
}

#[test]
fn figures_are_identical_after_replay() {
    let sweep = mini_sweep();
    let csv = sweep_to_csv(&sweep);
    let replayed = sweep_from_csv(&csv).expect("parse back");
    assert_eq!(sweep.len(), replayed.len());

    // Every figure generator renders identically from the replay.
    assert_eq!(
        figures::fig2(&sweep).render(),
        figures::fig2(&replayed).render()
    );
    assert_eq!(
        figures::fig7(&sweep, 4).render(),
        figures::fig7(&replayed, 4).render()
    );
    assert_eq!(
        figures::fig9(&sweep).render(),
        figures::fig9(&replayed).render()
    );
    assert_eq!(
        figures::fig12(&sweep, 4).render(),
        figures::fig12(&replayed, 4).render()
    );
    assert_eq!(
        figures::table1(&sweep).render(),
        figures::table1(&replayed).render()
    );

    // Fit-derived artifacts agree too (same pivot to the digit).
    let a = figures::fig17(&sweep, 4).expect("fit");
    let b = figures::fig17(&replayed, 4).expect("fit");
    assert_eq!(a.pivot, b.pivot);
    assert_eq!(a.table.render(), b.table.render());

    // And the scorecard scores the same.
    let sa = scorecard::scorecard(&sweep).expect("score");
    let sb = scorecard::scorecard(&replayed).expect("score");
    assert_eq!(sa, sb);

    // A second serialization is byte-identical (canonical form).
    assert_eq!(csv, sweep_to_csv(&replayed));
}

#[test]
fn html_report_renders_from_replay() {
    let sweep = mini_sweep();
    let csv = sweep_to_csv(&sweep);
    let replayed = sweep_from_csv(&csv).expect("parse back");
    let html = odb_experiments::html::report(&replayed).expect("report");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<svg"));
    assert!(html.contains("Scorecard"));
    assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
}
