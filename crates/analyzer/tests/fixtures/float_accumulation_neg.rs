//! Fixture: float reduction over an ordered slice (negative —
//! `float_accumulation` must stay quiet).
pub fn total(weights: &[f64]) -> f64 {
    weights.iter().sum::<f64>()
}
