//! CPI decomposition by microarchitectural event (§5.1.1, Tables 2–4).
//!
//! The paper attributes CPI to components by assigning a *fixed* stall cost
//! to each performance-monitoring event (Table 3), multiplying by the event
//! count (Table 4) and reporting the residual between the measured and the
//! computed CPI as *Other*.

use crate::error::Error;
use crate::metrics::SpaceCounts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The performance-monitoring events of Table 2, by the alias the paper
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// Instructions retired.
    Instructions,
    /// Mispredicted branches retired.
    BranchMispredictions,
    /// TLB misses (page walks).
    TlbMiss,
    /// Trace-cache misses.
    TcMiss,
    /// L2 cache misses.
    L2Miss,
    /// L3 cache misses.
    L3Miss,
    /// Unhalted clock cycles.
    ClockCycles,
    /// Fraction of time the processor bus is transferring data.
    BusUtilization,
    /// Average time for a bus transaction to complete once it enters the
    /// IOQ.
    BusTransactionTime,
}

impl Event {
    /// All events, in the order of the paper's Table 2.
    pub const ALL: [Event; 9] = [
        Event::Instructions,
        Event::BranchMispredictions,
        Event::TlbMiss,
        Event::TcMiss,
        Event::L2Miss,
        Event::L3Miss,
        Event::ClockCycles,
        Event::BusUtilization,
        Event::BusTransactionTime,
    ];

    /// The underlying EMON event name(s) (Table 2, middle column).
    pub fn emon_events(&self) -> &'static str {
        match self {
            Event::Instructions => "instr_retired",
            Event::BranchMispredictions => "mispred_branch_retired",
            Event::TlbMiss => "page_walk_type",
            Event::TcMiss => "BPU_fetch_request",
            Event::L2Miss => "BSU_cache_reference",
            Event::L3Miss => "BSU_cache_reference",
            Event::ClockCycles => "Global_power_events",
            Event::BusUtilization => "FSB_data_activity",
            Event::BusTransactionTime => "IOQ_active_entries & IOQ_allocation",
        }
    }

    /// The descriptive text of Table 2 (right column).
    pub fn description(&self) -> &'static str {
        match self {
            Event::Instructions => "The number of instructions retired",
            Event::BranchMispredictions => "The number of mispredicted branches",
            Event::TlbMiss => "The number of misses in the TLB",
            Event::TcMiss => "The number of misses in the Trace Cache",
            Event::L2Miss => "The number of misses in the L2 cache",
            Event::L3Miss => "The number of misses in the L3 cache",
            Event::ClockCycles => "The number of unhalted clock cycles",
            Event::BusUtilization => {
                "The percentage of time the processor bus is transferring data"
            }
            Event::BusTransactionTime => {
                "The average amount of time to complete a bus transaction once it enters the IOQ"
            }
        }
    }

    /// The alias the paper uses for this event (Table 2, left column).
    pub fn alias(&self) -> &'static str {
        match self {
            Event::Instructions => "Instructions",
            Event::BranchMispredictions => "Branch Mispredictions",
            Event::TlbMiss => "TLB Miss",
            Event::TcMiss => "TC Miss",
            Event::L2Miss => "L2 Miss",
            Event::L3Miss => "L3 Miss",
            Event::ClockCycles => "Clock Cycles",
            Event::BusUtilization => "Bus Utilization",
            Event::BusTransactionTime => "Bus-Transaction Time",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.alias())
    }
}

/// The fixed per-event stall costs of Table 3, in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallCosts {
    /// Base cycles per retired instruction (0.5: the NetBurst core can
    /// retire roughly two instructions per cycle when nothing stalls).
    pub instruction: f64,
    /// Cycles per mispredicted branch.
    pub branch_misprediction: f64,
    /// Cycles per TLB miss (page walk).
    pub tlb_miss: f64,
    /// Cycles per trace-cache miss.
    pub tc_miss: f64,
    /// Cycles per L2 miss that hits in L3 (measured: 16).
    pub l2_miss: f64,
    /// Cycles per L3 miss at unloaded bus (measured: 300).
    pub l3_miss: f64,
    /// Unloaded (1P) bus-transaction time in the IOQ (measured: 102).
    /// The L3 component charges `l3_miss + (observed IOQ time − this)` per
    /// miss, so bus queueing inflates only the L3 term (Table 4).
    pub bus_transaction_1p: f64,
}

impl StallCosts {
    /// The paper's Table 3 values for the Xeon MP machine.
    pub fn xeon() -> Self {
        Self {
            instruction: 0.5,
            branch_misprediction: 20.0,
            tlb_miss: 20.0,
            tc_miss: 20.0,
            l2_miss: 16.0,
            l3_miss: 300.0,
            bus_transaction_1p: 102.0,
        }
    }
}

impl Default for StallCosts {
    fn default() -> Self {
        Self::xeon()
    }
}

/// The CPI components of Table 4 / Fig 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Base compute: `instructions × 0.5 / instructions`.
    Inst,
    /// Branch-misprediction stalls.
    Branch,
    /// TLB-miss stalls.
    Tlb,
    /// Trace-cache-miss stalls.
    Tc,
    /// L2-miss (L3-hit) stalls: `(L2 − L3 misses) × 16`.
    L2,
    /// L3-miss stalls: `L3 × (300 + IOQ − IOQ_1P)`.
    L3,
    /// Residual: measured CPI minus the sum of computed components.
    Other,
}

impl Component {
    /// All components, in the paper's stacking order (Fig 12).
    pub const ALL: [Component; 7] = [
        Component::Inst,
        Component::Branch,
        Component::Tlb,
        Component::Tc,
        Component::L2,
        Component::L3,
        Component::Other,
    ];

    /// The contribution formula of Table 4 as written in the paper.
    pub fn formula(&self) -> &'static str {
        match self {
            Component::Inst => "Instructions * 0.5",
            Component::Branch => "Branch Mispredictions * 20",
            Component::Tlb => "TLB Miss * 20",
            Component::Tc => "TC Miss * 20",
            Component::L2 => "(L2 Miss - L3 Miss) * 16",
            Component::L3 => {
                "L3 Miss * (300 + Bus-Transaction Time - Bus-Transaction Time for 1P)"
            }
            Component::Other => "Clock Cycles / Instructions - sum(computed components)",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Inst => "Inst",
            Component::Branch => "Branch",
            Component::Tlb => "TLB",
            Component::Tc => "TC",
            Component::L2 => "L2",
            Component::L3 => "L3",
            Component::Other => "Other",
        };
        f.write_str(s)
    }
}

/// A computed CPI decomposition for one configuration (one bar of Fig 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiBreakdown {
    /// Base compute component (always `costs.instruction`).
    pub inst: f64,
    /// Branch-misprediction component.
    pub branch: f64,
    /// TLB component.
    pub tlb: f64,
    /// Trace-cache component.
    pub tc: f64,
    /// L2 component.
    pub l2: f64,
    /// L3 component (includes bus-queueing inflation).
    pub l3: f64,
    /// Residual; may be slightly negative if the fixed costs overestimate.
    pub other: f64,
    /// The measured CPI the decomposition explains.
    pub measured_cpi: f64,
}

impl CpiBreakdown {
    /// Decomposes measured counts into CPI components per Table 4.
    ///
    /// `bus_transaction_cycles` is the observed IOQ time for this
    /// configuration; the excess over `costs.bus_transaction_1p` inflates
    /// each L3 miss (this is how CPI grows with `P` even when MPI does
    /// not — §5.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] if no instructions were retired, and
    /// [`Error::NonFinite`] if the IOQ time is not finite.
    pub fn compute(
        counts: &SpaceCounts,
        costs: &StallCosts,
        bus_transaction_cycles: f64,
    ) -> Result<Self, Error> {
        if counts.instructions == 0 {
            return Err(Error::TooFewPoints { needed: 1, got: 0 });
        }
        if !bus_transaction_cycles.is_finite() {
            return Err(Error::NonFinite {
                what: "bus_transaction_cycles",
            });
        }
        let instr = counts.instructions as f64;
        let per_instr = |count: u64, cost: f64| count as f64 * cost / instr;
        let inst = costs.instruction;
        let branch = per_instr(counts.branch_mispredictions, costs.branch_misprediction);
        let tlb = per_instr(counts.tlb_misses, costs.tlb_miss);
        let tc = per_instr(counts.tc_misses, costs.tc_miss);
        let l2_only = counts.l2_misses.saturating_sub(counts.l3_misses);
        let l2 = per_instr(l2_only, costs.l2_miss);
        let l3_cost =
            costs.l3_miss + (bus_transaction_cycles - costs.bus_transaction_1p).max(0.0);
        let l3 = per_instr(counts.l3_misses, l3_cost);
        let measured_cpi = counts.cycles as f64 / instr;
        let other = measured_cpi - (inst + branch + tlb + tc + l2 + l3);
        // Additivity identity: the components plus the residual must
        // reconstruct the measured CPI exactly (up to float re-association)
        // — the breakdown is a partition of cycles, not an estimate of it.
        #[cfg(feature = "invariants")]
        debug_assert!(
            ((inst + branch + tlb + tc + l2 + l3 + other) - measured_cpi).abs()
                <= 1e-9 * measured_cpi.max(1.0),
            "CPI breakdown does not reconstruct measured CPI"
        );
        Ok(Self {
            inst,
            branch,
            tlb,
            tc,
            l2,
            l3,
            other,
            measured_cpi,
        })
    }

    /// The sum of the non-residual components.
    pub fn computed_cpi(&self) -> f64 {
        self.inst + self.branch + self.tlb + self.tc + self.l2 + self.l3
    }

    /// Component value by kind.
    pub fn component(&self, c: Component) -> f64 {
        match c {
            Component::Inst => self.inst,
            Component::Branch => self.branch,
            Component::Tlb => self.tlb,
            Component::Tc => self.tc,
            Component::L2 => self.l2,
            Component::L3 => self.l3,
            Component::Other => self.other,
        }
    }

    /// Fraction of the measured CPI a component explains, in `[-1, 1]`;
    /// `0` when measured CPI is zero.
    pub fn fraction(&self, c: Component) -> f64 {
        if self.measured_cpi > 0.0 {
            self.component(c) / self.measured_cpi
        } else {
            0.0
        }
    }

    /// `(component, value)` pairs in stacking order.
    pub fn components(&self) -> [(Component, f64); 7] {
        Component::ALL.map(|c| (c, self.component(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> SpaceCounts {
        SpaceCounts {
            instructions: 1_000_000_000,
            cycles: 5_000_000_000,
            l3_misses: 10_000_000,
            l2_misses: 40_000_000,
            tc_misses: 8_000_000,
            tlb_misses: 4_000_000,
            branch_mispredictions: 5_000_000,
        }
    }

    #[test]
    fn table4_formulas_at_unloaded_bus() {
        let b = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 102.0).unwrap();
        assert!((b.inst - 0.5).abs() < 1e-12);
        assert!((b.branch - 0.005 * 20.0).abs() < 1e-12);
        assert!((b.tlb - 0.004 * 20.0).abs() < 1e-12);
        assert!((b.tc - 0.008 * 20.0).abs() < 1e-12);
        // (40M - 10M) × 16 / 1G = 0.48
        assert!((b.l2 - 0.48).abs() < 1e-12);
        // 10M × 300 / 1G = 3.0
        assert!((b.l3 - 3.0).abs() < 1e-12);
        let expected_other = 5.0 - b.computed_cpi();
        assert!((b.other - expected_other).abs() < 1e-12);
        assert!((b.measured_cpi - 5.0).abs() < 1e-12);
    }

    #[test]
    fn loaded_bus_inflates_only_l3() {
        let unloaded = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 102.0).unwrap();
        let loaded = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 152.0).unwrap();
        assert!((loaded.l3 - (unloaded.l3 + 0.01 * 50.0)).abs() < 1e-12);
        assert_eq!(loaded.l2, unloaded.l2);
        assert_eq!(loaded.branch, unloaded.branch);
    }

    #[test]
    fn ioq_below_1p_baseline_is_clamped() {
        let b = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 90.0).unwrap();
        // No negative bus adjustment: cost stays at 300.
        assert!((b.l3 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn l2_only_misses_saturate_when_l3_exceeds_l2() {
        let mut c = counts();
        c.l3_misses = c.l2_misses + 1_000_000; // pathological counter skew
        let b = CpiBreakdown::compute(&c, &StallCosts::xeon(), 102.0).unwrap();
        assert_eq!(b.l2, 0.0);
    }

    #[test]
    fn rejects_zero_instructions_and_nan_bus() {
        let zero = SpaceCounts::default();
        assert!(CpiBreakdown::compute(&zero, &StallCosts::xeon(), 102.0).is_err());
        assert!(CpiBreakdown::compute(&counts(), &StallCosts::xeon(), f64::NAN).is_err());
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 130.0).unwrap();
        let total: f64 = Component::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_metadata_is_complete() {
        for e in Event::ALL {
            assert!(!e.emon_events().is_empty());
            assert!(!e.description().is_empty());
            assert!(!e.alias().is_empty());
            assert_eq!(e.to_string(), e.alias());
        }
        assert_eq!(Event::L3Miss.emon_events(), "BSU_cache_reference");
    }

    #[test]
    fn component_formulas_match_table4() {
        assert_eq!(Component::Inst.formula(), "Instructions * 0.5");
        assert!(Component::L3.formula().contains("300"));
        for c in Component::ALL {
            assert!(!c.formula().is_empty());
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn components_iterates_in_stacking_order() {
        let b = CpiBreakdown::compute(&counts(), &StallCosts::xeon(), 102.0).unwrap();
        let comps = b.components();
        assert_eq!(comps[0].0, Component::Inst);
        assert_eq!(comps[6].0, Component::Other);
        let sum: f64 = comps.iter().map(|(_, v)| v).sum();
        assert!((sum - b.measured_cpi).abs() < 1e-9);
    }
}
