//! Measurement-machinery benchmarks: what one experimental data point
//! costs, stage by stage.

use criterion::{criterion_group, criterion_main, Criterion};
use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_des::SimTime;
use odb_engine::profile::{trace_params, OdbRefSource, WorkloadEstimates};
use odb_engine::schema::PageMap;
use odb_engine::system::{SystemParams, SystemSim};
use odb_engine::txn::TxnSampler;
use odb_engine::{OdbSimulator, SimOptions};
use odb_memsim::Characterizer;

fn config(w: u32, c: u32, p: u32) -> OltpConfig {
    OltpConfig::new(
        WorkloadConfig::new(w, c).unwrap(),
        SystemConfig::xeon_quad().with_processors(p),
    )
    .unwrap()
}

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let cfg = config(100, 48, 4);
    let params = trace_params(&cfg, &WorkloadEstimates::initial());
    let characterizer = Characterizer::new(cfg.system.clone(), params).unwrap();
    let sampler = TxnSampler::new(PageMap::new(100)).unwrap();
    group.bench_function("characterize_400k_instr_4p", |b| {
        b.iter(|| {
            characterizer.run(
                |_| OdbRefSource::with_sampler(sampler.clone(), 4),
                42,
                200_000,
                200_000,
            )
        })
    });
    group.finish();
}

fn bench_system_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let cfg = config(100, 48, 4);
    let params = trace_params(&cfg, &WorkloadEstimates::initial());
    let characterizer = Characterizer::new(cfg.system.clone(), params).unwrap();
    let sampler = TxnSampler::new(PageMap::new(100)).unwrap();
    let rates = characterizer
        .run(
            |_| OdbRefSource::with_sampler(sampler.clone(), 4),
            42,
            400_000,
            300_000,
        )
        .unwrap()
        .rates;
    group.bench_function("system_sim_1s_100w_4p", |b| {
        b.iter(|| {
            let mut sim =
                SystemSim::new(cfg.clone(), SystemParams::default(), rates, 42).unwrap();
            sim.run_for(SimTime::from_secs(1)).unwrap();
            sim.committed()
        })
    });
    group.bench_function("full_point_quick_100w_4p", |b| {
        b.iter(|| {
            OdbSimulator::new(cfg.clone(), SimOptions::quick())
                .unwrap()
                .run()
                .unwrap()
                .tps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_characterization, bench_system_sim);
criterion_main!(benches);
