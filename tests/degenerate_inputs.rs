//! Degenerate-input regression tests: every rejected input must come
//! back as a typed [`odb_core::Error`], never a panic, and the smallest
//! legitimate configuration must still simulate end to end.
//!
//! These pin the library-wide panic policy (tests may unwrap; library
//! code may not): validation happens at construction, so by the time a
//! simulation runs, its inputs are invariants.

use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
use odb_core::Error;
use odb_engine::txn::TxnMix;
use odb_engine::{OdbSimulator, SimOptions};
use odb_memsim::dist::Zipf;

#[test]
fn zero_clients_is_rejected_not_panicked() {
    let err = WorkloadConfig::new(10, 0).unwrap_err();
    assert!(
        matches!(err, Error::InvalidConfig { field: "clients", .. }),
        "got: {err}"
    );
}

#[test]
fn zero_warehouses_is_rejected_not_panicked() {
    assert!(matches!(
        WorkloadConfig::new(0, 8),
        Err(Error::InvalidConfig { .. })
    ));
}

#[test]
fn mix_weights_not_summing_to_one_are_rejected() {
    let err = TxnMix::new([0.5, 0.5, 0.5, 0.0, 0.0]).unwrap_err();
    assert!(
        matches!(err, Error::InvalidConfig { field: "weights", .. }),
        "got: {err}"
    );
}

#[test]
fn nan_mix_weight_is_rejected() {
    let err = TxnMix::new([f64::NAN, 0.43, 0.04, 0.04, 0.04]).unwrap_err();
    assert!(
        matches!(err, Error::InvalidConfig { field: "weights", .. }),
        "got: {err}"
    );
}

#[test]
fn negative_mix_weight_is_rejected() {
    assert!(TxnMix::new([-0.1, 0.53, 0.04, 0.04, 0.49]).is_err());
}

#[test]
fn degenerate_zipf_domains_are_rejected() {
    assert!(matches!(
        Zipf::new(0, 1.0),
        Err(Error::InvalidConfig { field: "zipf_domain", .. })
    ));
    assert!(matches!(
        Zipf::new(100, f64::NAN),
        Err(Error::InvalidConfig { field: "zipf_exponent", .. })
    ));
    assert!(matches!(
        Zipf::new(100, -1.0),
        Err(Error::InvalidConfig { field: "zipf_exponent", .. })
    ));
}

/// The smallest legitimate grid point — one warehouse, one client, one
/// CPU — runs the full characterize→simulate pipeline without error.
#[test]
fn single_warehouse_single_cpu_quick_run_succeeds() {
    let config = OltpConfig::new(
        WorkloadConfig::new(1, 1).unwrap(),
        SystemConfig::xeon_quad().with_processors(1),
    )
    .unwrap();
    let m = OdbSimulator::new(config, SimOptions::quick())
        .unwrap()
        .run()
        .unwrap();
    assert!(m.transactions > 0, "even 1W/1C/1P must commit something");
}
