//! Set-associative, write-back caches with pluggable replacement
//! (true-LRU by default; see [`crate::policy`] for the alternatives the
//! paper's §7 caching-scheme agenda motivates).

use crate::policy::{PolicyState, ReplacementPolicy};
use odb_core::config::CacheGeometry;

/// A victim line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// `true` when the victim was modified and must be written back.
    pub dirty: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss {
        /// The valid line displaced by the fill, if the set was full.
        /// Clean evictions matter too: the coherence directory must stop
        /// tracking the evicting processor as a holder.
        evicted: Option<Evicted>,
        /// `true` when the miss was caused by an earlier coherence
        /// invalidation of this very line (as opposed to cold/capacity).
        coherence: bool,
    },
}

impl Access {
    /// `true` for [`Access::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, Access::Hit)
    }

    /// The dirty victim's address, if this was a miss that wrote one back.
    pub fn dirty_writeback(&self) -> Option<u64> {
        match self {
            Access::Miss {
                evicted: Some(e), ..
            } if e.dirty => Some(e.addr),
            _ => None,
        }
    }
}

/// Running hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses of any kind.
    pub misses: u64,
    /// Misses attributable to coherence invalidations.
    pub coherence_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines invalidated by the coherence directory.
    pub invalidations_received: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses > 0 {
            self.misses as f64 / self.accesses as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp; larger is more recent.
    stamp: u64,
}

/// One set-associative cache level.
///
/// Addresses are byte addresses; the cache derives line/set indices from
/// its [`CacheGeometry`]. Replacement is true LRU within a set. The cache
/// is write-allocate, write-back.
///
/// ```
/// use odb_core::config::CacheGeometry;
/// use odb_memsim::cache::SetAssocCache;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4096, 64, 2)?);
/// assert!(!c.access(0, false).is_hit()); // cold miss
/// assert!(c.access(0, false).is_hit());  // now resident
/// # Ok::<(), odb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: Vec<Line>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    /// `log2(sets)`, precomputed: tag extraction and victim-address
    /// reconstruction run on every access/miss and must not re-derive it.
    sets_shift: u32,
    clock: u64,
    stats: CacheStats,
    policy: PolicyState,
    /// Line addresses lost to coherence invalidations and not yet
    /// re-fetched; used to classify the next miss on them.
    // Point-access only (insert/remove/contains, never iterated) on the
    // per-reference hot path, so hash order can never leak into sim state.
    // odb-analyzer: allow(unordered_iteration)
    invalidated: std::collections::HashSet<u64>,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and true-LRU
    /// replacement.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    pub fn with_policy(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let ways = geometry.associativity() as usize;
        let sets = geometry.sets() as usize;
        Self {
            geometry,
            sets: vec![Line::default(); sets * ways],
            ways,
            set_mask: geometry.sets() - 1,
            line_shift: geometry.line_bytes().trailing_zeros(),
            sets_shift: geometry.sets().trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
            policy: PolicyState::new(policy),
            // odb-analyzer: allow(unordered_iteration) — see field above
            invalidated: std::collections::HashSet::new(),
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy.policy()
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after a warm-up phase) without disturbing
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_index(&self, line_number: u64) -> usize {
        (line_number & self.set_mask) as usize
    }

    /// Accesses `addr` (read or write) and returns the outcome, updating
    /// LRU state and statistics.
    ///
    /// This is the hottest function in the characterization loop, so the
    /// set walk is a single pass that resolves the hit *and* the victim
    /// candidate together instead of re-scanning on a miss. The naive
    /// two-pass version survives as `access_reference` under `cfg(test)`
    /// and a proptest pins the two access-for-access identical.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        self.stats.accesses += 1;
        if self.policy.should_clear_stamps() {
            for line in &mut self.sets {
                line.stamp = 0;
            }
        }
        let line_number = addr >> self.line_shift;
        let tag = line_number >> self.sets_shift;
        let set = self.set_index(line_number);
        let base = set * self.ways;
        let clock = self.clock;
        let touch = self.policy.touch_stamp(clock);
        let ways = &mut self.sets[base..base + self.ways];

        // One walk: find the hit, tracking the victim candidate (first
        // line minimizing `(valid, stamp)` — invalid ways always win) as
        // we go so a miss needs no second scan.
        let mut victim_at = 0usize;
        let mut victim_key = (true, u64::MAX);
        for (i, line) in ways.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                if let Some(stamp) = touch {
                    line.stamp = stamp;
                }
                line.dirty |= write;
                return Access::Hit;
            }
            let key = (line.valid, line.stamp);
            if key < victim_key {
                victim_key = key;
                victim_at = i;
            }
        }

        // Miss: classify, then fill the victim way. The classification
        // set is empty unless coherence invalidations are in flight, so
        // the common path is a branch, not a hash probe.
        self.stats.misses += 1;
        let coherence = !self.invalidated.is_empty()
            && self.invalidated.remove(&(line_number << self.line_shift));
        if coherence {
            self.stats.coherence_misses += 1;
        }
        // `CacheGeometry` validation guarantees at least one way; were a
        // zero-way set ever constructed anyway it would simply never fill.
        let Some(victim) = ways.get_mut(victim_at) else {
            return Access::Miss {
                evicted: None,
                coherence,
            };
        };
        let mut evicted = None;
        if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            let victim_line = (victim.tag << self.sets_shift | set as u64) << self.line_shift;
            evicted = Some(Evicted {
                addr: victim_line,
                dirty: victim.dirty,
            });
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.policy.fill_stamp(clock),
        };
        Access::Miss { evicted, coherence }
    }

    /// `true` when the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let line_number = addr >> self.line_shift;
        let tag = line_number >> self.sets_shift;
        let set = self.set_index(line_number);
        let base = set * self.ways;
        self.sets[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` (a coherence action from a
    /// remote writer). Returns `true` if the line was resident.
    ///
    /// The next miss on the same line is classified as a coherence miss.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_number = addr >> self.line_shift;
        let tag = line_number >> self.sets_shift;
        let set = self.set_index(line_number);
        let base = set * self.ways;
        if let Some(line) = self.sets[base..base + self.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.valid = false;
            line.dirty = false;
            self.stats.invalidations_received += 1;
            self.invalidated.insert(line_number << self.line_shift);
            // Bound the classification set; correctness does not depend on
            // it and coherence traffic is rare by design.
            if self.invalidated.len() > 1 << 16 {
                self.invalidated.clear();
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
impl SetAssocCache {
    /// The pre-optimization two-pass `access`, kept verbatim: find the hit
    /// with one scan, then re-scan with `min_by_key` for the victim. The
    /// `access_equivalence` proptest pins the optimized single-pass walk
    /// access-for-access identical to this on random geometries, policies,
    /// and address streams.
    fn access_reference(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        self.stats.accesses += 1;
        if self.policy.should_clear_stamps() {
            for line in &mut self.sets {
                line.stamp = 0;
            }
        }
        let line_number = addr >> self.line_shift;
        let tag = line_number >> self.geometry.sets().trailing_zeros();
        let set = self.set_index(line_number);
        let base = set * self.ways;
        let clock = self.clock;
        let touch = self.policy.touch_stamp(clock);
        let ways = &mut self.sets[base..base + self.ways];

        // Hit path.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            if let Some(stamp) = touch {
                line.stamp = stamp;
            }
            line.dirty |= write;
            return Access::Hit;
        }

        // Miss: classify, then fill via the policy's victim (minimum
        // stamp among valid lines; invalid lines are always preferred).
        self.stats.misses += 1;
        let line_addr = line_number << self.line_shift;
        let coherence = self.invalidated.remove(&line_addr);
        if coherence {
            self.stats.coherence_misses += 1;
        }
        let Some(victim) = ways.iter_mut().min_by_key(|l| (l.valid, l.stamp)) else {
            return Access::Miss {
                evicted: None,
                coherence,
            };
        };
        let mut evicted = None;
        if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            let victim_line = (victim.tag << self.geometry.sets().trailing_zeros()
                | set as u64)
                << self.line_shift;
            evicted = Some(Evicted {
                addr: victim_line,
                dirty: victim.dirty,
            });
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.policy.fill_stamp(clock),
        };
        Access::Miss { evicted, coherence }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::config::CacheGeometry;
    use proptest::prelude::*;

    fn small() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        SetAssocCache::new(CacheGeometry::new(512, 64, 2).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(c.access(0x103F, false).is_hit(), "same 64 B line");
        assert!(!c.access(0x1040, false).is_hit(), "next line");
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets × line = 256 B).
        c.access(0x0000, false);
        c.access(0x0100, false);
        c.access(0x0000, false); // refresh line A
        c.access(0x0200, false); // evicts B (LRU)
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0100));
        assert!(c.contains(0x0200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x0000, true); // dirty A
        c.access(0x0100, false);
        let access = c.access(0x0200, false);
        assert_eq!(access.dirty_writeback(), Some(0x0000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_reports_victim_without_writeback() {
        let mut c = small();
        c.access(0x0000, false);
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Access::Miss {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.addr, 0x0000);
                assert!(!e.dirty);
            }
            other => panic!("expected clean eviction, got {other:?}"),
        }
        // Cold fill into a non-full set evicts nothing.
        let mut c2 = small();
        match c2.access(0x0000, false) {
            Access::Miss { evicted: None, .. } => {}
            other => panic!("expected no victim, got {other:?}"),
        }
    }

    #[test]
    fn invalidation_classifies_next_miss_as_coherence() {
        let mut c = small();
        c.access(0x0000, false);
        assert!(c.invalidate(0x0000));
        assert!(!c.invalidate(0x0000), "already gone");
        match c.access(0x0000, false) {
            Access::Miss {
                coherence: true, ..
            } => {}
            other => panic!("expected coherence miss, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.coherence_misses, 1);
        assert_eq!(s.invalidations_received, 1);
        // Re-fetched line misses later are NOT coherence misses.
        c.access(0x0100, false);
        c.access(0x0200, false); // evicts 0x0000 by capacity eventually
        match c.access(0x0000, false) {
            Access::Hit => {}
            Access::Miss { coherence, .. } => assert!(!coherence),
        }
    }

    #[test]
    fn write_marks_line_dirty_on_hit_too() {
        let mut c = small();
        c.access(0x0000, false); // clean fill
        c.access(0x0000, true); // dirtied by hit
        c.access(0x0100, false);
        let access = c.access(0x0200, false);
        assert!(
            access.dirty_writeback().is_some(),
            "hit-write should dirty the line, got {access:?}"
        );
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(0x0000, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x0000, false).is_hit(), "contents survive");
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = small();
        assert_eq!(c.line_addr(0x1234), 0x1200);
        assert_eq!(c.line_addr(0x1240), 0x1240);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        // 32 KB 8-way: hold a 16 KB working set with zero steady misses.
        let mut c = SetAssocCache::new(CacheGeometry::new(32 << 10, 64, 8).unwrap());
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for &a in &lines {
            c.access(a, false);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a, false).is_hit());
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // 4 KB direct-ish cache cyclically scanning 8 KB misses every time.
        let mut c = SetAssocCache::new(CacheGeometry::new(4 << 10, 64, 1).unwrap());
        let lines: Vec<u64> = (0..128).map(|i| i * 64).collect();
        for _ in 0..3 {
            for &a in &lines {
                c.access(a, false);
            }
        }
        assert!(
            c.stats().miss_ratio() > 0.99,
            "cyclic scan over 2x capacity under LRU thrashes"
        );
    }

    #[test]
    fn policies_behave_differently_under_streaming() {
        use crate::policy::ReplacementPolicy;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // A hot set that fits (32 lines) mixed with a cold stream that
        // does not: judicious policies keep the hot set resident.
        let geometry = CacheGeometry::new(4 << 10, 64, 4).unwrap(); // 64 lines
        let miss_ratio = |policy: ReplacementPolicy| {
            let mut c = SetAssocCache::with_policy(geometry, policy);
            let mut rng = SmallRng::seed_from_u64(77);
            let mut hot_misses = 0u64;
            let mut hot_refs = 0u64;
            for i in 0..200_000u64 {
                if rng.gen_bool(0.5) {
                    let hot = (i * 2_654_435_761 % 32) * 64;
                    hot_refs += 1;
                    if !c.access(hot, false).is_hit() {
                        hot_misses += 1;
                    }
                } else {
                    // Cold stream: fresh line every time.
                    c.access((1 << 20) + i * 64, false);
                }
            }
            hot_misses as f64 / hot_refs as f64
        };
        let lru = miss_ratio(ReplacementPolicy::Lru);
        let fifo = miss_ratio(ReplacementPolicy::Fifo);
        let random = miss_ratio(ReplacementPolicy::Random);
        let bip = miss_ratio(ReplacementPolicy::StreamResistant);
        let nru = miss_ratio(ReplacementPolicy::Nru);
        // The stream-resistant policy protects the hot set from the scan.
        assert!(
            bip < lru * 0.5,
            "stream-resistant {bip:.3} should beat LRU {lru:.3} under streaming"
        );
        // All ratios are sane probabilities.
        for (name, v) in [
            ("lru", lru),
            ("fifo", fifo),
            ("random", random),
            ("bip", bip),
            ("nru", nru),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} ratio {v}");
        }
    }

    #[test]
    fn non_lru_policies_preserve_hit_semantics() {
        use crate::policy::ReplacementPolicy;
        for policy in ReplacementPolicy::ALL {
            let mut c = SetAssocCache::with_policy(
                CacheGeometry::new(4096, 64, 2).unwrap(),
                policy,
            );
            assert_eq!(c.policy(), policy);
            assert!(!c.access(0x40, false).is_hit(), "{policy}: cold miss");
            assert!(c.access(0x40, false).is_hit(), "{policy}: then hit");
            assert!(c.access(0x7F, true).is_hit(), "{policy}: same line");
            // Invalid ways are always filled before evicting valid lines.
            let mut c2 = SetAssocCache::with_policy(
                CacheGeometry::new(4096, 64, 2).unwrap(),
                policy,
            );
            c2.access(0x0000, false);
            c2.access(0x1000, false); // same set, second way
            assert!(c2.contains(0x0000), "{policy}: no premature eviction");
            assert!(c2.contains(0x1000), "{policy}: fill used free way");
        }
    }

    /// Exhaustive randomized form of `access_equivalence` that runs even
    /// where the `proptest` crate is stubbed out: walks many random
    /// geometries × every policy × random address/write/invalidate
    /// streams and requires the optimized `access` and the naive
    /// `access_reference` to agree access-for-access.
    #[test]
    fn access_equivalence_randomized() {
        use crate::policy::ReplacementPolicy;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x0DB_CAC4E);
        for trial in 0..200 {
            let line = 1u64 << rng.gen_range(5u32..8); // 32..128 B
            let sets = 1u64 << rng.gen_range(0u32..5); // 1..16 sets
            let ways = rng.gen_range(1u64..5);
            let policy = ReplacementPolicy::ALL[rng.gen_range(0..ReplacementPolicy::ALL.len())];
            let geometry =
                CacheGeometry::new(line * sets * ways, line as u32, ways as u32).unwrap();
            let mut fast = SetAssocCache::with_policy(geometry, policy);
            let mut naive = SetAssocCache::with_policy(geometry, policy);
            for op in 0..400 {
                let addr = rng.gen_range(0u64..1 << 14);
                let write = rng.gen_bool(0.3);
                if rng.gen_ratio(1, 16) {
                    assert_eq!(fast.invalidate(addr), naive.invalidate(addr));
                }
                let a = fast.access(addr, write);
                let b = naive.access_reference(addr, write);
                assert_eq!(
                    a, b,
                    "trial {trial} op {op}: {policy} diverged at addr {addr:#x} write {write}"
                );
            }
            assert_eq!(fast.stats(), naive.stats(), "trial {trial}: stats diverged");
        }
    }

    proptest! {
        /// Accesses never panic and stats stay consistent for arbitrary
        /// address streams.
        #[test]
        fn stats_consistency(
            addrs in proptest::collection::vec((0u64..1 << 20, any::<bool>()), 1..500)
        ) {
            let mut c = small();
            for &(a, w) in &addrs {
                c.access(a, w);
            }
            let s = c.stats();
            prop_assert_eq!(s.accesses, addrs.len() as u64);
            prop_assert!(s.misses <= s.accesses);
            prop_assert!(s.coherence_misses <= s.misses);
            prop_assert!(s.writebacks <= s.misses);
        }

        /// Immediately repeating an access always hits.
        #[test]
        fn temporal_locality_always_hits(addr in 0u64..1 << 30) {
            let mut c = small();
            c.access(addr, false);
            prop_assert!(c.access(addr, false).is_hit());
            prop_assert!(c.contains(addr));
        }

        /// The optimized single-pass `access` is access-for-access
        /// identical to the naive two-pass `access_reference` — same
        /// hit/miss classification, same victim, same writeback flag —
        /// across random geometries, policies, address streams, and
        /// interleaved coherence invalidations.
        #[test]
        fn access_equivalence(
            line_shift in 5u32..8,          // 32..128 B lines
            sets_shift in 0u32..5,          // 1..16 sets
            ways in 1u64..5,
            policy_idx in 0usize..crate::policy::ReplacementPolicy::ALL.len(),
            ops in proptest::collection::vec(
                (0u64..1 << 14, any::<bool>(), 0u8..16),
                1..400,
            )
        ) {
            let line = 1u64 << line_shift;
            let sets = 1u64 << sets_shift;
            let geometry =
                CacheGeometry::new(line * sets * ways, line as u32, ways as u32).unwrap();
            let policy = crate::policy::ReplacementPolicy::ALL[policy_idx];
            let mut fast = SetAssocCache::with_policy(geometry, policy);
            let mut naive = SetAssocCache::with_policy(geometry, policy);
            for &(addr, write, inv) in &ops {
                // Occasionally invalidate first, so coherence-miss
                // classification is exercised on both paths.
                if inv == 0 {
                    prop_assert_eq!(fast.invalidate(addr), naive.invalidate(addr));
                }
                let a = fast.access(addr, write);
                let b = naive.access_reference(addr, write);
                prop_assert_eq!(a, b, "diverged at addr {:#x} write {}", addr, write);
            }
            prop_assert_eq!(fast.stats(), naive.stats());
        }
    }
}
