//! Substrate microbenchmarks: the data structures the simulation's
//! throughput stands on, plus the observer seam's disabled-path cost
//! (the "zero-cost when unregistered" claim, measured).

use odb_bench::harness::{bench, black_box};
use odb_core::config::{CacheGeometry, SystemConfig};
use odb_des::{EventQueue, ObserverHub, SimEvent, SimTime};
use odb_engine::buffer::BufferCache;
use odb_engine::observe::StatsObserver;
use odb_engine::schema::PageMap;
use odb_engine::txn::TxnSampler;
use odb_memsim::cache::SetAssocCache;
use odb_memsim::dist::Zipf;
use odb_memsim::hierarchy::{CpuHierarchy, Space};
use odb_memsim::tlb::Tlb;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_cache() {
    let geometry = CacheGeometry::new(1 << 20, 64, 8).expect("geometry");
    let mut cache = SetAssocCache::new(geometry);
    let mut rng = SmallRng::seed_from_u64(1);
    let zipf = Zipf::new(1 << 16, 0.9).expect("zipf");
    bench("cache/l3_access_zipf", || {
        let line = zipf.sample(&mut rng) * 64;
        black_box(cache.access(line, false))
    });
    let mut hierarchy = CpuHierarchy::new(&SystemConfig::xeon_quad()).expect("hierarchy");
    bench("cache/full_hierarchy_data_ref", || {
        let addr = zipf.sample(&mut rng) * 64;
        black_box(hierarchy.access_data(addr, false, Space::User))
    });
    let mut tlb = Tlb::new(64).expect("tlb");
    let pages = Zipf::new(1 << 12, 0.9).expect("zipf");
    bench("cache/tlb_access", || {
        black_box(tlb.access(pages.sample(&mut rng) << 12))
    });
}

fn bench_buffer() {
    let mut cache = BufferCache::new(100_000);
    let zipf = Zipf::new(400_000, 0.9).expect("zipf");
    let mut rng = SmallRng::seed_from_u64(2);
    bench("buffer_cache/lru_access_mixed", || {
        let page = zipf.sample(&mut rng);
        black_box(cache.access(page, page.is_multiple_of(5)))
    });
}

fn bench_event_queue() {
    let mut q = EventQueue::new();
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..1_000u64 {
        q.schedule(SimTime::from_nanos(i * 97), i);
    }
    let mut t = 100_000u64;
    bench("des/schedule_pop_1k_horizon", || {
        let (when, _) = q.pop().expect("queue stays full");
        t = t.max(when.as_nanos()) + rng.gen_range(1..200u64);
        q.schedule(SimTime::from_nanos(t), 0);
    });
}

/// The observer seam's hot-path costs: an `emit_with` against an empty
/// hub must be nothing but a branch (the engine runs this on every
/// transaction event), and a registered stats observer should still be
/// a handful of nanoseconds.
fn bench_observe() {
    let mut empty = ObserverHub::new();
    let mut pid = 0u32;
    bench("observe/emit_with_empty_hub", || {
        pid = pid.wrapping_add(1);
        empty.emit_with(SimTime::ZERO, || SimEvent::LockWait { pid });
        black_box(pid)
    });
    let mut hub = ObserverHub::new();
    hub.register(Box::new(StatsObserver::default()));
    let mut n = 0u64;
    bench("observe/emit_charged_stats_observer", || {
        n = n.wrapping_add(17);
        hub.emit(
            SimTime::ZERO,
            &SimEvent::Charged {
                os: false,
                instructions: n,
            },
        );
        black_box(n)
    });
}

fn bench_workload() {
    let mut sampler = TxnSampler::new(PageMap::new(800)).expect("sampler");
    let mut rng = SmallRng::seed_from_u64(4);
    bench("workload/txn_sample_800w", || {
        black_box(sampler.sample(&mut rng).touches.len())
    });
    let zipf = Zipf::new(100_000, 1.0).expect("zipf");
    bench("workload/zipf_sample_100k", || {
        black_box(zipf.sample(&mut rng))
    });
}

fn main() {
    bench_cache();
    bench_buffer();
    bench_event_queue();
    bench_observe();
    bench_workload();
}
