//! Ordinary least-squares linear regression (§6.1).
//!
//! The paper approximates CPI and MPI trends with straight lines fitted by
//! least squares within each behavioural region. [`LinearFit`] is the
//! building block that [`crate::pivot::TwoSegmentFit`] composes.

use crate::error::Error;
use serde::{Deserialize, Serialize};

/// A fitted line `y = slope × x + intercept` with goodness-of-fit data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Sum of squared residuals.
    pub sse: f64,
    /// Coefficient of determination in `[0, 1]`; `1.0` for a perfect fit.
    /// Defined as `1` when the data has zero variance and zero residual.
    pub r_squared: f64,
    /// Number of points the fit used.
    pub n: usize,
    /// Standard error of the slope estimate (`None` for n ≤ 2, where the
    /// residual degrees of freedom vanish).
    pub slope_stderr: Option<f64>,
    /// Standard error of the intercept estimate (`None` for n ≤ 2).
    pub intercept_stderr: Option<f64>,
}

impl LinearFit {
    /// Fits a line to `(xs[i], ys[i])` by ordinary least squares.
    ///
    /// # Errors
    ///
    /// * [`Error::LengthMismatch`] if the slices differ in length.
    /// * [`Error::TooFewPoints`] if fewer than two points are given.
    /// * [`Error::DegenerateXs`] if all `x` values are equal.
    /// * [`Error::NonFinite`] if any coordinate is NaN or infinite.
    ///
    /// ```
    /// use odb_core::regression::LinearFit;
    ///
    /// let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!(fit.intercept.abs() < 1e-12);
    /// assert!((fit.r_squared - 1.0).abs() < 1e-12);
    /// # Ok::<(), odb_core::Error>(())
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, Error> {
        if xs.len() != ys.len() {
            return Err(Error::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(Error::TooFewPoints {
                needed: 2,
                got: xs.len(),
            });
        }
        if xs.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFinite { what: "x" });
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFinite { what: "y" });
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(Error::DegenerateXs);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let mut sse = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let r = y - (slope * x + intercept);
            sse += r * r;
        }
        let r_squared = if syy > 0.0 {
            (1.0 - sse / syy).clamp(0.0, 1.0)
        } else {
            1.0 // zero-variance data perfectly explained by a flat line
        };
        // Classical OLS standard errors, when residual dof exist.
        let (slope_stderr, intercept_stderr) = if xs.len() > 2 {
            let dof = (xs.len() - 2) as f64;
            let s2 = sse / dof;
            let se_slope = (s2 / sxx).sqrt();
            let sum_x2: f64 = xs.iter().map(|x| x * x).sum();
            let se_intercept = (s2 * sum_x2 / (n * sxx)).sqrt();
            (Some(se_slope), Some(se_intercept))
        } else {
            (None, None)
        };
        Ok(Self {
            slope,
            intercept,
            sse,
            r_squared,
            n: xs.len(),
            slope_stderr,
            intercept_stderr,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The `x` at which this line intersects `other`, or `None` when the
    /// lines are (numerically) parallel.
    pub fn intersection_x(&self, other: &LinearFit) -> Option<f64> {
        let dslope = self.slope - other.slope;
        if dslope.abs() < 1e-12 {
            return None;
        }
        let x = (other.intercept - self.intercept) / dslope;
        x.is_finite().then_some(x)
    }
}

/// A Theil–Sen robust line estimate: the median of all pairwise slopes,
/// with the intercept chosen as the median of `y − slope × x`.
///
/// Hardware-counter series carry occasional sampling outliers (the
/// paper's own Fig 11 shows them at small `W`); the Theil–Sen estimator
/// tolerates up to ~29% contamination where least squares chases every
/// outlier. Useful as a cross-check on the two-segment fits.
///
/// # Errors
///
/// Same conditions as [`LinearFit::fit`].
///
/// ```
/// use odb_core::regression::theil_sen;
///
/// // One wild outlier barely moves the robust fit.
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ys = [2.0, 4.0, 6.0, 80.0, 10.0];
/// let (slope, _intercept) = theil_sen(&xs, &ys)?;
/// assert!((slope - 2.0).abs() < 0.7, "robust slope {slope}");
/// # Ok::<(), odb_core::Error>(())
/// ```
pub fn theil_sen(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), Error> {
    if xs.len() != ys.len() {
        return Err(Error::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(Error::TooFewPoints {
            needed: 2,
            got: xs.len(),
        });
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(Error::NonFinite { what: "input" });
    }
    let mut slopes = Vec::with_capacity(xs.len() * (xs.len() - 1) / 2);
    for i in 0..xs.len() {
        for j in (i + 1)..xs.len() {
            let dx = xs[j] - xs[i];
            if dx != 0.0 {
                slopes.push((ys[j] - ys[i]) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return Err(Error::DegenerateXs);
    }
    let slope = median(&mut slopes);
    let mut intercepts: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| y - slope * x)
        .collect();
    let intercept = median(&mut intercepts);
    Ok((slope, intercept))
}

/// In-place median (average of the middle two for even counts).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Mean absolute percentage error between predictions and actuals, in
/// `[0, ∞)`; pairs with a zero actual are skipped.
///
/// Used by EXPERIMENTS.md to score extrapolation quality (§6.2).
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] when lengths differ, and
/// [`Error::TooFewPoints`] when no pair has a nonzero actual.
pub fn mape(predicted: &[f64], actual: &[f64]) -> Result<f64, Error> {
    if predicted.len() != actual.len() {
        return Err(Error::LengthMismatch {
            xs: predicted.len(),
            ys: actual.len(),
        });
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(Error::TooFewPoints { needed: 1, got: 0 });
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_line_recovered() {
        let xs = [10.0, 50.0, 100.0, 500.0, 800.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.004 * x + 3.0).collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 0.004).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-10);
        assert!(f.sse < 1e-18);
        assert_eq!(f.n, 5);
    }

    #[test]
    fn standard_errors_behave() {
        // Exact fit: zero residual, zero standard errors.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!(f.slope_stderr.unwrap() < 1e-9);
        assert!(f.intercept_stderr.unwrap() < 1e-9);
        // Two points: no residual dof, no standard errors.
        let f2 = LinearFit::fit(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        assert!(f2.slope_stderr.is_none());
        assert!(f2.intercept_stderr.is_none());
        // Noisier data has larger slope uncertainty than cleaner data.
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fnoisy = LinearFit::fit(&xs, &noisy).unwrap();
        assert!(fnoisy.slope_stderr.unwrap() > f.slope_stderr.unwrap());
    }

    #[test]
    fn noisy_line_has_residual_and_good_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.sse > 0.0);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn flat_data_is_perfectly_fit_by_flat_line() {
        let f = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            LinearFit::fit(&[1.0], &[1.0]),
            Err(Error::TooFewPoints { needed: 2, got: 1 })
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0], &[1.0]),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(
            LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]),
            Err(Error::DegenerateXs)
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(Error::NonFinite { what: "x" })
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0], &[1.0, f64::INFINITY]),
            Err(Error::NonFinite { what: "y" })
        ));
    }

    #[test]
    fn intersection_of_crossing_lines() {
        let a = LinearFit {
            slope: 1.0,
            intercept: 0.0,
            sse: 0.0,
            r_squared: 1.0,
            n: 2,
            slope_stderr: None,
            intercept_stderr: None,
        };
        let b = LinearFit {
            slope: -1.0,
            intercept: 10.0,
            sse: 0.0,
            r_squared: 1.0,
            n: 2,
            slope_stderr: None,
            intercept_stderr: None,
        };
        assert!((a.intersection_x(&b).unwrap() - 5.0).abs() < 1e-12);
        assert!(a.intersection_x(&a).is_none());
    }

    #[test]
    fn mape_scores_errors() {
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]).unwrap();
        assert!((m - 0.1).abs() < 1e-12);
        assert!(mape(&[1.0], &[0.0]).is_err());
        assert!(mape(&[1.0, 2.0], &[1.0]).is_err());
        // zero-actual pairs skipped, not fatal, when another pair exists
        let m = mape(&[1.0, 50.0], &[0.0, 100.0]).unwrap();
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn theil_sen_resists_outliers_where_ols_does_not() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        ys[7] = 500.0; // one corrupted sample
        let ols = LinearFit::fit(&xs, &ys).unwrap();
        let (robust_slope, robust_intercept) = theil_sen(&xs, &ys).unwrap();
        assert!((robust_slope - 3.0).abs() < 0.2, "robust {robust_slope}");
        assert!((robust_intercept - 1.0).abs() < 1.5);
        assert!(
            (ols.slope - 3.0).abs() > 2.0 * (robust_slope - 3.0).abs(),
            "OLS should be visibly pulled: {}",
            ols.slope
        );
    }

    #[test]
    fn theil_sen_validates_inputs() {
        assert!(theil_sen(&[1.0], &[1.0]).is_err());
        assert!(theil_sen(&[1.0, 2.0], &[1.0]).is_err());
        assert!(theil_sen(&[2.0, 2.0], &[1.0, 3.0]).is_err());
        assert!(theil_sen(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        // Exact line round-trip.
        let (a, b) = theil_sen(&[0.0, 1.0, 2.0], &[5.0, 7.0, 9.0]).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 5.0).abs() < 1e-12);
    }

    proptest! {
        /// Theil–Sen also recovers exact lines.
        #[test]
        fn theil_sen_exact_line_roundtrip(
            a in -100.0f64..100.0,
            b in -1e4f64..1e4,
            n in 3usize..15,
        ) {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 7.0).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            let (sa, sb) = theil_sen(&xs, &ys).unwrap();
            prop_assert!((sa - a).abs() < 1e-6 * (1.0 + a.abs()));
            prop_assert!((sb - b).abs() < 1e-5 * (1.0 + b.abs()));
        }
    }

    proptest! {
        /// Fitting y = a·x + b exactly recovers (a, b) for any finite
        /// coefficients and ≥2 distinct xs.
        #[test]
        fn exact_line_roundtrip(
            a in -1e3f64..1e3,
            b in -1e6f64..1e6,
            x0 in -1e3f64..1e3,
            step in 0.1f64..100.0,
            n in 2usize..30,
        ) {
            let xs: Vec<f64> = (0..n).map(|i| x0 + step * i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            let f = LinearFit::fit(&xs, &ys).unwrap();
            prop_assert!((f.slope - a).abs() < 1e-6 * (1.0 + a.abs()));
            prop_assert!((f.intercept - b).abs() < 1e-5 * (1.0 + b.abs()));
        }

        /// The least-squares line always passes through the centroid.
        #[test]
        fn passes_through_centroid(
            ys in proptest::collection::vec(-1e3f64..1e3, 3..20),
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let f = LinearFit::fit(&xs, &ys).unwrap();
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            prop_assert!((f.predict(mx) - my).abs() < 1e-6);
        }

        /// R² stays within [0, 1] and SSE is non-negative.
        #[test]
        fn goodness_of_fit_bounds(
            ys in proptest::collection::vec(-1e3f64..1e3, 2..20),
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let f = LinearFit::fit(&xs, &ys).unwrap();
            prop_assert!(f.sse >= 0.0);
            prop_assert!((0.0..=1.0).contains(&f.r_squared));
        }
    }
}
