//! Error type shared by the analytical models.

use std::fmt;

/// Errors produced by the analytical models in this crate.
///
/// All fitting and configuration routines validate their inputs and return
/// this type rather than panicking, so callers can drive them with arbitrary
/// measured data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A regression was attempted on fewer points than the model requires.
    ///
    /// `needed` is the minimum number of points, `got` the number supplied.
    TooFewPoints {
        /// Minimum number of points required by the model.
        needed: usize,
        /// Number of points actually supplied.
        got: usize,
    },
    /// The `x` and `y` slices passed to a regression differ in length.
    LengthMismatch {
        /// Length of the `x` slice.
        xs: usize,
        /// Length of the `y` slice.
        ys: usize,
    },
    /// All `x` values are identical, so a slope cannot be determined.
    DegenerateXs,
    /// A value was not finite (NaN or infinite) where a finite number is
    /// required.
    NonFinite {
        /// Name of the offending quantity.
        what: &'static str,
    },
    /// A configuration field failed validation.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable reason the value was rejected.
        reason: String,
    },
    /// The data points are not sorted by strictly increasing `x`, which the
    /// two-segment fit requires to define contiguous regions.
    UnsortedXs,
    /// A simulator component observed internal state that violates one of
    /// its invariants (a lock released by a non-holder, a flush completion
    /// with no flush in flight, a poisoned CDF, …).
    ///
    /// Unlike [`Error::InvalidConfig`], which rejects *inputs*, this
    /// variant reports corruption *inside* a running simulation. Callers
    /// should treat it as fatal for the affected simulation point but may
    /// continue with other points; the state it describes is not
    /// recoverable.
    CorruptState {
        /// The component that detected the corruption, e.g.
        /// `"engine::locks"` or `"memsim::dist"`.
        component: &'static str,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl Error {
    /// Shorthand constructor for [`Error::CorruptState`].
    pub fn corrupt(component: &'static str, detail: impl Into<String>) -> Self {
        Error::CorruptState {
            component,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooFewPoints { needed, got } => {
                write!(f, "regression needs at least {needed} points, got {got}")
            }
            Error::LengthMismatch { xs, ys } => {
                write!(f, "x and y lengths differ ({xs} vs {ys})")
            }
            Error::DegenerateXs => write!(f, "all x values are identical"),
            Error::NonFinite { what } => write!(f, "{what} is not a finite number"),
            Error::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field `{field}`: {reason}")
            }
            Error::UnsortedXs => write!(f, "x values must be strictly increasing"),
            Error::CorruptState { component, detail } => {
                write!(f, "corrupt state in {component}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            Error::TooFewPoints { needed: 4, got: 1 },
            Error::LengthMismatch { xs: 3, ys: 2 },
            Error::DegenerateXs,
            Error::NonFinite { what: "cpi" },
            Error::InvalidConfig {
                field: "warehouses",
                reason: "must be nonzero".to_owned(),
            },
            Error::UnsortedXs,
            Error::corrupt("engine::locks", "release of a lock that was never acquired"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
