//! Per-instruction event rates — the interface between the cache
//! simulation and the timing model.
//!
//! A characterization run (see [`crate::trace::Characterizer`]) boils a
//! configuration down to events-per-instruction in each space. The engine
//! multiplies these by instruction counts to advance simulated time and to
//! drive the EMON counters.

use crate::hierarchy::HierarchyCounts;
use odb_core::breakdown::StallCosts;
use serde::{Deserialize, Serialize};

/// Events per instruction for one execution space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceRates {
    /// Trace-cache misses per instruction.
    pub tc_miss: f64,
    /// L2 misses per instruction (code + data).
    pub l2_miss: f64,
    /// L3 misses per instruction — the MPI of Figs 13–15.
    pub l3_miss: f64,
    /// Portion of `l3_miss` caused by coherence invalidations.
    pub l3_coherence_miss: f64,
    /// Dirty L3 writebacks per instruction (extra bus transactions).
    pub l3_writeback: f64,
    /// TLB misses per instruction.
    pub tlb_miss: f64,
    /// Mispredicted branches per instruction. Not cache-derived: the
    /// paper observes this component is flat across the configuration
    /// space, so it enters as a workload constant.
    pub branch_mispred: f64,
    /// Residual stall CPI (pipeline hazards, resource stalls) folded into
    /// the paper's "Other" component.
    pub other_stall_cpi: f64,
}

impl SpaceRates {
    /// Derives rates from simulated counts plus the non-simulated
    /// constants; `None` when no instructions were retired.
    pub fn from_counts(
        counts: &HierarchyCounts,
        branch_mispred: f64,
        other_stall_cpi: f64,
    ) -> Option<Self> {
        if counts.instructions == 0 {
            return None;
        }
        let instr = counts.instructions as f64;
        Some(Self {
            tc_miss: counts.tc_misses as f64 / instr,
            l2_miss: counts.l2_misses as f64 / instr,
            l3_miss: counts.l3_misses as f64 / instr,
            l3_coherence_miss: counts.l3_coherence_misses as f64 / instr,
            l3_writeback: counts.l3_writebacks as f64 / instr,
            tlb_miss: counts.tlb_misses as f64 / instr,
            branch_mispred,
            other_stall_cpi,
        })
    }

    /// The CPI these rates imply under the paper's Table 4 cost model,
    /// given the current IOQ latency (which inflates each L3 miss beyond
    /// the unloaded baseline).
    ///
    /// This is the timing law the full-system simulator runs on; the
    /// measured counters then reproduce it, which is exactly the
    /// self-consistency the iron law asserts.
    pub fn cpi(&self, costs: &StallCosts, ioq_latency_cycles: f64) -> f64 {
        let l3_cost =
            costs.l3_miss + (ioq_latency_cycles - costs.bus_transaction_1p).max(0.0);
        costs.instruction
            + self.branch_mispred * costs.branch_misprediction
            + self.tlb_miss * costs.tlb_miss
            + self.tc_miss * costs.tc_miss
            + (self.l2_miss - self.l3_miss).max(0.0) * costs.l2_miss
            + self.l3_miss * l3_cost
            + self.other_stall_cpi
    }

    /// Bus transactions generated per instruction: every L3 miss fetches a
    /// line and every dirty victim writes one back.
    pub fn bus_transactions_per_instr(&self) -> f64 {
        self.l3_miss + self.l3_writeback
    }
}

/// Rates for both spaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRates {
    /// User-space rates.
    pub user: SpaceRates,
    /// OS-space rates.
    pub os: SpaceRates,
}

impl EventRates {
    /// Instruction-weighted blend of the user and OS CPIs: the overall
    /// CPI for a stream whose OS instruction share is `os_fraction`.
    pub fn blended_cpi(
        &self,
        costs: &StallCosts,
        ioq_latency_cycles: f64,
        os_fraction: f64,
    ) -> f64 {
        let f = os_fraction.clamp(0.0, 1.0);
        (1.0 - f) * self.user.cpi(costs, ioq_latency_cycles)
            + f * self.os.cpi(costs, ioq_latency_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rates() -> SpaceRates {
        SpaceRates {
            tc_miss: 0.003,
            l2_miss: 0.02,
            l3_miss: 0.008,
            l3_coherence_miss: 0.0001,
            l3_writeback: 0.002,
            tlb_miss: 0.002,
            branch_mispred: 0.004,
            other_stall_cpi: 0.25,
        }
    }

    #[test]
    fn from_counts_divides_by_instructions() {
        let counts = HierarchyCounts {
            instructions: 1_000_000,
            tc_misses: 3_000,
            l2_misses: 20_000,
            l3_misses: 8_000,
            l3_coherence_misses: 100,
            l3_writebacks: 2_000,
            tlb_misses: 2_000,
            ..Default::default()
        };
        let r = SpaceRates::from_counts(&counts, 0.004, 0.25).unwrap();
        assert_eq!(r, sample_rates());
        assert!(SpaceRates::from_counts(&HierarchyCounts::default(), 0.0, 0.0).is_none());
    }

    #[test]
    fn cpi_matches_hand_computation_at_unloaded_bus() {
        let r = sample_rates();
        let costs = StallCosts::xeon();
        let expected = 0.5
            + 0.004 * 20.0
            + 0.002 * 20.0
            + 0.003 * 20.0
            + (0.02 - 0.008) * 16.0
            + 0.008 * 300.0
            + 0.25;
        assert!((r.cpi(&costs, 102.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn loaded_bus_raises_cpi_via_l3_only() {
        let r = sample_rates();
        let costs = StallCosts::xeon();
        let base = r.cpi(&costs, 102.0);
        let loaded = r.cpi(&costs, 152.0);
        assert!((loaded - base - 0.008 * 50.0).abs() < 1e-12);
        // Below-baseline IOQ readings never grant a discount.
        assert_eq!(r.cpi(&costs, 50.0), base);
    }

    #[test]
    fn bus_transactions_include_writebacks() {
        let r = sample_rates();
        assert!((r.bus_transactions_per_instr() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn blended_cpi_interpolates() {
        let user = sample_rates();
        let os = SpaceRates {
            l3_miss: 0.004,
            l2_miss: 0.01,
            ..user
        };
        let rates = EventRates { user, os };
        let costs = StallCosts::xeon();
        let u = user.cpi(&costs, 102.0);
        let o = os.cpi(&costs, 102.0);
        assert!(o < u);
        let b = rates.blended_cpi(&costs, 102.0, 0.25);
        assert!((b - (0.75 * u + 0.25 * o)).abs() < 1e-12);
        assert_eq!(rates.blended_cpi(&costs, 102.0, 0.0), u);
        assert_eq!(rates.blended_cpi(&costs, 102.0, 1.0), o);
        // Out-of-range fractions clamp.
        assert_eq!(rates.blended_cpi(&costs, 102.0, 2.0), o);
    }
}
