//! The ODB workload simulator: a from-scratch, full-system model of the
//! paper's experimental subject.
//!
//! The paper runs the Oracle Database Benchmark — an order-entry OLTP
//! workload over Oracle 9iR2 — on a 4-way Xeon server and measures it with
//! hardware counters. None of that stack is available here, so this crate
//! rebuilds the pieces that *determine the measured behaviour*:
//!
//! * [`schema`] — the warehouse/district/customer database layout and its
//!   page map (≈100 MB, 12,800 8 KB pages per warehouse);
//! * [`txn`] — the five transaction types, their mix, instruction budgets,
//!   page-touch profiles, lock demands and redo volumes;
//! * [`buffer`] — the SGA database buffer cache (page-level LRU over
//!   ~344k frames) whose misses become disk reads;
//! * [`locks`] — block-granularity lock manager; contention on the few
//!   district blocks at small `W` produces the context-switch spike of
//!   Fig 8;
//! * [`writers`] — the log writer (group commit, ≈6 KB redo per
//!   transaction) and database writer (dirty-page writeback with
//!   coalescing) background behaviours;
//! * [`profile`] — translation of a configuration into `odb-memsim`
//!   characterization inputs (the [`profile::OdbRefSource`] emits the same
//!   page population the engine touches);
//! * [`system`] — the discrete-event full-system simulation: server
//!   processes on a run queue over `P` CPUs, timing driven by
//!   characterized event rates and the live bus model, I/O through the
//!   disk array;
//! * [`measure`] — the measurement pipeline: characterize → warm up →
//!   sample, with an optional EMON noise stage, producing the
//!   [`odb_core::metrics::Measurement`] rows behind every figure.
//!
//! # Quickstart
//!
//! ```no_run
//! use odb_core::config::{OltpConfig, SystemConfig, WorkloadConfig};
//! use odb_engine::{OdbSimulator, SimOptions};
//!
//! let config = OltpConfig::new(
//!     WorkloadConfig::new(100, 48)?,
//!     SystemConfig::xeon_quad(),
//! )?;
//! let measurement = OdbSimulator::new(config, SimOptions::quick())?.run()?;
//! println!("TPS {:.0}, CPI {:.2}", measurement.tps(), measurement.cpi());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Unit tests use unwrap() freely; the workspace-level
// `clippy::unwrap_used` deny applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buffer;
pub mod locks;
pub mod measure;
pub mod observe;
pub mod profile;
pub mod schema;
pub mod system;
pub mod txn;
pub mod writers;

pub use measure::{OdbSimulator, PhaseSeconds, SimOptions};
pub use observe::{LatencyObserver, LatencyStats, LogHistogram};
