//! Fixture: wall-clock time leaking into sim code (positive — must
//! trip `ambient_nondeterminism`).
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
