//! The stray-file pass: editor droppings and orphan modules.

use super::{Pass, PassContext};
use crate::report::{Lint, Violation};
use crate::source::{CrateModel, SourceFile, WorkspaceModel};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Extensions that mark editor/tooling droppings.
const STRAY_SUFFIXES: &[&str] = &[".tmp", ".bak", ".orig", ".rej", "~"];

/// Flags stray files anywhere in the repository and orphan `.rs` modules
/// under any crate's `src/` tree.
pub struct StrayFilesPass;

impl Pass for StrayFilesPass {
    fn lint(&self) -> Lint {
        Lint::StrayFile
    }

    fn description(&self) -> &'static str {
        "editor droppings (*.tmp, *.bak, ...) and orphan .rs modules no mod declaration reaches"
    }

    fn run(&self, model: &WorkspaceModel, ctx: &mut PassContext) {
        for path in &model.all_files {
            if STRAY_SUFFIXES.iter().any(|s| path.ends_with(s)) {
                ctx.push(Violation::new(
                    Lint::StrayFile,
                    path,
                    0,
                    "stray file (editor/tooling dropping); delete it or rename it into \
                     the tree properly"
                        .to_owned(),
                ));
            }
        }
        for krate in &model.crates {
            orphan_modules(krate, ctx);
        }
    }
}

/// Breadth-first module-reachability walk from the crate roots.
fn orphan_modules(krate: &CrateModel, ctx: &mut PassContext) {
    let files: HashMap<&str, &SourceFile> = krate
        .src_files
        .iter()
        .map(|f| (f.rel_path.as_str(), f))
        .collect();
    let all: BTreeSet<&str> = krate.src_rs_paths.iter().map(String::as_str).collect();
    let mut reachable: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for path in &krate.src_rs_paths {
        // Roots: lib.rs, main.rs, anything under src/bin/.
        let is_root = path.ends_with("/src/lib.rs")
            || path.ends_with("/src/main.rs")
            || path.contains("/src/bin/");
        if is_root {
            reachable.insert(path.clone());
            queue.push_back(path.clone());
        }
    }
    while let Some(path) = queue.pop_front() {
        let Some(file) = files.get(path.as_str()) else { continue };
        // Directory that child modules resolve against: the file's own
        // directory for lib.rs/main.rs/mod.rs, otherwise a subdirectory
        // named after the file (2018-style `foo.rs` + `foo/bar.rs`).
        let (dir, stem) = split_dir_stem(&path);
        let base = if stem == "lib" || stem == "main" || stem == "mod" {
            dir.to_owned()
        } else {
            format!("{dir}/{stem}")
        };
        for (_, name) in file.external_mods() {
            for candidate in [
                format!("{base}/{name}.rs"),
                format!("{base}/{name}/mod.rs"),
            ] {
                if all.contains(candidate.as_str()) && reachable.insert(candidate.clone())
                {
                    queue.push_back(candidate);
                }
            }
        }
    }
    for path in &krate.src_rs_paths {
        if !reachable.contains(path) {
            ctx.push(Violation::new(
                Lint::StrayFile,
                path,
                0,
                format!(
                    "orphan module: no `mod` declaration reaches this file from \
                     crate `{}`'s roots",
                    krate.name
                ),
            ));
        }
    }
}

/// Splits `a/b/c.rs` into (`a/b`, `c`).
fn split_dir_stem(path: &str) -> (&str, &str) {
    let (dir, file) = path.rsplit_once('/').unwrap_or(("", path));
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    (dir, stem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_dir_stem_works() {
        assert_eq!(
            split_dir_stem("crates/des/src/time.rs"),
            ("crates/des/src", "time")
        );
    }
}
