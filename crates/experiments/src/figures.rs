//! One generator per paper artifact (tables and figures), all projecting
//! the same [`Sweep`].

use crate::ladder::{ConfigPoint, PROCESSORS, TREND_WAREHOUSES, WAREHOUSES};
use crate::report::{format_num, series_table, TextTable};
use crate::runner::{Sweep, SweepOptions, SweepRow};
use odb_core::breakdown::{Component, CpiBreakdown, Event, StallCosts};
use odb_core::extrapolate::{representative_workload, Extrapolator};
use odb_core::pivot::TwoSegmentFit;
use odb_core::series::Series;

/// Builds one series per processor count of `metric(row)` over the trend
/// ladder (1200 W excluded, as the paper does after Fig 2).
pub fn metric_series<F>(sweep: &Sweep, metric: F) -> Vec<Series>
where
    F: Fn(&SweepRow) -> f64,
{
    PROCESSORS
        .iter()
        .map(|&p| {
            let mut s = Series::new(format!("{p}P"));
            for &w in &TREND_WAREHOUSES {
                if let Some(row) = sweep.row(p, w) {
                    s.push(w as f64, metric(row));
                }
            }
            s
        })
        .collect()
}

/// The operating region of one configuration (§4.1's three regions).
///
/// A configuration whose client search hit the ceiling without reaching
/// the utilization target is I/O bound (the paper's 1200 W, pinned at
/// 63%); negligible disk reads mark the cached/CPU-bound region;
/// everything between is balanced.
pub fn region_of(row: &SweepRow) -> &'static str {
    if row.saturated {
        "I/O bound"
    } else if row.measurement.disk_reads_per_txn < 0.2 {
        "CPU bound"
    } else {
        "balanced"
    }
}

/// Table 1: clients needed for ≥90% CPU utilization at each `(W, P)`.
pub fn table1(sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "1P".into(),
        "2P".into(),
        "4P".into(),
    ]);
    for &w in &TREND_WAREHOUSES {
        let mut cells = vec![w.to_string()];
        for &p in &PROCESSORS {
            cells.push(
                sweep
                    .row(p, w)
                    .map(|r| {
                        if r.saturated {
                            format!("{}*", r.clients)
                        } else {
                            r.clients.to_string()
                        }
                    })
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    t
}

/// Fig 2: TPS vs `W` per `P`, including the 1200 W I/O-bound point, with
/// region classification in the table.
pub fn fig2(sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "1P TPS".into(),
        "2P TPS".into(),
        "4P TPS".into(),
        "region (4P)".into(),
    ]);
    for &w in &WAREHOUSES {
        let mut cells = vec![w.to_string()];
        for &p in &PROCESSORS {
            cells.push(
                sweep
                    .row(p, w)
                    .map(|r| format_num(r.measurement.tps(), 0))
                    .unwrap_or_default(),
            );
        }
        cells.push(
            sweep
                .row(4, w)
                .map(|r| region_of(r).to_owned())
                .unwrap_or_default(),
        );
        t.row(cells);
    }
    t
}

/// Fig 3: CPU-utilization split between OS and user code (4P column of
/// the paper's stacked chart, reported per `P` here).
pub fn fig3(sweep: &Sweep) -> TextTable {
    let series: Vec<Series> = PROCESSORS
        .iter()
        .flat_map(|&p| {
            let mut os = Series::new(format!("{p}P OS%"));
            let mut user = Series::new(format!("{p}P user%"));
            for &w in &TREND_WAREHOUSES {
                if let Some(row) = sweep.row(p, w) {
                    let util = row.measurement.cpu_utilization * 100.0;
                    let os_pct = util * row.measurement.os_busy_fraction;
                    os.push(w as f64, os_pct);
                    user.push(w as f64, util - os_pct);
                }
            }
            [os, user]
        })
        .collect();
    series_table("Warehouses", &series, 1)
}

/// Fig 4: total instructions per transaction (millions).
pub fn fig4(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.ipx() / 1e6),
        3,
    )
}

/// Fig 5: user-space IPX (millions) — flat across `W`.
pub fn fig5(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.ipx_user() / 1e6),
        3,
    )
}

/// Fig 6: OS-space IPX (millions) — grows with I/O.
pub fn fig6(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.ipx_os() / 1e6),
        3,
    )
}

/// Fig 7: disk I/O per transaction in KB, split by kind (4P).
pub fn fig7(sweep: &Sweep, processors: u32) -> TextTable {
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "read KB".into(),
        "log KB".into(),
        "page-write KB".into(),
        "total KB".into(),
    ]);
    for &w in &TREND_WAREHOUSES {
        if let Some(row) = sweep.row(processors, w) {
            let io = row.measurement.io_per_txn;
            t.row(vec![
                w.to_string(),
                format_num(io.read_kb, 1),
                format_num(io.log_write_kb, 1),
                format_num(io.page_write_kb, 1),
                format_num(io.total_kb(), 1),
            ]);
        }
    }
    t
}

/// Fig 8: context switches per transaction.
pub fn fig8(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.context_switches_per_txn),
        2,
    )
}

/// Fig 9: overall CPI.
pub fn fig9(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.cpi()),
        3,
    )
}

/// Fig 10: user-space CPI.
pub fn fig10(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.cpi_user()),
        3,
    )
}

/// Fig 11: OS-space CPI (decreasing with `W`).
pub fn fig11(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.cpi_os()),
        3,
    )
}

/// Table 2: the performance-monitoring events (static).
pub fn table2() -> TextTable {
    let mut t = TextTable::new(vec![
        "Event Alias".into(),
        "EMON Events Used".into(),
        "Description".into(),
    ]);
    for e in Event::ALL {
        t.row(vec![
            e.alias().to_owned(),
            e.emon_events().to_owned(),
            e.description().to_owned(),
        ]);
    }
    t
}

/// Table 3: per-event stall costs (static + the measured bus baseline).
pub fn table3() -> TextTable {
    let c = StallCosts::xeon();
    let mut t = TextTable::new(vec!["Event Alias".into(), "Cycles per Event".into()]);
    let rows: [(&str, f64, &str); 7] = [
        ("Instruction", c.instruction, ""),
        ("Branch Misprediction", c.branch_misprediction, ""),
        ("TLB Miss", c.tlb_miss, ""),
        ("TC Miss", c.tc_miss, ""),
        ("L2 Miss", c.l2_miss, " (measured)"),
        ("L3 Miss", c.l3_miss, " (measured)"),
        ("Bus-Transaction Time for 1P", c.bus_transaction_1p, " (measured)"),
    ];
    for (name, v, note) in rows {
        t.row(vec![name.to_owned(), format!("{v}{note}")]);
    }
    t
}

/// Table 4: the CPI component formulas (static).
pub fn table4() -> TextTable {
    let mut t = TextTable::new(vec!["CPI Component".into(), "Contribution Formula".into()]);
    for c in Component::ALL {
        t.row(vec![c.to_string(), c.formula().to_owned()]);
    }
    t
}

/// Fig 12: the CPI breakdown stack per `W` for one processor count.
pub fn fig12(sweep: &Sweep, processors: u32) -> TextTable {
    let costs = StallCosts::xeon();
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "Inst".into(),
        "Branch".into(),
        "TLB".into(),
        "TC".into(),
        "L2".into(),
        "L3".into(),
        "Other".into(),
        "CPI".into(),
        "L3 share".into(),
    ]);
    for &w in &TREND_WAREHOUSES {
        if let Some(row) = sweep.row(processors, w) {
            let m = &row.measurement;
            let counts = m.total();
            if let Ok(b) = CpiBreakdown::compute(&counts, &costs, m.bus_transaction_cycles) {
                t.row(vec![
                    w.to_string(),
                    format_num(b.inst, 2),
                    format_num(b.branch, 2),
                    format_num(b.tlb, 2),
                    format_num(b.tc, 2),
                    format_num(b.l2, 2),
                    format_num(b.l3, 2),
                    format_num(b.other, 2),
                    format_num(b.measured_cpi, 2),
                    format!("{:.0}%", 100.0 * b.fraction(Component::L3)),
                ]);
            }
        }
    }
    t
}

/// Fig 13: overall L3 MPI (×1000 for readability).
pub fn fig13(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.mpi() * 1e3),
        3,
    )
}

/// Fig 14: user-space MPI (×1000).
pub fn fig14(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.mpi_user() * 1e3),
        3,
    )
}

/// Fig 15: OS-space MPI (×1000).
pub fn fig15(sweep: &Sweep) -> TextTable {
    series_table(
        "Warehouses",
        &metric_series(sweep, |r| r.measurement.mpi_os() * 1e3),
        3,
    )
}

/// Fig 16: bus-transaction (IOQ) time in cycles, plus bus utilization.
pub fn fig16(sweep: &Sweep) -> TextTable {
    let mut series = metric_series(sweep, |r| r.measurement.bus_transaction_cycles);
    for s in &mut series {
        let label = format!("{} IOQ", s.label());
        *s = Series::from_xy(label, s.xs(), s.ys());
    }
    let mut util = metric_series(sweep, |r| r.measurement.bus_utilization * 100.0);
    for s in &mut util {
        let label = format!("{} bus%", s.label());
        *s = Series::from_xy(label, s.xs(), s.ys());
    }
    series.extend(util);
    series_table("Warehouses", &series, 1)
}

/// A two-segment fit of one metric trend plus its pivot (Figs 17–18).
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The fitted model.
    pub fit: TwoSegmentFit,
    /// Pivot in warehouses (x) and metric units (y), when lines cross.
    pub pivot: Option<(f64, f64)>,
    /// Rendered per-point actual-vs-fitted table.
    pub table: TextTable,
}

/// Fits the two-region model to a metric for one processor count.
///
/// # Errors
///
/// Propagates fitting errors (fewer than four points, unsorted xs).
pub fn fit_metric<F>(
    sweep: &Sweep,
    processors: u32,
    metric: F,
    metric_name: &str,
) -> Result<FitReport, odb_core::Error>
where
    F: Fn(&SweepRow) -> f64,
{
    let rows = sweep.rows_for(processors);
    let rows: Vec<&&SweepRow> = rows
        .iter()
        .filter(|r| TREND_WAREHOUSES.contains(&r.point.warehouses))
        .collect();
    let xs: Vec<f64> = rows.iter().map(|r| r.point.warehouses as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| metric(r)).collect();
    let fit = TwoSegmentFit::fit(&xs, &ys)?;
    let pivot = fit.pivot().map(|p| (p.x, p.y));
    let mut table = TextTable::new(vec![
        "Warehouses".into(),
        format!("{metric_name} actual"),
        format!("{metric_name} fitted"),
        "region".into(),
    ]);
    let transition = fit.transition_x();
    for (&x, &y) in xs.iter().zip(&ys) {
        table.row(vec![
            format_num(x, 0),
            format_num(y, 4),
            format_num(fit.predict(x), 4),
            if x < transition { "cached" } else { "scaled" }.into(),
        ]);
    }
    Ok(FitReport { fit, pivot, table })
}

/// Fig 17: the CPI two-segment fit for one processor count (paper: 4P).
///
/// # Errors
///
/// Propagates fitting errors.
pub fn fig17(sweep: &Sweep, processors: u32) -> Result<FitReport, odb_core::Error> {
    fit_metric(sweep, processors, |r| r.measurement.cpi(), "CPI")
}

/// Fig 18: the MPI two-segment fit (×1000 units).
///
/// # Errors
///
/// Propagates fitting errors.
pub fn fig18(sweep: &Sweep, processors: u32) -> Result<FitReport, odb_core::Error> {
    fit_metric(sweep, processors, |r| r.measurement.mpi() * 1e3, "MPI(x1000)")
}

/// Table 5: CPI and MPI pivot points per processor count, plus the
/// representative workload (§6.2) picked from the paper ladder.
///
/// # Errors
///
/// Propagates fitting errors.
pub fn table5(sweep: &Sweep) -> Result<TextTable, odb_core::Error> {
    let mut t = TextTable::new(vec![
        "Processors".into(),
        "CPI".into(),
        "MPI".into(),
        "representative W".into(),
    ]);
    for &p in &PROCESSORS {
        // Processor counts the sweep did not measure render as blanks.
        let (Ok(cpi), Ok(mpi)) = (fig17(sweep, p), fig18(sweep, p)) else {
            t.row(vec![format!("{p}P"), String::new(), String::new(), String::new()]);
            continue;
        };
        let cpi_pivot = cpi.pivot.map(|(x, _)| x);
        let mpi_pivot = mpi.pivot.map(|(x, _)| x);
        let representative = cpi_pivot
            .and_then(|x| representative_workload(x, &TREND_WAREHOUSES))
            .map(|w| w.to_string())
            .unwrap_or_default();
        t.row(vec![
            format!("{p}P"),
            cpi_pivot.map(|x| format_num(x, 0)).unwrap_or_default(),
            mpi_pivot.map(|x| format_num(x, 0)).unwrap_or_default(),
            representative,
        ]);
    }
    Ok(t)
}

/// §6.2 validation: fit on configurations up to `fit_max_w`, extrapolate
/// the rest, and report the error — "simulation results based on the
/// 200W setup may be used to accurately project the behaviors of fully
/// scaled setups".
///
/// # Errors
///
/// Propagates fitting errors and empty hold-out sets.
pub fn extrapolation_check(
    sweep: &Sweep,
    processors: u32,
    fit_max_w: u32,
) -> Result<TextTable, odb_core::Error> {
    let rows = sweep.rows_for(processors);
    let rows: Vec<&&SweepRow> = rows
        .iter()
        .filter(|r| TREND_WAREHOUSES.contains(&r.point.warehouses))
        .collect();
    let (train, test): (Vec<&&&SweepRow>, Vec<&&&SweepRow>) = rows
        .iter()
        .partition(|r| r.point.warehouses <= fit_max_w);
    let xs: Vec<f64> = train.iter().map(|r| r.point.warehouses as f64).collect();
    let ys: Vec<f64> = train.iter().map(|r| r.measurement.cpi()).collect();
    let ex = Extrapolator::from_measurements(&xs, &ys)?;
    let held: Vec<(f64, f64)> = test
        .iter()
        .map(|r| (r.point.warehouses as f64, r.measurement.cpi()))
        .collect();
    let report = ex.validate(&held)?;
    let mut t = TextTable::new(vec![
        "Warehouses".into(),
        "CPI predicted".into(),
        "CPI actual".into(),
        "error %".into(),
    ]);
    for (x, pred, actual) in &report.points {
        t.row(vec![
            format_num(*x, 0),
            format_num(*pred, 3),
            format_num(*actual, 3),
            format!("{:.1}", 100.0 * (pred - actual).abs() / actual),
        ]);
    }
    t.row(vec![
        "MAPE".into(),
        String::new(),
        String::new(),
        format!("{:.1}", report.mape * 100.0),
    ]);
    Ok(t)
}

/// Fig 19: the Itanium2 CPI scaling run (§6.3) — same ladder, 4P only.
///
/// # Errors
///
/// Propagates sweep/fitting errors.
pub fn fig19(options: &SweepOptions) -> Result<(Sweep, FitReport), odb_core::Error> {
    let points: Vec<ConfigPoint> = TREND_WAREHOUSES
        .iter()
        .map(|&w| ConfigPoint {
            warehouses: w,
            processors: 4,
        })
        .collect();
    let sweep = Sweep::run_points(
        &odb_core::config::SystemConfig::itanium2_quad(),
        options,
        &points,
    );
    sweep.ensure_complete()?;
    let report = fig17(&sweep, 4)?;
    Ok((sweep, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odb_core::metrics::{IoPerTxn, Measurement, SpaceCounts};
    use odb_memsim::hierarchy::HierarchyCounts;
    use odb_memsim::rates::{EventRates, SpaceRates};
    use odb_memsim::trace::Characterization;

    /// Builds a synthetic sweep with paper-like shapes so figure
    /// generators can be tested without running simulations.
    fn synthetic_sweep() -> Sweep {
        let mut rows = Vec::new();
        for &p in &PROCESSORS {
            for &w in &WAREHOUSES {
                let wf = w as f64;
                // Two-region CPI: steep to 100 W, gentle after.
                let cpi = if w <= 100 {
                    2.5 + 0.02 * wf
                } else {
                    4.3 + 0.002 * wf
                } + 0.3 * (p as f64 - 1.0);
                let mpi = (if w <= 100 {
                    4.0 + 0.04 * wf
                } else {
                    7.6 + 0.004 * wf
                }) * 1e-3;
                let ipx_user = 1.07e6;
                let ipx_os = 4.0e4 + 150.0 * wf;
                let tps = p as f64 * 1.6e9 / ((ipx_user + ipx_os) * cpi);
                let txns = (tps * 10.0) as u64;
                let instr_u = (ipx_user * txns as f64) as u64;
                let instr_o = (ipx_os * txns as f64) as u64;
                let m = Measurement {
                    warehouses: w,
                    clients: 8 + p * 4,
                    processors: p,
                    elapsed_seconds: 10.0,
                    transactions: txns,
                    user: SpaceCounts {
                        instructions: instr_u,
                        cycles: (instr_u as f64 * cpi) as u64,
                        l3_misses: (instr_u as f64 * mpi) as u64,
                        l2_misses: (instr_u as f64 * mpi * 2.5) as u64,
                        tc_misses: (instr_u as f64 * 0.01) as u64,
                        tlb_misses: (instr_u as f64 * 0.003) as u64,
                        branch_mispredictions: (instr_u as f64 * 0.004) as u64,
                    },
                    os: SpaceCounts {
                        instructions: instr_o,
                        cycles: (instr_o as f64 * cpi * 1.2) as u64,
                        l3_misses: (instr_o as f64 * mpi * 1.1) as u64,
                        l2_misses: (instr_o as f64 * mpi * 2.6) as u64,
                        tc_misses: (instr_o as f64 * 0.01) as u64,
                        tlb_misses: (instr_o as f64 * 0.003) as u64,
                        branch_mispredictions: (instr_o as f64 * 0.005) as u64,
                    },
                    cpu_utilization: if w == 1200 { 0.7 } else { 0.95 },
                    os_busy_fraction: 0.10 + 0.0001 * wf,
                    io_per_txn: IoPerTxn {
                        read_kb: (0.02 * wf).min(20.0),
                        log_write_kb: 5.3,
                        page_write_kb: if w < 50 { 0.0 } else { 5.0 },
                    },
                    disk_reads_per_txn: (0.0025 * wf).min(2.5),
                    context_switches_per_txn: 1.0 + 0.003 * wf,
                    bus_utilization: 0.1 * p as f64 + 0.0001 * wf,
                    bus_transaction_cycles: 102.0 + 12.0 * (p as f64 - 1.0),
                };
                let zero_rates = SpaceRates {
                    tc_miss: 0.0,
                    l2_miss: 0.0,
                    l3_miss: 0.0,
                    l3_coherence_miss: 0.0,
                    l3_writeback: 0.0,
                    tlb_miss: 0.0,
                    branch_mispred: 0.0,
                    other_stall_cpi: 0.0,
                };
                rows.push(SweepRow {
                    point: ConfigPoint {
                        warehouses: w,
                        processors: p,
                    },
                    clients: 8 + p * 4,
                    saturated: w == 1200,
                    measurement: m,
                    characterization: Characterization {
                        rates: EventRates {
                            user: zero_rates,
                            os: zero_rates,
                        },
                        user_counts: HierarchyCounts::default(),
                        os_counts: HierarchyCounts::default(),
                        coherence_invalidations: 0,
                        instructions: 0,
                    },
                    phase_seconds: odb_engine::PhaseSeconds::default(),
                });
            }
        }
        Sweep::from_rows(rows)
    }

    #[test]
    fn table1_reports_all_points() {
        let t = table1(&synthetic_sweep());
        assert_eq!(t.len(), TREND_WAREHOUSES.len());
        let s = t.render();
        assert!(s.contains("1P"));
        assert!(s.contains("4P"));
    }

    #[test]
    fn fig2_classifies_regions() {
        let s = fig2(&synthetic_sweep()).render();
        assert!(s.contains("CPU bound"));
        assert!(s.contains("balanced"));
        assert!(s.contains("I/O bound"));
        assert!(s.contains("1200"));
    }

    #[test]
    fn static_tables_match_paper() {
        let t2 = table2().render();
        assert!(t2.contains("instr_retired"));
        assert!(t2.contains("Bus-Transaction Time"));
        let t3 = table3().render();
        assert!(t3.contains("0.5"));
        assert!(t3.contains("300 (measured)"));
        assert!(t3.contains("102 (measured)"));
        let t4 = table4().render();
        assert!(t4.contains("(L2 Miss - L3 Miss) * 16"));
        assert!(t4.contains("Other"));
    }

    #[test]
    fn fig12_l3_dominates_at_scale() {
        let t = fig12(&synthetic_sweep(), 4);
        let s = t.render();
        assert_eq!(t.len(), TREND_WAREHOUSES.len());
        // The L3 share column exists and is a percentage.
        assert!(s.contains('%'));
    }

    #[test]
    fn fits_find_the_knee() {
        let sweep = synthetic_sweep();
        let cpi = fig17(&sweep, 4).unwrap();
        let (x, _) = cpi.pivot.expect("lines cross");
        assert!(
            (60.0..220.0).contains(&x),
            "CPI pivot at {x} for a knee near 100"
        );
        let mpi = fig18(&sweep, 4).unwrap();
        let (xm, _) = mpi.pivot.expect("lines cross");
        assert!((60.0..220.0).contains(&xm), "MPI pivot at {xm}");
        assert!(cpi.table.len() == TREND_WAREHOUSES.len());
    }

    #[test]
    fn table5_reports_every_p() {
        let t = table5(&synthetic_sweep()).unwrap();
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("representative"));
        // Representative workload = smallest ladder W above the pivot.
        assert!(s.contains("200") || s.contains("100") || s.contains("300"));
    }

    #[test]
    fn extrapolation_check_is_accurate_on_synthetic_shapes() {
        let t = extrapolation_check(&synthetic_sweep(), 4, 300).unwrap();
        let s = t.render();
        assert!(s.contains("MAPE"));
        // Synthetic data is exactly piecewise linear: tiny error.
        let mape_line = s.lines().last().unwrap();
        let mape: f64 = mape_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mape < 2.0, "MAPE {mape}%");
    }

    #[test]
    fn series_projections_have_expected_shapes() {
        let sweep = synthetic_sweep();
        // Fig 5: user IPX flat.
        let user = metric_series(&sweep, |r| r.measurement.ipx_user());
        for s in &user {
            let range = s.max_y().unwrap() - s.min_y().unwrap();
            assert!(range / s.max_y().unwrap() < 0.02, "user IPX flat");
        }
        // Fig 6: OS IPX strictly increasing.
        let os = metric_series(&sweep, |r| r.measurement.ipx_os());
        for s in &os {
            let ys = s.ys();
            assert!(ys.windows(2).all(|w| w[0] < w[1]), "OS IPX grows");
        }
        // Rendered tables parse.
        for t in [
            fig3(&sweep),
            fig4(&sweep),
            fig5(&sweep),
            fig6(&sweep),
            fig7(&sweep, 4),
            fig8(&sweep),
            fig9(&sweep),
            fig10(&sweep),
            fig11(&sweep),
            fig13(&sweep),
            fig14(&sweep),
            fig15(&sweep),
            fig16(&sweep),
        ] {
            assert!(!t.is_empty());
            assert!(!t.render().is_empty());
        }
    }
}
